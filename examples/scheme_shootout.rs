//! Side-by-side study of how each partitioning scheme reacts to a hotspot
//! shift: build, measure, move the workload's heat to a cold corner of
//! the namespace, rebalance, and measure again.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example scheme_shootout
//! ```

use d2tree::baselines::extended_lineup;
use d2tree::metrics::{balance, ClusterSpec};
use d2tree::workload::{TraceProfile, WorkloadBuilder};

fn main() {
    let workload = WorkloadBuilder::new(
        TraceProfile::lmbe()
            .with_nodes(10_000)
            .with_operations(100_000),
    )
    .seed(3)
    .build();
    let pop = workload.popularity();
    // Capacity C_k = ΣL/M so μ = 1 and Def. 5 balance values are O(1)-
    // comparable (the same convention the bench harness uses).
    let m = 6;
    let cluster = ClusterSpec::homogeneous(m, pop.sum_individual() / m as f64);

    // Pick a batch of currently-cold nodes to heat up later.
    let mut cold: Vec<_> = workload
        .tree
        .nodes()
        .map(|(id, _)| id)
        .filter(|&id| pop.individual(id) < 1.0)
        .take(50)
        .collect();
    cold.sort();

    println!(
        "{:<16} {:>14} {:>14} {:>12}",
        "scheme", "balance before", "balance after", "migrations"
    );
    for mut scheme in extended_lineup(0.01, 11) {
        scheme.build(&workload.tree, &pop, &cluster);
        let before = balance(&scheme.loads(&workload.tree, &pop), &cluster);

        // The hotspot shift: the cold corner suddenly receives 30% of all
        // traffic (e.g. a viral dataset).
        let mut shifted = pop.clone();
        for &id in &cold {
            shifted.record(id, 100_000.0 * 0.3 / cold.len() as f64);
        }
        shifted.rollup(&workload.tree);
        let shifted_cluster = ClusterSpec::homogeneous(m, shifted.sum_individual() / m as f64);

        // Let the scheme react for up to five rounds.
        let mut migrations = 0usize;
        for _ in 0..5 {
            migrations += scheme.rebalance(&workload.tree, &shifted, &cluster).len();
        }
        let after = balance(&scheme.loads(&workload.tree, &shifted), &shifted_cluster);
        println!(
            "{:<16} {:>14.2} {:>14.2} {:>12}",
            scheme.name(),
            before,
            after,
            migrations
        );
    }
    println!("\nStatic schemes cannot react; D2-Tree and the dynamic schemes migrate.");
}
