//! Fail-over demo on the live multi-threaded cluster: start an MDS
//! cluster, drive client load, crash a server mid-run and watch the
//! Monitor detect the failure and re-home its metadata.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example rebalance_on_failure
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use d2tree::cluster::live::{LiveCluster, LiveConfig};
use d2tree::core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree::metrics::{ClusterSpec, MdsId};
use d2tree::telemetry::{names, MetricKey};
use d2tree::workload::{TraceProfile, WorkloadBuilder};

fn main() {
    let workload =
        WorkloadBuilder::new(TraceProfile::ra().with_nodes(2_000).with_operations(4_000))
            .seed(5)
            .build();
    let pop = workload.popularity();
    let cluster_spec = ClusterSpec::homogeneous(4, 1.0);
    let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
    scheme.build(&workload.tree, &pop, &cluster_spec);

    let tree = Arc::new(workload.tree);
    println!("starting a live 4-MDS cluster…");
    let cluster = LiveCluster::start_with_index(
        Arc::clone(&tree),
        scheme.placement().clone(),
        scheme.local_index().clone(),
        LiveConfig::default(),
    );
    std::thread::sleep(Duration::from_millis(100)); // let everyone heartbeat

    let mut client = cluster.client(1);
    let mut ok = 0usize;
    for op in workload.trace.iter().take(1_000) {
        if client.execute(*op).is_ok() {
            ok += 1;
        }
    }
    println!("phase 1: {ok}/1000 operations served across 4 servers");

    let victim = MdsId(1);
    println!("\ncrash-stopping {victim}…");
    cluster.kill(victim);
    // Give the Monitor a chance to miss heartbeats, declare the failure
    // and re-home the victim's metadata.
    std::thread::sleep(Duration::from_millis(400));

    let started = Instant::now();
    let mut ok = 0usize;
    let mut failed = 0usize;
    for op in workload.trace.iter().skip(1_000).take(1_000) {
        match client.execute(*op) {
            Ok(_) => ok += 1,
            Err(_) => failed += 1,
        }
    }
    println!(
        "phase 2 (during/after fail-over, {:?} elapsed): {ok} served, {failed} failed",
        started.elapsed()
    );

    // Check that nothing is still assigned to the dead server.
    let placement = cluster.placement_snapshot();
    let orphaned = tree
        .nodes()
        .filter(|(id, _)| placement.assignment(*id).owner() == Some(victim))
        .count();
    println!("nodes still homed on the dead server: {orphaned}");

    // One-line per-MDS utilization from the telemetry registry: each
    // server's share of the cluster-wide served total.
    let registry = cluster.registry().clone();
    let served: Vec<u64> = (0..4)
        .map(|k| {
            registry
                .counter(MetricKey::mds(names::SERVER_SERVED_TOTAL, k))
                .get()
        })
        .collect();
    let total = served.iter().sum::<u64>().max(1) as f64;
    let util: Vec<String> = served
        .iter()
        .enumerate()
        .map(|(k, &s)| format!("mds{k} {:.0}%", 100.0 * s as f64 / total))
        .collect();
    println!("per-MDS utilization: {}", util.join("  "));

    let report = cluster.shutdown();
    println!("\nper-server served counts: {:?}", report.served);
    println!("membership events: {:?}", report.events);
    let failures = report
        .journal
        .iter()
        .filter(|e| matches!(e.kind, d2tree::telemetry::EventKind::MdsDown { .. }))
        .count();
    let claims = report
        .journal
        .iter()
        .filter(|e| matches!(e.kind, d2tree::telemetry::EventKind::SubtreeClaimed { .. }))
        .count();
    println!(
        "journal: {} events ({failures} failures, {claims} subtree claims)",
        report.journal.len()
    );
}
