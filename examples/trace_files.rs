//! Export a synthetic workload to plain-text files, reload it, and replay
//! the reloaded copy — the round-trip a user converting their own traces
//! into this repository's format would follow.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example trace_files
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};

use d2tree::cluster::{SimConfig, Simulator};
use d2tree::core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree::metrics::ClusterSpec;
use d2tree::workload::io::{read_trace, read_tree, write_trace, write_tree};
use d2tree::workload::{TraceProfile, WorkloadBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("d2tree-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let tree_path = dir.join("workspace.tree");
    let trace_path = dir.join("workspace.trace");

    // 1. Generate and export.
    let workload =
        WorkloadBuilder::new(TraceProfile::ra().with_nodes(5_000).with_operations(30_000))
            .seed(12)
            .build();
    write_tree(BufWriter::new(File::create(&tree_path)?), &workload.tree)?;
    write_trace(
        BufWriter::new(File::create(&trace_path)?),
        &workload.trace,
        &workload.tree,
    )?;
    println!(
        "exported {} nodes -> {}\n         {} ops  -> {}",
        workload.tree.node_count(),
        tree_path.display(),
        workload.trace.len(),
        trace_path.display()
    );

    // 2. Reload from disk, as an external tool would.
    let tree = read_tree(BufReader::new(File::open(&tree_path)?))?;
    let trace = read_trace(BufReader::new(File::open(&trace_path)?), &tree)?;
    println!(
        "reloaded {} nodes / {} ops (max depth {})",
        tree.node_count(),
        trace.len(),
        tree.max_depth()
    );

    // 3. Partition and replay the reloaded copy.
    let pop = trace.popularity(&tree);
    let cluster = ClusterSpec::homogeneous(6, 1.0);
    let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
    scheme.build(&tree, &pop, &cluster);
    let out = Simulator::new(SimConfig {
        clients: 64,
        ..SimConfig::default()
    })
    .replay(&tree, &trace, &scheme);
    println!(
        "replayed: {} ops at {:.0} ops/s (mean latency {:.0} µs)",
        out.completed, out.throughput, out.mean_latency_us
    );

    std::fs::remove_dir_all(&dir)?;
    println!("cleaned up {}", dir.display());
    Ok(())
}
