//! Quickstart: build a namespace, split it into global and local layers,
//! allocate the subtrees onto a 4-MDS cluster and inspect the result.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use d2tree::core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree::metrics::{balance, ClusterSpec};
use d2tree::namespace::{Popularity, TreeBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a small namespace by hand: a project tree with one hot
    //    directory and some cold archives.
    let mut builder = TreeBuilder::new();
    builder.files([
        "/projects/website/index.html",
        "/projects/website/style.css",
        "/projects/website/app.js",
        "/projects/ml/train.py",
        "/projects/ml/data/batch_0.bin",
        "/projects/ml/data/batch_1.bin",
        "/archive/2019/report.pdf",
        "/archive/2020/report.pdf",
        "/home/alice/notes.txt",
        "/home/bob/todo.md",
    ])?;
    builder.dir("/tmp")?;
    let tree = builder.build();
    println!(
        "namespace: {} nodes, max depth {}",
        tree.node_count(),
        tree.max_depth()
    );

    // 2. Record access popularity: the website is hot, archives are cold.
    let mut pop = Popularity::new(&tree);
    pop.record(tree.resolve_str("/projects/website/index.html")?, 500.0);
    pop.record(tree.resolve_str("/projects/website/app.js")?, 300.0);
    pop.record(tree.resolve_str("/projects/ml/train.py")?, 120.0);
    pop.record(tree.resolve_str("/projects/ml/data/batch_0.bin")?, 40.0);
    pop.record(tree.resolve_str("/archive/2019/report.pdf")?, 2.0);
    pop.record(tree.resolve_str("/home/alice/notes.txt")?, 25.0);
    pop.record(tree.resolve_str("/home/bob/todo.md")?, 10.0);
    pop.rollup(&tree);

    // 3. Partition with D2-Tree: the hottest ~25% of nodes become the
    //    replicated global layer, the rest split into per-MDS subtrees.
    let cluster = ClusterSpec::homogeneous(4, 1_000.0);
    let mut scheme = D2TreeScheme::new(D2TreeConfig::by_proportion(0.25));
    scheme.build(&tree, &pop, &cluster);

    let layer = scheme.global_layer();
    println!("\nglobal layer ({} nodes):", layer.len());
    for &id in layer.members() {
        println!("  {}", tree.path_of(id));
    }

    println!("\nlocal-layer subtrees:");
    for (subtree, owner) in scheme.subtrees() {
        println!(
            "  {} ({} nodes, popularity {:.0}) -> {owner}",
            tree.path_of(subtree.root),
            subtree.size,
            subtree.popularity
        );
    }

    // 4. Ask the scheme where accesses go.
    let mut rng = rand::thread_rng();
    for path in ["/projects/website/app.js", "/archive/2020/report.pdf"] {
        let node = tree.resolve_str(path)?;
        let plan = scheme.route(&tree, node, &mut rng);
        println!(
            "\naccess {path}: served by {}{}",
            plan.terminal(),
            if plan.target_replicated {
                " (any replica)"
            } else {
                ""
            }
        );
    }

    // 5. Measure the formal metrics of the paper.
    let locality = scheme.locality(&tree, &pop);
    let loads = scheme.loads(&tree, &pop);
    println!("\nlocality (Def. 3): {:.6}", locality.locality);
    println!("per-MDS loads: {loads:?}");
    println!("balance (Def. 5): {:.3}", balance(&loads, &cluster));
    Ok(())
}
