//! Replay a synthetic DTR-style trace through the discrete-event cluster
//! simulator under every scheme and compare throughput, latency, locality
//! and balance — a miniature of the paper's whole evaluation.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example trace_replay [nodes] [ops] [mds]
//! ```

use std::sync::Arc;

use d2tree::baselines::extended_lineup;
use d2tree::cluster::{SimConfig, Simulator};
use d2tree::metrics::{balance, ClusterSpec};
use d2tree::telemetry::{names, MetricKey, Registry};
use d2tree::workload::{TraceProfile, WorkloadBuilder};

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let ops: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let m: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    println!("generating DTR-style workload: {nodes} nodes, {ops} ops, {m} MDSs…");
    let workload = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(nodes).with_operations(ops))
        .seed(1)
        .build();
    let pop = workload.popularity();
    let cluster = ClusterSpec::homogeneous(m, 1.0);
    let sim = Simulator::new(SimConfig::default());

    println!(
        "\n{:<16} {:>12} {:>12} {:>12} {:>14} {:>10}",
        "scheme", "ops/s", "mean µs", "p99 µs", "locality", "balance"
    );
    for mut scheme in extended_lineup(0.01, 7) {
        scheme.build(&workload.tree, &pop, &cluster);
        // A fresh registry per scheme keeps per-MDS telemetry separable.
        let registry = Arc::new(Registry::new());
        let sim = sim.clone().with_registry(Arc::clone(&registry));
        let out = sim.replay(&workload.tree, &workload.trace, scheme.as_ref());
        let locality = scheme.locality(&workload.tree, &pop);
        let loads = scheme.loads(&workload.tree, &pop);
        println!(
            "{:<16} {:>12.0} {:>12.1} {:>12.1} {:>14.3e} {:>10.2}",
            scheme.name(),
            out.throughput,
            out.mean_latency_us,
            out.p99_latency_us,
            locality.locality,
            balance(&loads, &cluster)
        );
        // One-line per-MDS utilization from the telemetry registry:
        // busy nanoseconds over virtual wall-clock × workers.
        let wall_ns = (out.sim_seconds * 1e9).max(1.0) * sim.config().workers_per_mds as f64;
        let util: Vec<String> = (0..m)
            .map(|k| {
                let busy = registry
                    .counter(MetricKey::mds(names::MDS_BUSY_NS, k as u16))
                    .get();
                format!("mds{k} {:.0}%", 100.0 * busy as f64 / wall_ns)
            })
            .collect();
        println!("{:<16} utilization: {}", "", util.join("  "));
    }
    println!("\n(larger locality/balance is better; see EXPERIMENTS.md for full sweeps)");
}
