//! Chaos-recovery demo: a live MDS cluster survives a seeded fault
//! schedule — lossy links, a crash-stop, a Monitor-link partition and a
//! rejoin — with the ownership/replication invariants machine-checked
//! at the end, plus a pass through the deterministic chaos engine to
//! show the same schedule replays bit-identically.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example chaos_recovery
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use d2tree::cluster::live::{LiveCluster, LiveConfig};
use d2tree::cluster::{run_chaos, ChaosConfig, FaultAction, FaultPlan, FaultRule, FaultScope};
use d2tree::core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree::metrics::{ClusterSpec, MdsId};
use d2tree::workload::{TraceProfile, WorkloadBuilder};

fn main() {
    let seed = 42u64;

    // ── Part 1: live threaded cluster under an adversarial network ──
    let workload =
        WorkloadBuilder::new(TraceProfile::dtr().with_nodes(1_500).with_operations(4_000))
            .seed(seed)
            .build();
    let pop = workload.popularity();
    let cluster_spec = ClusterSpec::homogeneous(4, 1.0);
    let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
    scheme.build(&workload.tree, &pop, &cluster_spec);

    // 2% of every message dropped, mds1's links jittery, and mds2 cut
    // off from the Monitor for a 300 ms window mid-run.
    let plan = FaultPlan::new(seed)
        .with_rule(FaultRule::new(FaultScope::AllLinks, FaultAction::Drop).with_probability(0.02))
        .with_rule(
            FaultRule::new(
                FaultScope::Mds(1),
                FaultAction::Delay {
                    fixed_ms: 0,
                    jitter_ms: 2,
                },
            )
            .with_probability(0.10),
        )
        .with_rule(FaultRule::partition(FaultScope::MonitorLink(2), 400, 700));

    let tree = Arc::new(workload.tree);
    println!("starting a live 4-MDS cluster behind a seeded lossy network (seed {seed})…");
    let cluster = LiveCluster::start_with_faults(
        Arc::clone(&tree),
        scheme.placement().clone(),
        scheme.local_index().clone(),
        LiveConfig::default(),
        plan,
    );
    std::thread::sleep(Duration::from_millis(100));

    let mut client = cluster.client(1);
    let mut ok = 0usize;
    for op in workload.trace.iter().take(1_000) {
        if client.execute(*op).is_ok() {
            ok += 1;
        }
    }
    println!("phase 1 (lossy but whole): {ok}/1000 operations served");

    let victim = MdsId(1);
    println!("\ncrash-stopping {victim}…");
    cluster.kill(victim);
    std::thread::sleep(Duration::from_millis(400));
    let mut ok = 0usize;
    for op in workload.trace.iter().skip(1_000).take(1_000) {
        if client.execute(*op).is_ok() {
            ok += 1;
        }
    }
    println!("phase 2 (one server down, ownership re-homed): {ok}/1000 served");

    println!("\nrestarting {victim} — GL re-sync through the lock service, then rejoin…");
    cluster.restart(victim);
    let deadline = Instant::now() + Duration::from_secs(5);
    let violations = loop {
        let v = cluster.check_invariants();
        if v.is_empty() || Instant::now() >= deadline {
            break v;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    match violations.is_empty() {
        true => println!("invariants: clean (single live owner per subtree, GL converged)"),
        false => println!("invariants: VIOLATED: {violations:#?}"),
    }

    let mut ok = 0usize;
    for op in workload.trace.iter().skip(2_000).take(1_000) {
        if client.execute(*op).is_ok() {
            ok += 1;
        }
    }
    println!("phase 3 (rejoined): {ok}/1000 served");
    drop(client);

    let report = cluster.shutdown();
    println!("\nper-MDS ops served: {:?}", report.served);

    // ── Part 2: the deterministic chaos engine, replayed twice ──
    println!("\nreplaying a virtual-time chaos schedule (seed {seed}) twice…");
    let config = ChaosConfig::default();
    let a = run_chaos(seed, &config);
    let b = run_chaos(seed, &config);
    println!(
        "kills: {}  restarts: {}  partitions: {}  rejoins: {} ({} reclaimed a subtree)",
        a.kills, a.restarts, a.partitions, a.rejoins, a.rejoins_with_claims
    );
    println!(
        "faults injected: {} dropped, {} delayed, {} duplicated",
        a.faults_dropped, a.faults_delayed, a.faults_duplicated
    );
    println!(
        "journal: {} events — identical across runs: {}",
        a.journal.len(),
        a == b
    );
    println!(
        "invariant violations: {}",
        if a.violations.is_empty() {
            "none".to_owned()
        } else {
            format!("{:?}", a.violations)
        }
    );
}
