//! Offline stand-in for `serde`.
//!
//! The workspace only ever writes `#[derive(Serialize, Deserialize)]` and
//! `use serde::{Deserialize, Serialize}` — nothing calls a serialisation
//! API. These derives therefore expand to nothing, keeping every type's
//! signature identical while the build stays fully offline. Swapping the
//! workspace dependency back to crates-io serde re-enables real codegen
//! with no source changes.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
