//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::bench_with_input`]/[`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark is calibrated with a warm-up pass,
//! then timed over `sample_size` samples; mean and min per-iteration
//! wall-clock times are printed to stdout. No plots, no statistics
//! engine, no CLI filtering — just enough to run `cargo bench` offline
//! and compare numbers by eye.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent per sample during measurement.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);
/// Wall-clock spent estimating the per-iteration cost.
const WARMUP_TIME: Duration = Duration::from_millis(50);

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&id, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group. (No-op beyond upstream parity.)
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus a parameter value.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Creates an id like `"name/param"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

/// Conversion accepted by the `bench_*` id parameters.
pub trait IntoBenchmarkId {
    /// The display form of the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.repr
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timer handle passed to the benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_budget: usize,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample to fill the
    /// sample budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find how many iterations fit in a sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_TIME {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        self.iters_per_sample =
            ((TARGET_SAMPLE_TIME.as_secs_f64() / per_iter).ceil() as u64).max(1);

        for _ in 0..self.sample_budget {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(sample_size),
        sample_budget: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let iters = b.iters_per_sample.max(1) as f64;
    let mean_ns = b.samples.iter().map(Duration::as_nanos).sum::<u128>() as f64
        / (b.samples.len() as f64 * iters);
    let min_ns = b
        .samples
        .iter()
        .map(Duration::as_nanos)
        .min()
        .unwrap_or_default() as f64
        / iters;
    println!(
        "{id:<48} mean {:>12}  min {:>12}  ({} samples x {} iters)",
        fmt_ns(mean_ns),
        fmt_ns(min_ns),
        b.samples.len(),
        b.iters_per_sample,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { sample_size: 3 };
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs = runs.wrapping_add(1)));
        assert!(runs > 0);
    }

    #[test]
    fn group_honours_sample_size_and_inputs() {
        let mut c = Criterion { sample_size: 3 };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("case", 7), &7u64, |b, &x| {
            b.iter(|| seen = x)
        });
        group.finish();
        assert_eq!(seen, 7);
    }
}
