//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply clonable, sliceable view of immutable bytes
//! (shared `Arc<[u8]>` plus a window); [`BytesMut`] is a growable buffer
//! that freezes into `Bytes`. The [`Buf`]/[`BufMut`] traits carry the
//! big-endian cursor accessors the cluster wire codec uses. Semantics
//! match upstream for this subset: reads consume from the front, and
//! the get/put accessors panic when the buffer is too short.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read cursor over a byte buffer (big-endian accessors).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

/// Write cursor appending to a byte buffer (big-endian accessors).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A cheaply clonable, sliceable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Number of readable bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{:?}", &self[..])
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-reserved.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of written bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { vec: v.to_vec() }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{:?}", &self.vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_big_endian() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32(0xDEAD_BEEF);
        w.put_u8(7);
        w.put_u16(513);
        w.put_u64(u64::MAX - 1);
        let mut r = w.freeze();
        assert_eq!(r.len(), 15);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 513);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert!(r.is_empty());
    }

    #[test]
    fn slices_share_and_window() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        assert_eq!(b.len(), 5, "parent unaffected");
    }

    #[test]
    fn advance_moves_the_window() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        assert_eq!(b[0], 9);
        b.advance(2);
        assert_eq!(b[0], 7);
        assert_eq!(b.remaining(), 2);
    }

    #[test]
    fn bytesmut_indexing_is_writable() {
        let mut w = BytesMut::from(&[1u8, 2, 3][..]);
        w[1] = 99;
        assert_eq!(w.freeze(), Bytes::from(vec![1, 99, 3]));
    }
}
