//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses — [`RngCore`],
//! [`Rng`] (`gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`thread_rng`] — with no external dependencies.
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64, so
//! seeded runs are deterministic and well distributed; it is *not* the
//! same stream as upstream `rand`'s `StdRng` (ChaCha12), which no code
//! here relies on.

#![warn(missing_docs)]

/// The core of a random number generator: object-safe raw output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that `Rng::gen_range` can produce uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_closed<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add(uniform_u128_below(span, rng) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u128_below(span, rng) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by widening multiply (Lemire), avoiding
/// modulo bias.
fn uniform_u128_below<R: RngCore + ?Sized>(span: u128, rng: &mut R) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        let mut x = rng.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                x = rng.next_u64();
                m = (x as u128) * (span as u128);
                lo = m as u64;
            }
        }
        m >> 64
    } else {
        // Spans above 2^64 only arise for i128/u128 ranges, unused here.
        let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        x % span
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty => $bits:expr, $mant:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = (rng.next_u64() >> (64 - $mant)) as $t
                    / (1u64 << $mant) as $t;
                let v = low + unit * (high - low);
                if v >= high { <$t>::max(low, high - (high - low) * <$t>::EPSILON) } else { v }
            }
            fn sample_closed<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = (rng.next_u64() >> (64 - $mant)) as $t
                    / ((1u64 << $mant) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32 => 32, 24, f64 => 64, 53);

/// Range shapes `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(*self.start(), *self.end(), rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_half_open(0.0, 1.0, self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(mut seed: u64) -> Self {
            let mut next = || {
                seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_splitmix(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    /// Generator returned by [`thread_rng`](super::thread_rng).
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(super) StdRng);

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

/// A fresh, time-seeded generator (distinct per call and per thread).
#[must_use]
pub fn thread_rng() -> rngs::ThreadRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    let tid = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish()
    };
    rngs::ThreadRng(<rngs::StdRng as SeedableRng>::seed_from_u64(nanos ^ tid))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(0..17);
            assert!(x < 17);
            let y: i32 = rng.gen_range(1..=2);
            assert!((1..=2).contains(&y));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn dyn_rngcore_supports_gen_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v: usize = dyn_rng.gen_range(0..5);
        assert!(v < 5);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
