//! Offline stand-in for `proptest`.
//!
//! A miniature property-testing runner implementing the subset of the
//! proptest API this workspace's tests use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * [`Strategy`] for integer/float ranges, `&str` regex patterns (a
//!   generative subset: literals, classes, groups, `{m,n}`/`*`/`+`/`?`),
//!   and [`collection::vec`],
//! * [`any`] for primitives and [`sample::Index`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via `Debug` instead), and cases are seeded deterministically
//! from the test name, so failures reproduce across runs. The default
//! case count is 32 (upstream: 256) to keep offline CI fast; override
//! per-block with `ProptestConfig::with_cases`.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::Strategy;

/// Deterministic per-test RNG plus failure plumbing.
pub mod test_runner {
    use super::*;

    /// Tuning for one `proptest!` block.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Why a generated case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with the given message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Value-generation RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Seeded from the test's name, so every run replays the same
        /// case sequence.
        #[must_use]
        pub fn deterministic(test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

/// Generation of arbitrary values of a type.
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                use rand::RngCore;
                rng.0.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        use rand::RngCore;
        rng.0.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        use rand::Rng;
        // Bounded arbitrary floats: ±1e9, plenty for property tests and
        // never NaN/inf (upstream generates those behind flags only).
        rng.0.gen_range(-1e9..1e9)
    }
}

/// Strategy producing [`Arbitrary`] values of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for any [`Arbitrary`] type.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Element-count specification for [`vec`]: a fixed `usize` or a
    /// `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: std::fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::test_runner::TestRng;
    use super::Arbitrary;

    /// An index into a collection of not-yet-known length: generate one
    /// arbitrarily, then project it onto `0..len` with
    /// [`index`](Index::index).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// This index projected onto a collection of length `len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            use rand::RngCore;
            Index(rng.0.next_u64() as usize)
        }
    }
}

/// The `prop::` hierarchy re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything tests typically import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two expressions differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
        $($(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let values =
                        ($( $crate::strategy::Strategy::generate(&$strategy, &mut rng), )+);
                    let inputs = format!(
                        concat!(stringify!(($($arg),+)), " = {:?}"),
                        values
                    );
                    let ($($arg,)+) = values;
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} with inputs [{}]: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            inputs,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in 1u64..=5, f in 0.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((1..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u8..255, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn regex_paths_parse(paths in prop::collection::vec("(/[a-d]{1,2}){1,6}", 1..10)) {
            for p in &paths {
                prop_assert!(p.starts_with('/'), "{p:?}");
                let comps: Vec<&str> = p.split('/').skip(1).collect();
                prop_assert!((1..=6).contains(&comps.len()), "{p:?}");
                for c in comps {
                    prop_assert!((1..=2).contains(&c.len()), "{p:?}");
                    prop_assert!(c.bytes().all(|b| (b'a'..=b'd').contains(&b)), "{p:?}");
                }
            }
        }

        #[test]
        fn index_projects_into_range(ix in any::<prop::sample::Index>(), len in 1usize..100) {
            prop_assert!(ix.index(len) < len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_is_honoured(_x in 0u8..=255) {
            // Merely exercising the config path; 3 cases must not panic.
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 5usize..6) {
                prop_assert!(x != 5, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(inner).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("x was 5"), "{msg}");
        assert!(msg.contains("inner"), "{msg}");
    }

    #[test]
    fn early_ok_return_is_allowed() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0usize..10) {
                if x > 100 {
                    prop_assert!(false, "unreachable");
                }
                return Ok(());
            }
        }
        inner();
    }
}
