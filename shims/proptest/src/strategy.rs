//! The [`Strategy`] trait and its built-in implementations: numeric
//! ranges, `&str` regex patterns and boxed/owned indirections.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this shim generates values directly.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String literals act as regex strategies: generate a string matching
/// the pattern. Supported subset: literal characters, `[a-z0-9_]`-style
/// classes (ranges and singles), `(...)` groups, alternation `a|b`, and
/// the quantifiers `{m}`, `{m,n}`, `*`, `+`, `?` (unbounded repeats cap
/// at 8).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = regex::parse(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        let mut out = String::new();
        regex::generate(&ast, rng, &mut out);
        out
    }
}

/// Parser + generator for the regex subset.
mod regex {
    use super::TestRng;
    use rand::Rng;

    /// Cap for `*`/`+`/open-ended `{m,}` repetition.
    const UNBOUNDED_CAP: u32 = 8;

    #[derive(Debug)]
    pub(super) enum Ast {
        /// Sequence of factors.
        Seq(Vec<Ast>),
        /// `a|b|c` alternatives.
        Alt(Vec<Ast>),
        /// One literal character.
        Lit(char),
        /// A character class: inclusive ranges.
        Class(Vec<(char, char)>),
        /// `inner{lo,hi}` (inclusive).
        Repeat(Box<Ast>, u32, u32),
    }

    pub(super) fn parse(pattern: &str) -> Result<Ast, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let ast = parse_alt(&chars, &mut pos)?;
        if pos != chars.len() {
            return Err(format!("trailing input at {pos}"));
        }
        Ok(ast)
    }

    fn parse_alt(chars: &[char], pos: &mut usize) -> Result<Ast, String> {
        let mut branches = vec![parse_seq(chars, pos)?];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            branches.push(parse_seq(chars, pos)?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_seq(chars: &[char], pos: &mut usize) -> Result<Ast, String> {
        let mut factors = Vec::new();
        while *pos < chars.len() && chars[*pos] != ')' && chars[*pos] != '|' {
            factors.push(parse_factor(chars, pos)?);
        }
        Ok(Ast::Seq(factors))
    }

    fn parse_factor(chars: &[char], pos: &mut usize) -> Result<Ast, String> {
        let atom = parse_atom(chars, pos)?;
        if *pos >= chars.len() {
            return Ok(atom);
        }
        let (lo, hi) = match chars[*pos] {
            '*' => (0, UNBOUNDED_CAP),
            '+' => (1, UNBOUNDED_CAP),
            '?' => (0, 1),
            '{' => {
                *pos += 1;
                let lo = parse_int(chars, pos)?;
                let hi = if chars.get(*pos) == Some(&',') {
                    *pos += 1;
                    if chars.get(*pos) == Some(&'}') {
                        lo.max(UNBOUNDED_CAP)
                    } else {
                        parse_int(chars, pos)?
                    }
                } else {
                    lo
                };
                if chars.get(*pos) != Some(&'}') {
                    return Err(format!("expected }} at {pos:?}"));
                }
                (lo, hi)
            }
            _ => return Ok(atom),
        };
        *pos += 1;
        if lo > hi {
            return Err(format!("bad repetition {{{lo},{hi}}}"));
        }
        Ok(Ast::Repeat(Box::new(atom), lo, hi))
    }

    fn parse_int(chars: &[char], pos: &mut usize) -> Result<u32, String> {
        let start = *pos;
        while chars.get(*pos).is_some_and(char::is_ascii_digit) {
            *pos += 1;
        }
        if start == *pos {
            return Err(format!("expected integer at {start}"));
        }
        chars[start..*pos]
            .iter()
            .collect::<String>()
            .parse()
            .map_err(|e| format!("bad integer: {e}"))
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Ast, String> {
        match chars[*pos] {
            '(' => {
                *pos += 1;
                let inner = parse_alt(chars, pos)?;
                if chars.get(*pos) != Some(&')') {
                    return Err(format!("unclosed group at {pos:?}"));
                }
                *pos += 1;
                Ok(inner)
            }
            '[' => {
                *pos += 1;
                let mut ranges = Vec::new();
                while *pos < chars.len() && chars[*pos] != ']' {
                    let lo = read_class_char(chars, pos)?;
                    if chars.get(*pos) == Some(&'-')
                        && chars.get(*pos + 1).is_some_and(|&c| c != ']')
                    {
                        *pos += 1;
                        let hi = read_class_char(chars, pos)?;
                        if lo > hi {
                            return Err(format!("inverted class range {lo}-{hi}"));
                        }
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                if chars.get(*pos) != Some(&']') {
                    return Err("unclosed character class".to_owned());
                }
                *pos += 1;
                if ranges.is_empty() {
                    return Err("empty character class".to_owned());
                }
                Ok(Ast::Class(ranges))
            }
            '\\' => {
                *pos += 1;
                let c = *chars.get(*pos).ok_or("dangling escape")?;
                *pos += 1;
                Ok(Ast::Lit(c))
            }
            '.' => {
                *pos += 1;
                Ok(Ast::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9')]))
            }
            c @ ('*' | '+' | '?' | '{' | '}' | ']') => Err(format!("unexpected {c:?}")),
            c => {
                *pos += 1;
                Ok(Ast::Lit(c))
            }
        }
    }

    fn read_class_char(chars: &[char], pos: &mut usize) -> Result<char, String> {
        let c = *chars.get(*pos).ok_or("unterminated class")?;
        *pos += 1;
        if c == '\\' {
            let e = *chars.get(*pos).ok_or("dangling escape in class")?;
            *pos += 1;
            Ok(e)
        } else {
            Ok(c)
        }
    }

    pub(super) fn generate(ast: &Ast, rng: &mut TestRng, out: &mut String) {
        match ast {
            Ast::Seq(factors) => {
                for f in factors {
                    generate(f, rng, out);
                }
            }
            Ast::Alt(branches) => {
                let pick = rng.0.gen_range(0..branches.len());
                generate(&branches[pick], rng, out);
            }
            Ast::Lit(c) => out.push(*c),
            Ast::Class(ranges) => {
                let pick = rng.0.gen_range(0..ranges.len());
                let (lo, hi) = ranges[pick];
                let c = rng.0.gen_range(lo as u32..=hi as u32);
                out.push(char::from_u32(c).expect("class chars are valid"));
            }
            Ast::Repeat(inner, lo, hi) => {
                let n = rng.0.gen_range(*lo..=*hi);
                for _ in 0..n {
                    generate(inner, rng, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn range_strategies_cover_their_domain() {
        let mut rng = TestRng::deterministic("range_domain");
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[(0usize..5).generate(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn regex_alternation_and_quantifiers() {
        let mut rng = TestRng::deterministic("regex_alt");
        for _ in 0..100 {
            let s = "(ab|cd)+x?".generate(&mut rng);
            let trimmed = s.strip_suffix('x').unwrap_or(&s);
            assert!(!trimmed.is_empty());
            assert!(trimmed.len().is_multiple_of(2), "{s:?}");
            for pair in trimmed.as_bytes().chunks(2) {
                assert!(pair == b"ab" || pair == b"cd", "{s:?}");
            }
        }
    }

    #[test]
    fn regex_classes_respect_ranges() {
        let mut rng = TestRng::deterministic("regex_class");
        for _ in 0..100 {
            let s = "[a-cx]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.len()), "{s:?}");
            assert!(s.bytes().all(|b| matches!(b, b'a'..=b'c' | b'x')), "{s:?}");
        }
    }

    #[test]
    fn escaped_literals() {
        let mut rng = TestRng::deterministic("regex_escape");
        assert_eq!(r"\[x\]".generate(&mut rng), "[x]");
    }
}
