//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly). A poisoned std
//! lock — a panic while held — simply hands back the inner guard, which
//! matches parking_lot's "no poisoning" semantics.

#![warn(missing_docs)]

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
