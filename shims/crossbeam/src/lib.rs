//! Offline stand-in for `crossbeam`.
//!
//! Provides the [`channel`] module surface the cluster runtime uses:
//! MPMC channels with clonable senders *and* receivers, `bounded` /
//! `unbounded` constructors, blocking `send`, and `recv` /
//! `recv_timeout` with crossbeam's disconnect semantics (a channel
//! counts as disconnected for receivers only once every sender is gone
//! *and* the queue has drained).

#![warn(missing_docs)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signalled when a message arrives or the last sender leaves.
        recv_ready: Condvar,
        /// Signalled when queue space frees up or the last receiver leaves.
        send_ready: Condvar,
        capacity: Option<usize>,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity; carries the unsent message.
        Full(T),
        /// Every receiver is gone; carries the unsent message.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the deadline.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Creates a channel of unlimited capacity.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages
    /// (`send` blocks when full).
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
            capacity,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.chan.recv_ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.chan.send_ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Delivers `msg`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.chan.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.chan.send_ready.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(msg);
            drop(state);
            self.chan.recv_ready.notify_one();
            Ok(())
        }

        /// Delivers `msg` without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when a bounded channel is at capacity;
        /// [`TrySendError::Disconnected`] when every receiver is gone.
        /// Both carry the unsent message.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut state = self.chan.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.chan.capacity {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            state.queue.push_back(msg);
            drop(state);
            self.chan.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Takes the next message, blocking until one arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once every sender is gone and the queue
        /// is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.chan.send_ready.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.chan.recv_ready.wait(state).unwrap();
            }
        }

        /// Takes the next message, waiting at most `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] if nothing arrived in time;
        /// [`RecvTimeoutError::Disconnected`] once every sender is gone
        /// and the queue is drained.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.chan.send_ready.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, result) = self
                    .chan
                    .recv_ready
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = next;
                if result.timed_out() && state.queue.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Takes the next message if one is already queued.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when the queue is empty;
        /// [`TryRecvError::Disconnected`] once every sender is gone and
        /// the queue is drained.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.state.lock().unwrap();
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.chan.send_ready.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fifo_across_threads() {
            let (tx, rx) = unbounded();
            let sender = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..100)
                .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
                .collect();
            sender.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn disconnect_after_drain() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(1));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_fires_without_messages() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn bounded_send_blocks_until_space() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the first recv
            });
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            t.join().unwrap();
        }
    }
}
