//! Integration tests of the live admin plane: an [`AdminServer`]
//! riding next to a [`NetServer`] daemon, scraped over loopback while
//! the data plane is under load.
//!
//! Everything runs on ephemeral ports (port 0), so the suite is safe
//! to run in parallel with itself and in CI sandboxes.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use d2tree::cluster::{
    admin_get, parse_metrics_json, run_load, AdminConfig, AdminServer, LoadConfig, LoadMode,
    NetMds, NetServer, NetServerConfig, RetryPolicy,
};
use d2tree::core::{D2TreeConfig, D2TreeScheme, LocalIndex, Partitioner};
use d2tree::metrics::{ClusterSpec, MdsId, Placement};
use d2tree::namespace::NamespaceTree;
use d2tree::telemetry::{names, Registry, Sampler, Tracer};
use d2tree::workload::{Trace, TraceProfile, WorkloadBuilder};

/// Derives the pieces one serving cluster needs (mirrors net_serve.rs).
fn derive(m: usize, seed: u64) -> (Arc<NamespaceTree>, Trace, Placement, Vec<(u64, u16)>) {
    let w = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(500).with_operations(1_200))
        .seed(seed)
        .build();
    let pop = w.popularity();
    let mut scheme = D2TreeScheme::new(D2TreeConfig::by_proportion(0.01).with_seed(seed));
    scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(m, 1.0));
    let owners: Vec<(u64, u16)> = scheme
        .local_index()
        .iter()
        .map(|(root, owner)| (root.index() as u64, owner.0))
        .collect();
    (
        Arc::new(w.tree),
        w.trace,
        scheme.placement().clone(),
        owners,
    )
}

fn index_from(owners: &[(u64, u16)]) -> LocalIndex {
    let mut index = LocalIndex::new();
    for &(root, owner) in owners {
        index.insert(
            d2tree::namespace::NodeId::from_index(root as usize),
            MdsId(owner),
        );
    }
    index
}

/// Starts one daemon plus its admin plane; a fast flight-recorder tick
/// keeps `/health` populated within milliseconds.
fn start_stack(
    seed: u64,
    tracer: Option<&Arc<Tracer>>,
) -> (
    Arc<NamespaceTree>,
    Trace,
    Vec<(u64, u16)>,
    Arc<Registry>,
    Arc<NetMds>,
    NetServer,
    AdminServer,
) {
    let (tree, trace, placement, owners) = derive(1, seed);
    let registry = Arc::new(Registry::new());
    names::register_all(&registry);
    let mut mds = NetMds::new(
        Arc::clone(&tree),
        placement,
        index_from(&owners),
        MdsId(0),
        Arc::clone(&registry),
    );
    if let Some(tr) = tracer {
        mds = mds.with_tracer(Arc::clone(tr));
    }
    let mds = Arc::new(mds);
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&mds), NetServerConfig::default())
        .expect("bind data plane");
    let admin = AdminServer::bind(
        "127.0.0.1:0",
        Arc::clone(&mds),
        AdminConfig {
            tick_interval: Duration::from_millis(20),
            ..AdminConfig::default()
        },
    )
    .expect("bind admin plane");
    (tree, trace, owners, registry, mds, server, admin)
}

fn load_cfg(addrs: Vec<String>, conns: usize, ops: usize) -> LoadConfig {
    LoadConfig {
        addrs,
        conns,
        ops,
        mode: LoadMode::Closed,
        timeout: Duration::from_secs(2),
        retry: RetryPolicy::default(),
        seed: 7,
        pipeline: 1,
    }
}

const GET_TIMEOUT: Duration = Duration::from_secs(2);

/// Total server-observed requests in a parsed `/metrics.json`.
fn srv_ops(doc: &d2tree::cluster::MetricsDoc) -> u64 {
    doc.histogram_count_where(|n| n.starts_with("srv_latency_us_"))
}

#[test]
fn mid_load_scrapes_see_monotone_histograms_and_healthy_rules() {
    let (tree, trace, owners, registry, mds, server, admin) = start_stack(11, None);
    let admin_addr = admin.local_addr().to_string();
    let ops = 4_000usize;
    let cfg = load_cfg(vec![server.local_addr().to_string()], 3, ops);
    let load = {
        let tree = Arc::clone(&tree);
        let registry = Arc::clone(&registry);
        let index = index_from(&owners);
        let trace = trace.clone();
        std::thread::spawn(move || run_load(&cfg, &tree, &index, &trace, &registry, None))
    };

    // Scrape while the load is in flight: per-op histogram counts must
    // only ever grow, and a healthy daemon must answer /health with 200.
    let mut totals = Vec::new();
    let mut healths = Vec::new();
    while !load.is_finished() {
        let (status, body) = admin_get(&admin_addr, "/metrics.json", GET_TIMEOUT).expect("scrape");
        assert_eq!(status, 200, "{body}");
        let doc = parse_metrics_json(&body).expect("exporter output parses");
        totals.push(srv_ops(&doc));
        let (hstatus, hbody) = admin_get(&admin_addr, "/health", GET_TIMEOUT).expect("health");
        healths.push((hstatus, hbody));
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = load.join().expect("load generator panicked");
    assert_eq!(report.completed, ops as u64, "errors: {}", report.errors);

    assert!(
        totals.windows(2).all(|w| w[0] <= w[1]),
        "histogram counts must be monotone under concurrent scrape: {totals:?}"
    );
    let (final_status, final_body) =
        admin_get(&admin_addr, "/metrics.json", GET_TIMEOUT).expect("final scrape");
    assert_eq!(final_status, 200);
    let final_doc = parse_metrics_json(&final_body).expect("final scrape parses");
    assert_eq!(
        srv_ops(&final_doc),
        ops as u64,
        "every served op lands in exactly one latency lane"
    );
    // A loopback closed loop is fast; the scrape cadence still has to
    // catch the counters mid-climb at least once.
    assert!(
        totals.iter().any(|&t| t > 0 && t < ops as u64),
        "no scrape observed the run in flight: {totals:?}"
    );
    // Owner-routed single-daemon load breaks no flight-recorder rule.
    for (status, body) in &healths {
        assert_eq!(*status, 200, "healthy load must never see 503: {body}");
    }
    let (hstatus, hbody) = admin_get(&admin_addr, "/health", GET_TIMEOUT).expect("health");
    assert_eq!(hstatus, 200, "{hbody}");
    assert!(hbody.contains("\"status\":\"ok\""), "{hbody}");

    // The Prometheus rendering carries the same families.
    let (pstatus, ptext) = admin_get(&admin_addr, "/metrics", GET_TIMEOUT).expect("prometheus");
    assert_eq!(pstatus, 200);
    assert!(
        ptext.contains("d2tree_srv_latency_us_read_ok_count"),
        "{ptext}"
    );
    assert!(ptext.contains("d2tree_net_active_conns"), "{ptext}");

    let stats = admin.shutdown();
    assert!(stats.scrapes >= totals.len() as u64 * 2);
    assert_eq!(mds.served(), ops as u64);
    let _ = server.shutdown();
}

#[test]
fn trace_and_slow_endpoints_expose_served_requests() {
    let tracer = Arc::new(Tracer::new(Sampler::always(0)));
    let (tree, trace, owners, registry, _mds, server, admin) = start_stack(23, Some(&tracer));
    let admin_addr = admin.local_addr().to_string();
    // One connection and >SEAL_SPANS ops: the daemon's conn thread
    // records a serve span per trailered request, so its local span
    // buffer seals at least one segment — which is what /trace reads.
    let ops = 2_000usize;
    let cfg = load_cfg(vec![server.local_addr().to_string()], 1, ops);
    let report = run_load(
        &cfg,
        &tree,
        &index_from(&owners),
        &trace,
        &registry,
        Some(&tracer),
    );
    assert_eq!(report.completed, ops as u64);

    // Segments seal in cross-thread timing order and the daemon's conn
    // thread flushes its tail on EOF, slightly after run_load returns —
    // so ask for a deep tail and poll briefly for that flush to land.
    let mut body = String::new();
    for _ in 0..100 {
        let (status, b) = admin_get(&admin_addr, "/trace?n=4096", GET_TIMEOUT).expect("trace");
        assert_eq!(status, 200);
        assert!(b.contains("\"traceEvents\":["), "{b}");
        body = b;
        if body.contains("\"serve\"") {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        body.contains("\"serve\""),
        "sealed serve spans must be visible: {body}"
    );

    let (sstatus, sbody) = admin_get(&admin_addr, "/slow", GET_TIMEOUT).expect("slow");
    assert_eq!(sstatus, 200);
    assert!(sbody.contains("\"dur_us\":"), "{sbody}");

    let _ = admin.shutdown();
    let _ = server.shutdown();
}

#[test]
fn shutdown_mid_scrape_drops_only_the_scrape_connection() {
    let (tree, trace, owners, registry, _mds, server, admin) = start_stack(31, None);

    // A scraper that has sent only half its request head when the
    // admin plane goes away…
    let mut stalled = TcpStream::connect(admin.local_addr()).expect("connect admin");
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    stalled.write_all(b"GET /metr").expect("partial head");
    let _ = admin.shutdown();

    // …gets its connection dropped (EOF or reset, never a hang)…
    let mut rest = Vec::new();
    let drained = stalled.read_to_end(&mut rest);
    assert!(
        drained.is_err() || rest.is_empty() || String::from_utf8_lossy(&rest).starts_with("HTTP/"),
        "a half-sent scrape must be dropped or answered, got {rest:?}"
    );

    // …while the data plane keeps serving as if nothing happened.
    let ops = 300usize;
    let cfg = load_cfg(vec![server.local_addr().to_string()], 2, ops);
    let report = run_load(&cfg, &tree, &index_from(&owners), &trace, &registry, None);
    assert_eq!(report.completed, ops as u64, "errors: {}", report.errors);
    let _ = server.shutdown();
}

/// Sends `raw` as-is and returns the status code of the answer.
fn raw_request(addr: std::net::SocketAddr, raw: &[u8]) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    stream.write_all(raw).expect("send request");
    stream.shutdown(std::net::Shutdown::Write).ok();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).expect("read response");
    resp.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {resp:?}"))
}

#[test]
fn admin_protocol_rejects_garbage_with_the_right_status_codes() {
    let (_tree, _trace, _owners, registry, _mds, server, admin) = start_stack(41, None);
    let addr = admin.local_addr();

    // Garbled request line → 400.
    assert_eq!(raw_request(addr, b"this is not http\r\n\r\n"), 400);
    // Non-UTF8 head → 400.
    assert_eq!(raw_request(addr, b"GET /\xff\xfe HTTP/1.0\r\n\r\n"), 400);
    // Relative path → 400.
    assert_eq!(raw_request(addr, b"GET metrics HTTP/1.0\r\n\r\n"), 400);
    // Oversized path → 414 (AdminConfig::max_path defaults to 1 KiB).
    let long = format!("GET /{} HTTP/1.0\r\n\r\n", "x".repeat(4_096));
    assert_eq!(raw_request(addr, long.as_bytes()), 414);
    // Non-GET method → 405.
    assert_eq!(raw_request(addr, b"POST /metrics HTTP/1.0\r\n\r\n"), 405);
    // Unknown endpoint → 404.
    assert_eq!(raw_request(addr, b"GET /nope HTTP/1.0\r\n\r\n"), 404);
    // Bare-newline head separators are accepted.
    assert_eq!(raw_request(addr, b"GET /health HTTP/1.0\n\n"), 200);

    let stats = admin.shutdown();
    assert!(stats.errors >= 6, "rejections must be counted: {stats:?}");
    let _ = server.shutdown();

    // Rejections land in the error counter, not the scrape counter.
    let snap = registry.snapshot();
    let counter = |n: &str| {
        snap.counters
            .iter()
            .find(|(k, _)| k.name == n)
            .map_or(0, |(_, v)| *v)
    };
    assert!(counter(names::ADMIN_ERRORS_TOTAL) >= 6);
    assert_eq!(counter(names::ADMIN_SCRAPES_TOTAL), 1);
}

#[test]
fn one_byte_at_a_time_requests_still_parse() {
    let (_tree, _trace, _owners, _registry, _mds, server, admin) = start_stack(53, None);

    // Mirrors the FrameReader boundary tests: a client dribbling its
    // request one byte per write must still get a full answer.
    let mut stream = TcpStream::connect(admin.local_addr()).expect("connect admin");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    for b in b"GET /metrics.json HTTP/1.0\r\n\r\n" {
        stream.write_all(&[*b]).expect("dribble byte");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut resp = String::new();
    stream.read_to_string(&mut resp).expect("read response");
    assert!(resp.starts_with("HTTP/1.0 200 OK"), "{resp}");
    let body = resp.split("\r\n\r\n").nth(1).expect("body present");
    assert!(
        parse_metrics_json(body).is_some(),
        "dribbled request must yield a parseable document: {body:?}"
    );

    let _ = admin.shutdown();
    let _ = server.shutdown();
}
