//! Integration tests of the real TCP serving layer: a [`NetServer`]
//! daemon fronting live MDS logic over the length-prefixed frame codec,
//! driven by the multi-connection load generator.
//!
//! Everything runs over loopback on ephemeral ports (port 0), so the
//! suite is safe to run in parallel with itself and in CI sandboxes.

use std::sync::Arc;
use std::time::Duration;

use d2tree::cluster::{
    run_load, LoadConfig, LoadMode, NetMds, NetServer, NetServerConfig, RetryPolicy,
};
use d2tree::core::{D2TreeConfig, D2TreeScheme, LocalIndex, Partitioner};
use d2tree::metrics::{ClusterSpec, MdsId, Placement};
use d2tree::namespace::NamespaceTree;
use d2tree::telemetry::trace::span_names;
use d2tree::telemetry::{names, Registry, Sampler, Tracer};
use d2tree::workload::{Trace, TraceProfile, WorkloadBuilder};

/// Derives the pieces one serving cluster needs: the synthetic tree and
/// trace, the D2-Tree placement over the trace's popularity, and a
/// fresh owner index per call site (the index is not `Clone`).
fn derive(m: usize, seed: u64) -> (Arc<NamespaceTree>, Trace, Placement, Vec<(u64, u16)>) {
    let w = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(500).with_operations(1_200))
        .seed(seed)
        .build();
    let pop = w.popularity();
    let mut scheme = D2TreeScheme::new(D2TreeConfig::by_proportion(0.01).with_seed(seed));
    scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(m, 1.0));
    let owners: Vec<(u64, u16)> = scheme
        .local_index()
        .iter()
        .map(|(root, owner)| (root.index() as u64, owner.0))
        .collect();
    (
        Arc::new(w.tree),
        w.trace,
        scheme.placement().clone(),
        owners,
    )
}

fn index_from(owners: &[(u64, u16)]) -> LocalIndex {
    let mut index = LocalIndex::new();
    for &(root, owner) in owners {
        index.insert(
            d2tree::namespace::NodeId::from_index(root as usize),
            MdsId(owner),
        );
    }
    index
}

fn start_mds(
    tree: &Arc<NamespaceTree>,
    placement: &Placement,
    owners: &[(u64, u16)],
    me: u16,
    registry: &Arc<Registry>,
    tracer: Option<&Arc<Tracer>>,
) -> (Arc<NetMds>, NetServer) {
    let mut mds = NetMds::new(
        Arc::clone(tree),
        placement.clone(),
        index_from(owners),
        MdsId(me),
        Arc::clone(registry),
    );
    if let Some(tr) = tracer {
        mds = mds.with_tracer(Arc::clone(tr));
    }
    let mds = Arc::new(mds);
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&mds), NetServerConfig::default())
        .expect("bind ephemeral port");
    (mds, server)
}

fn load_cfg(addrs: Vec<String>, conns: usize, ops: usize, mode: LoadMode) -> LoadConfig {
    LoadConfig {
        addrs,
        conns,
        ops,
        mode,
        timeout: Duration::from_secs(2),
        retry: RetryPolicy::default(),
        seed: 7,
        pipeline: 1,
    }
}

#[test]
fn closed_loop_completes_every_op_over_n_connections() {
    let (tree, trace, placement, owners) = derive(1, 11);
    let registry = Arc::new(Registry::new());
    names::register_all(&registry);
    let (mds, server) = start_mds(&tree, &placement, &owners, 0, &registry, None);

    let conns = 4usize;
    let ops = 800usize;
    let cfg = load_cfg(
        vec![server.local_addr().to_string()],
        conns,
        ops,
        LoadMode::Closed,
    );
    let report = run_load(&cfg, &tree, &index_from(&owners), &trace, &registry, None);

    assert_eq!(report.attempted, ops as u64);
    assert_eq!(report.completed, ops as u64, "errors: {}", report.errors);
    assert_eq!(report.errors, 0);
    assert_eq!(report.latency.count, ops as u64);
    assert!(report.achieved_qps > 0.0);
    assert_eq!(mds.served(), ops as u64);

    let stats = server.shutdown();
    // `net_conns_total` counts both sides of the shared registry: one
    // accept per worker connection plus one client-side connect.
    assert_eq!(stats.conns, 2 * conns as u64);
    // Every op is one request + one response frame, counted on both
    // sides of the socket.
    assert!(stats.frames >= 2 * ops as u64, "frames: {}", stats.frames);
    assert_eq!(stats.decode_errors, 0);
}

#[test]
fn redirects_route_back_to_the_owner_across_two_daemons() {
    let (tree, trace, placement, owners) = derive(2, 23);
    let registry = Arc::new(Registry::new());
    names::register_all(&registry);
    let (mds0, server0) = start_mds(&tree, &placement, &owners, 0, &registry, None);
    let (mds1, server1) = start_mds(&tree, &placement, &owners, 1, &registry, None);
    assert!(
        owners.iter().any(|&(_, o)| o == 0) && owners.iter().any(|&(_, o)| o == 1),
        "derivation must actually split ownership"
    );

    let ops = 600usize;
    let cfg = load_cfg(
        vec![
            server0.local_addr().to_string(),
            server1.local_addr().to_string(),
        ],
        3,
        ops,
        LoadMode::Closed,
    );
    // A client with an EMPTY owner index routes every op at a random
    // daemon; wrong guesses come back as redirects the worker must
    // follow to the advertised owner. Everything still completes.
    let blind = LocalIndex::new();
    let report = run_load(&cfg, &tree, &blind, &trace, &registry, None);

    assert_eq!(report.completed, ops as u64, "errors: {}", report.errors);
    assert!(
        report.redirects_followed > 0,
        "random routing over two daemons must miss sometimes"
    );
    assert!(mds0.served() > 0 && mds1.served() > 0);
    assert_eq!(
        mds0.served() + mds1.served(),
        ops as u64,
        "each op is served exactly once"
    );
    let _ = server0.shutdown();
    let _ = server1.shutdown();
}

#[test]
fn dead_server_surfaces_client_errors_within_the_retry_budget() {
    let (tree, trace, placement, owners) = derive(1, 31);
    let registry = Arc::new(Registry::new());
    names::register_all(&registry);
    let (_mds, server) = start_mds(&tree, &placement, &owners, 0, &registry, None);
    let addr = server.local_addr().to_string();
    let _ = server.shutdown(); // the port is now closed

    let ops = 40usize;
    let mut cfg = load_cfg(vec![addr], 2, ops, LoadMode::Closed);
    cfg.timeout = Duration::from_millis(200);
    cfg.retry = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        jitter: Duration::from_millis(1),
        deadline: Duration::from_millis(500),
    };
    let started = std::time::Instant::now();
    let report = run_load(&cfg, &tree, &index_from(&owners), &trace, &registry, None);

    assert_eq!(report.completed, 0);
    assert_eq!(report.errors, ops as u64, "every op fails, none hang");
    // No server ever answered, so every failure is a Timeout (or the
    // per-op deadline fired first) — never a silent stall.
    assert_eq!(
        report.timeouts + report.deadline_exceeded,
        ops as u64,
        "timeouts: {}, deadline: {}",
        report.timeouts,
        report.deadline_exceeded
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "a dead server must fail fast, took {:?}",
        started.elapsed()
    );
}

#[test]
fn killing_the_server_mid_load_never_hangs_the_generator() {
    let (tree, trace, placement, owners) = derive(1, 41);
    let registry = Arc::new(Registry::new());
    names::register_all(&registry);
    let (_mds, server) = start_mds(&tree, &placement, &owners, 0, &registry, None);
    let addr = server.local_addr().to_string();

    let ops = 4_000usize;
    let mut cfg = load_cfg(vec![addr], 2, ops, LoadMode::Closed);
    cfg.timeout = Duration::from_millis(200);
    cfg.retry = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        jitter: Duration::from_millis(1),
        deadline: Duration::from_millis(300),
    };
    let load = {
        let tree = Arc::clone(&tree);
        let registry = Arc::clone(&registry);
        let index = index_from(&owners);
        let trace = trace.clone();
        std::thread::spawn(move || run_load(&cfg, &tree, &index, &trace, &registry, None))
    };
    std::thread::sleep(Duration::from_millis(30));
    let _ = server.shutdown();

    let started = std::time::Instant::now();
    let report = load.join().expect("load generator panicked");
    assert_eq!(report.completed + report.errors, ops as u64);
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "generator must drain after the kill, took {:?} past the join",
        started.elapsed()
    );
}

#[test]
fn open_loop_pacing_holds_the_schedule() {
    let (tree, trace, placement, owners) = derive(1, 53);
    let registry = Arc::new(Registry::new());
    names::register_all(&registry);
    let (_mds, server) = start_mds(&tree, &placement, &owners, 0, &registry, None);

    let ops = 300usize;
    let target_qps = 1_000.0;
    let cfg = load_cfg(
        vec![server.local_addr().to_string()],
        2,
        ops,
        LoadMode::Open { target_qps },
    );
    let report = run_load(&cfg, &tree, &index_from(&owners), &trace, &registry, None);

    assert_eq!(report.completed, ops as u64, "errors: {}", report.errors);
    // 300 ops at 1000 ops/s is a 0.3 s schedule; a closed loop over
    // loopback would finish far faster, so elapsed time near the
    // schedule proves the pacer actually held ops back.
    assert!(
        report.elapsed >= Duration::from_millis(250),
        "pacer released too fast: {:?}",
        report.elapsed
    );
    assert!(
        report.achieved_qps <= target_qps * 1.5,
        "achieved {} qps against a {target_qps} target",
        report.achieved_qps
    );
    let _ = server.shutdown();
}

#[test]
fn trace_trailer_links_client_and_server_spans_across_the_socket() {
    let (tree, trace, placement, owners) = derive(1, 67);
    let registry = Arc::new(Registry::new());
    names::register_all(&registry);
    let tracer = Arc::new(Tracer::new(Sampler::always(0)));
    let (_mds, server) = start_mds(&tree, &placement, &owners, 0, &registry, Some(&tracer));

    let ops = 60usize;
    let cfg = load_cfg(
        vec![server.local_addr().to_string()],
        2,
        ops,
        LoadMode::Closed,
    );
    let report = run_load(
        &cfg,
        &tree,
        &index_from(&owners),
        &trace,
        &registry,
        Some(&tracer),
    );
    assert_eq!(report.completed, ops as u64);
    let _ = server.shutdown();

    let spans = tracer.drain();
    let ops_spans: Vec<_> = spans.iter().filter(|s| s.name == span_names::OP).collect();
    let serves: Vec<_> = spans
        .iter()
        .filter(|s| s.name == span_names::SERVE)
        .collect();
    assert_eq!(ops_spans.len(), ops, "one client root span per op");
    assert_eq!(serves.len(), ops, "one server-side serve span per op");
    for serve in &serves {
        assert_eq!(serve.mds, Some(0), "serve spans run on the daemon");
        let parent = serve.parent.expect("serve spans parent on the trailer");
        let root = ops_spans
            .iter()
            .find(|o| o.id == parent)
            .unwrap_or_else(|| panic!("serve span {:?} has no client root", serve.id));
        assert_eq!(
            root.trace, serve.trace,
            "client and server halves share one trace id carried by the wire trailer"
        );
    }
    // Attempt spans (the client-side socket half) also hang off the
    // same roots, completing the client -> socket -> server chain.
    let attempts: Vec<_> = spans
        .iter()
        .filter(|s| s.name == span_names::ATTEMPT)
        .collect();
    assert!(attempts.len() >= ops);
    for a in &attempts {
        let parent = a.parent.expect("attempt spans are children");
        assert!(
            ops_spans
                .iter()
                .any(|o| o.id == parent && o.trace == a.trace),
            "attempt span must chain to a client root"
        );
    }
}

#[test]
fn pipelined_closed_loop_completes_and_batches_on_the_server() {
    let (tree, trace, placement, owners) = derive(1, 31);
    let registry = Arc::new(Registry::new());
    names::register_all(&registry);
    let (mds, server) = start_mds(&tree, &placement, &owners, 0, &registry, None);

    let ops = 800usize;
    let mut cfg = load_cfg(
        vec![server.local_addr().to_string()],
        2,
        ops,
        LoadMode::Closed,
    );
    cfg.pipeline = 8;
    let report = run_load(&cfg, &tree, &index_from(&owners), &trace, &registry, None);

    assert_eq!(report.attempted, ops as u64);
    assert_eq!(report.completed, ops as u64, "errors: {}", report.errors);
    assert_eq!(report.errors, 0);
    assert_eq!(report.latency.count, ops as u64, "latency is still per-op");
    assert_eq!(mds.served(), ops as u64);

    let stats = server.shutdown();
    assert!(
        stats.batches > 0,
        "the batched serve loop must be exercised"
    );
    assert!(
        stats.batches < ops as u64,
        "8-deep bursts over loopback must coalesce: {} batches for {ops} ops",
        stats.batches
    );
    assert_eq!(stats.decode_errors, 0);
}

#[test]
fn pipelined_load_follows_redirects_to_completion() {
    let (tree, trace, placement, owners) = derive(2, 47);
    let registry = Arc::new(Registry::new());
    names::register_all(&registry);
    let (mds0, server0) = start_mds(&tree, &placement, &owners, 0, &registry, None);
    let (mds1, server1) = start_mds(&tree, &placement, &owners, 1, &registry, None);

    let ops = 600usize;
    let mut cfg = load_cfg(
        vec![
            server0.local_addr().to_string(),
            server1.local_addr().to_string(),
        ],
        3,
        ops,
        LoadMode::Closed,
    );
    cfg.pipeline = 8;
    // A blind client pipelines at whichever daemon it guesses; wrong
    // guesses come back as in-window redirects that fall back to the
    // sequential retry path. Everything still completes exactly once.
    let blind = LocalIndex::new();
    let report = run_load(&cfg, &tree, &blind, &trace, &registry, None);

    assert_eq!(report.completed, ops as u64, "errors: {}", report.errors);
    assert!(
        report.redirects_followed > 0,
        "random routing over two daemons must miss sometimes"
    );
    assert_eq!(
        mds0.served() + mds1.served(),
        ops as u64,
        "each op is served exactly once"
    );
    let _ = server0.shutdown();
    let _ = server1.shutdown();
}

#[test]
fn committed_net_artifact_is_a_live_run() {
    // The committed benchmark report must come from a run that actually
    // completed operations — a dead artifact ("completed": 0) means the
    // load generator never reached a daemon and measured nothing.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/BENCH_net.json");
    let doc = std::fs::read_to_string(path).expect("results/BENCH_net.json is committed");
    assert!(
        !doc.replace(' ', "").contains("\"completed\":0"),
        "results/BENCH_net.json records a dead run (a section completed 0 ops)"
    );
    assert!(
        doc.contains("\"completed\""),
        "results/BENCH_net.json carries at least one load section"
    );
}
