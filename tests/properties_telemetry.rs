//! Property-based tests of the telemetry substrate: the log-bucketed
//! latency histogram's edge cases (empty, single sample, top-bucket
//! saturation) and the event journal's eviction ordering once the ring
//! wraps around.

use d2tree::telemetry::{EventJournal, EventKind, Histogram};
use proptest::prelude::*;

proptest! {
    #[test]
    fn empty_histogram_reports_zeroes(q in 0.0f64..=1.0) {
        let h = Histogram::new();
        prop_assert_eq!(h.count(), 0);
        prop_assert_eq!(h.sum(), 0);
        prop_assert_eq!(h.mean(), 0.0);
        prop_assert_eq!(h.quantile(q), 0);
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, 0);
        prop_assert_eq!(snap.min, 0);
        prop_assert_eq!(snap.max, 0);
        prop_assert_eq!(snap.p50, 0);
        prop_assert_eq!(snap.p999, 0);
    }

    #[test]
    fn single_sample_histogram_is_exact_in_count_and_bounded_in_value(
        v in 0u64..=u64::MAX,
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        h.record(v);
        prop_assert_eq!(h.count(), 1);
        prop_assert_eq!(h.sum(), v);
        prop_assert_eq!(h.mean(), v as f64);
        let snap = h.snapshot();
        prop_assert_eq!(snap.min, v);
        prop_assert_eq!(snap.max, v);
        // Every quantile lands in the one occupied bucket: exact below
        // the 16-sample linear range, within the bucket's ~6.25%
        // relative width above it.
        let at_q = h.quantile(q);
        if v < 16 {
            prop_assert_eq!(at_q, v);
        } else {
            prop_assert!(at_q.abs_diff(v) <= v / 16 + 1, "quantile {at_q} vs sample {v}");
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        samples in proptest::collection::vec(0u64..1_000_000, 1..200),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
    }

    #[test]
    fn top_bucket_saturates_without_losing_counts(n in 1u64..50) {
        // u64::MAX lands in the last bucket; piling samples there must
        // keep count/sum/extrema coherent and every quantile inside the
        // top bucket's range.
        let h = Histogram::new();
        for _ in 0..n {
            h.record(u64::MAX);
        }
        prop_assert_eq!(h.count(), n);
        // The sum wraps modulo 2^64 by design (relaxed fetch_add); the
        // snapshot extrema stay exact.
        let snap = h.snapshot();
        prop_assert_eq!(snap.min, u64::MAX);
        prop_assert_eq!(snap.max, u64::MAX);
        let p = h.quantile(1.0);
        prop_assert!(p >= u64::MAX - u64::MAX / 16, "top-bucket quantile too low: {p}");
    }

    #[test]
    fn journal_eviction_keeps_newest_with_contiguous_seqs(
        capacity in 1usize..32,
        n in 0usize..200,
    ) {
        let journal = EventJournal::new(capacity);
        for i in 0..n {
            let seq = journal.record(EventKind::Heartbeat {
                mds: (i % 7) as u16,
                load: i as f64,
            });
            prop_assert_eq!(seq, i as u64);
        }
        prop_assert_eq!(journal.recorded(), n as u64);
        let events = journal.snapshot();
        prop_assert_eq!(events.len(), n.min(capacity));
        prop_assert_eq!(journal.len(), events.len());
        // After wraparound the ring holds exactly the newest `capacity`
        // events, in order, with gap-free sequence numbers.
        for (offset, e) in events.iter().enumerate() {
            prop_assert_eq!(e.seq, (n - events.len() + offset) as u64);
        }
    }

    #[test]
    fn journal_clear_never_rewinds_sequences(
        capacity in 1usize..16,
        before in 0usize..40,
    ) {
        let journal = EventJournal::new(capacity);
        for _ in 0..before {
            journal.record(EventKind::MdsDown { mds: 1 });
        }
        journal.clear();
        prop_assert!(journal.is_empty());
        prop_assert_eq!(journal.recorded(), before as u64);
        let seq = journal.record(EventKind::MdsRecovered { mds: 1 });
        prop_assert_eq!(seq, before as u64);
        prop_assert_eq!(journal.snapshot().len(), 1);
    }
}
