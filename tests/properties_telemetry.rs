//! Property-based tests of the telemetry substrate: the log-bucketed
//! latency histogram's edge cases (empty, single sample, top-bucket
//! saturation), the event journal's eviction ordering once the ring
//! wraps around, the packed span encoding's round trip across narrow
//! and wide records, and the flight recorder's newest-N retention.

use d2tree::telemetry::{
    ArgKey, EventJournal, EventKind, FaultKind, FlightRecorder, Histogram, PackedSpans, Span,
    SpanArgs, SpanId, SpanName, TickSample, TraceId,
};
use proptest::prelude::*;

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives one span from `seed`. Even indices stay near the previous
/// span (small monotone ids and timestamps, the narrow packed form);
/// odd multiples of 3 use full-width values that cannot fit a u32
/// delta, forcing the wide fallback; everything else lands in between.
fn span_from_seed(i: usize, seed: u64) -> Span {
    let r = |n: u64| mix(seed ^ n);
    let full_width = i % 3 == 2;
    let (trace, id, start, dur) = if full_width {
        (r(1), r(2), r(3), r(4))
    } else {
        (i as u64 + 1, i as u64 * 7 + 1, i as u64 * 100, r(4) % 5_000)
    };
    let mut args = SpanArgs::new();
    for a in 0..(r(5) % 5) {
        let key = ArgKey::from_code((r(6 + a) % 18) as u8).expect("codes 0..18 are valid");
        let val = if full_width {
            r(7 + a)
        } else {
            r(7 + a) % 10_000
        };
        args.push(key, val);
    }
    Span {
        trace: TraceId(trace),
        id: SpanId(id),
        parent: (r(8) % 3 == 0).then(|| SpanId(id ^ (r(9) % 64))),
        name: SpanName::from_code((r(10) % 14) as u8).expect("codes 0..14 are valid"),
        mds: (r(11) % 2 == 0).then(|| (r(12) % 1024) as u16),
        start_us: start,
        dur_us: dur,
        fault: match r(13) % 8 {
            1 => Some(FaultKind::Drop),
            2 => Some(FaultKind::Delay),
            3 => Some(FaultKind::Duplicate),
            4 => Some(FaultKind::Reorder),
            5 => Some(FaultKind::TornWrite),
            6 => Some(FaultKind::PartialFsync),
            7 => Some(FaultKind::CorruptRecord),
            _ => None,
        },
        args,
    }
}

proptest! {
    #[test]
    fn empty_histogram_reports_zeroes(q in 0.0f64..=1.0) {
        let h = Histogram::new();
        prop_assert_eq!(h.count(), 0);
        prop_assert_eq!(h.sum(), 0);
        prop_assert_eq!(h.mean(), 0.0);
        prop_assert_eq!(h.quantile(q), 0);
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, 0);
        prop_assert_eq!(snap.min, 0);
        prop_assert_eq!(snap.max, 0);
        prop_assert_eq!(snap.p50, 0);
        prop_assert_eq!(snap.p999, 0);
    }

    #[test]
    fn single_sample_histogram_is_exact_in_count_and_bounded_in_value(
        v in 0u64..=u64::MAX,
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        h.record(v);
        prop_assert_eq!(h.count(), 1);
        prop_assert_eq!(h.sum(), v);
        prop_assert_eq!(h.mean(), v as f64);
        let snap = h.snapshot();
        prop_assert_eq!(snap.min, v);
        prop_assert_eq!(snap.max, v);
        // Every quantile lands in the one occupied bucket: exact below
        // the 16-sample linear range, within the bucket's ~6.25%
        // relative width above it.
        let at_q = h.quantile(q);
        if v < 16 {
            prop_assert_eq!(at_q, v);
        } else {
            prop_assert!(at_q.abs_diff(v) <= v / 16 + 1, "quantile {at_q} vs sample {v}");
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        samples in proptest::collection::vec(0u64..1_000_000, 1..200),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
    }

    #[test]
    fn top_bucket_saturates_without_losing_counts(n in 1u64..50) {
        // u64::MAX lands in the last bucket; piling samples there must
        // keep count/sum/extrema coherent and every quantile inside the
        // top bucket's range.
        let h = Histogram::new();
        for _ in 0..n {
            h.record(u64::MAX);
        }
        prop_assert_eq!(h.count(), n);
        // The sum wraps modulo 2^64 by design (relaxed fetch_add); the
        // snapshot extrema stay exact.
        let snap = h.snapshot();
        prop_assert_eq!(snap.min, u64::MAX);
        prop_assert_eq!(snap.max, u64::MAX);
        let p = h.quantile(1.0);
        prop_assert!(p >= u64::MAX - u64::MAX / 16, "top-bucket quantile too low: {p}");
    }

    #[test]
    fn journal_eviction_keeps_newest_with_contiguous_seqs(
        capacity in 1usize..32,
        n in 0usize..200,
    ) {
        let journal = EventJournal::new(capacity);
        for i in 0..n {
            let seq = journal.record(EventKind::Heartbeat {
                mds: (i % 7) as u16,
                load: i as f64,
            });
            prop_assert_eq!(seq, i as u64);
        }
        prop_assert_eq!(journal.recorded(), n as u64);
        let events = journal.snapshot();
        prop_assert_eq!(events.len(), n.min(capacity));
        prop_assert_eq!(journal.len(), events.len());
        // After wraparound the ring holds exactly the newest `capacity`
        // events, in order, with gap-free sequence numbers.
        for (offset, e) in events.iter().enumerate() {
            prop_assert_eq!(e.seq, (n - events.len() + offset) as u64);
        }
    }

    #[test]
    fn packed_spans_round_trip_any_mix_of_narrow_and_wide(
        seeds in proptest::collection::vec(0u64..=u64::MAX, 0..80),
    ) {
        let spans: Vec<Span> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| span_from_seed(i, s))
            .collect();
        let mut packed = PackedSpans::new();
        for s in &spans {
            packed.push(s);
        }
        prop_assert_eq!(packed.len(), spans.len());
        // Decoding reproduces every field of every span, in order,
        // whatever mixture of delta-fitting and overflowing records the
        // sequence produced.
        prop_assert_eq!(packed.decode(), spans);
    }

    #[test]
    fn flight_recorder_wraparound_keeps_newest_ticks(
        capacity in 1usize..16,
        n in 0usize..100,
    ) {
        let mut rec = FlightRecorder::new(capacity);
        for i in 0..n as u64 {
            rec.sample(
                TickSample {
                    t_us: (i + 1) * 1_000,
                    locality: 0.5,
                    balance: 2.0,
                    ops_total: (i + 1) * 10,
                    retries_total: (i + 1) * 3,
                    migrations_total: i + 1,
                    loads: vec![1.0, 2.0],
                },
                None,
            );
        }
        prop_assert_eq!(rec.total_recorded(), n as u64);
        prop_assert_eq!(rec.len(), n.min(capacity));
        let ticks: Vec<_> = rec.ticks().collect();
        // The ring holds exactly the newest `capacity` ticks, in order,
        // with gap-free tick numbers that survive eviction…
        for (offset, t) in ticks.iter().enumerate() {
            prop_assert_eq!(t.tick, (n - ticks.len() + offset) as u64);
        }
        // …and differencing against the previous sample is unaffected
        // by ticks falling off the front: every retained delta is one
        // step's worth except the very first sample ever taken.
        for t in ticks {
            prop_assert_eq!(t.ops, 10, "tick {}", t.tick);
            prop_assert_eq!(t.retries, 3, "tick {}", t.tick);
            prop_assert_eq!(t.migrations, 1, "tick {}", t.tick);
        }
    }

    #[test]
    fn journal_clear_never_rewinds_sequences(
        capacity in 1usize..16,
        before in 0usize..40,
    ) {
        let journal = EventJournal::new(capacity);
        for _ in 0..before {
            journal.record(EventKind::MdsDown { mds: 1 });
        }
        journal.clear();
        prop_assert!(journal.is_empty());
        prop_assert_eq!(journal.recorded(), before as u64);
        let seq = journal.record(EventKind::MdsRecovered { mds: 1 });
        prop_assert_eq!(seq, before as u64);
        prop_assert_eq!(journal.snapshot().len(), 1);
    }
}
