//! Protocol-level robustness: the wire codec never panics on arbitrary
//! bytes, round-trips arbitrary valid frames, and the lock service holds
//! mutual exclusion under thread stress.

use bytes_fuzz::*;

mod bytes_fuzz {
    pub use d2tree::cluster::message::{Request, RequestId, Response, ResponseBody};
    pub use d2tree::metrics::MdsId;
    pub use d2tree::namespace::NodeId;
    pub use d2tree::workload::OpKind;
    pub use proptest::prelude::*;
}

proptest! {
    #[test]
    fn request_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut frame = bytes::Bytes::from(bytes);
        let _ = Request::decode(&mut frame); // must not panic
    }

    #[test]
    fn response_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut frame = bytes::Bytes::from(bytes);
        let _ = Response::decode(&mut frame);
    }

    #[test]
    fn arbitrary_requests_roundtrip(
        id in any::<u64>(),
        target in 0u32..u32::MAX,
        kind in 0u8..3,
        hops in any::<u32>(),
        traced in any::<bool>(),
        trace_id in any::<u64>(),
        parent_span in any::<u64>(),
    ) {
        let trace = traced.then_some((trace_id, parent_span));
        let kind = match kind {
            0 => OpKind::Read,
            1 => OpKind::Write,
            _ => OpKind::Update,
        };
        let req = Request {
            id: RequestId(id),
            kind,
            target: NodeId::from_index(target as usize),
            hops,
            trace,
        };
        let mut framed = req.encode();
        prop_assert_eq!(Request::decode(&mut framed), Some(req));
        prop_assert!(framed.is_empty());
    }

    #[test]
    fn arbitrary_responses_roundtrip(id in any::<u64>(), from in 0u16..1024, body_kind in 0u8..3, node in 0u32..u32::MAX, owner in 0u16..1024, hops in any::<u32>()) {
        let body = match body_kind {
            0 => ResponseBody::Served { node: NodeId::from_index(node as usize) },
            1 => ResponseBody::Redirect { owner: MdsId(owner) },
            _ => ResponseBody::NotFound,
        };
        let resp = Response { id: RequestId(id), from: MdsId(from), body, hops };
        let mut framed = resp.encode();
        prop_assert_eq!(Response::decode(&mut framed), Some(resp));
    }
}

#[test]
fn lock_service_mutual_exclusion_under_stress() {
    use d2tree::cluster::LockService;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let locks = Arc::new(LockService::new(10_000));
    let counter = Arc::new(AtomicU64::new(0));
    let max_seen = Arc::new(AtomicU64::new(0));
    let node = d2tree::namespace::NodeId::from_index(5);

    let mut handles = Vec::new();
    for _ in 0..8 {
        let locks = Arc::clone(&locks);
        let counter = Arc::clone(&counter);
        let max_seen = Arc::clone(&max_seen);
        handles.push(std::thread::spawn(move || {
            for _ in 0..500 {
                let token = loop {
                    if let Some(t) = locks.try_acquire(node, 0) {
                        break t;
                    }
                    std::thread::yield_now();
                };
                // Critical section: concurrent holders would drive the
                // in-section count above 1.
                let inside = counter.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(inside, Ordering::SeqCst);
                counter.fetch_sub(1, Ordering::SeqCst);
                assert!(locks.release(token));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        max_seen.load(Ordering::SeqCst),
        1,
        "two threads held the lock at once"
    );
    assert_eq!(locks.held_count(), 0);
}

#[test]
fn fencing_tokens_strictly_increase_across_threads() {
    use d2tree::cluster::LockService;
    use std::sync::Arc;

    let locks = Arc::new(LockService::new(10_000));
    let node = d2tree::namespace::NodeId::from_index(9);
    let mut handles = Vec::new();
    for _ in 0..4 {
        let locks = Arc::clone(&locks);
        handles.push(std::thread::spawn(move || {
            let mut fences = Vec::new();
            for _ in 0..200 {
                let token = loop {
                    if let Some(t) = locks.try_acquire(node, 0) {
                        break t;
                    }
                    std::thread::yield_now();
                };
                fences.push(token.fence);
                assert!(locks.release(token));
            }
            fences
        }));
    }
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let before = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), before, "fencing tokens must never repeat");
}
