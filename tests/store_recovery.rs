//! Durable-store recovery properties: every possible torn tail, every
//! sampled bit-flip, live kill/restart with on-disk state, and the
//! seeded store-chaos schedules the CI matrix replays one seed at a
//! time via `CHAOS_SEED` (same convention as `tests/chaos.rs`).
//!
//! The contract under test: reopening a store always yields the exact
//! replay of a prefix of what was appended — recovery may truncate a
//! torn suffix, and it must fail loudly on corruption, but it never
//! invents records and never silently drops fsynced interior ones.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use d2tree::cluster::live::{LiveCluster, LiveConfig};
use d2tree::cluster::{run_store_chaos, FaultPlan, StoreChaosConfig};
use d2tree::core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree::metrics::{ClusterSpec, MdsId};
use d2tree::store::{AttrState, MdsRecord, MdsState, MdsStore, StoreConfig};
use d2tree::telemetry::names;
use d2tree::telemetry::EventKind;
use d2tree::workload::{OpKind, Operation, TraceProfile, WorkloadBuilder};

/// Seeds the CI matrix replays one at a time via `CHAOS_SEED`.
const DEFAULT_SEEDS: &[u64] = &[1, 7, 42];

fn seeds_under_test() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be an integer")],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "d2tree-storerec-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A deterministic record mix; index collisions keep version gating hot.
fn record_at(i: u64) -> MdsRecord {
    match i % 4 {
        0 => MdsRecord::AttrCommit {
            node: i % 13,
            gl: i.is_multiple_of(5),
            attr: AttrState {
                version: i + 1,
                mode: 0o644,
                uid: (i % 3) as u32,
                gid: 0,
                size: i * 37,
                mtime: 1_700_000_000 + i,
            },
        },
        1 => MdsRecord::Ownership {
            root: i % 7,
            acquired: i.is_multiple_of(2),
        },
        2 => MdsRecord::GlRecut {
            version: i,
            promoted: i % 4,
            demoted: i % 3,
        },
        _ => MdsRecord::Popularity {
            root: i % 7,
            bits: ((i * 211) as f64).to_bits(),
        },
    }
}

fn replay(records: &[MdsRecord]) -> MdsState {
    let mut state = MdsState::default();
    for r in records {
        state.apply(r);
    }
    state
}

/// Writes `n` records into a fresh single-segment store and syncs.
/// Returns the store dir, the records and each record's frame length.
fn synced_store(tag: &str, n: u64) -> (PathBuf, Vec<MdsRecord>, Vec<usize>) {
    let dir = tmp_dir(tag);
    let records: Vec<MdsRecord> = (0..n).map(record_at).collect();
    let frame_lens: Vec<usize> = records
        .iter()
        .map(|r| 8 + 8 + r.encode().len()) // header + lsn + body
        .collect();
    let (mut store, _) = MdsStore::open(&dir, StoreConfig::manual()).expect("fresh open");
    for r in &records {
        store.append(*r).expect("append");
    }
    store.sync().expect("sync");
    (dir, records, frame_lens)
}

fn wal_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read store dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    out.sort();
    out
}

/// Crash at EVERY byte offset of the log: recovery must come back with
/// the exact replay of the longest whole-frame prefix the bytes cover —
/// never a partial record, never invented state.
#[test]
fn truncation_at_every_byte_offset_recovers_an_exact_prefix() {
    let (dir, records, frame_lens) = synced_store("torn", 50);
    let segs = wal_files(&dir);
    assert_eq!(segs.len(), 1, "manual config keeps one segment");
    let full = fs::read(&segs[0]).expect("read segment");

    // Frame boundaries: magic, then cumulative frame ends.
    let mut boundaries = vec![8usize];
    for len in &frame_lens {
        boundaries.push(boundaries.last().unwrap() + len);
    }
    assert_eq!(*boundaries.last().unwrap(), full.len());

    let work = tmp_dir("torn-work");
    for cut in 0..=full.len() {
        let _ = fs::remove_dir_all(&work);
        fs::create_dir_all(&work).unwrap();
        fs::write(work.join(segs[0].file_name().unwrap()), &full[..cut]).unwrap();

        let (store, info) = MdsStore::open(&work, StoreConfig::manual())
            .unwrap_or_else(|e| panic!("cut at {cut}: torn tail must be recoverable, got {e}"));
        // The recovered prefix is exactly the number of whole frames the
        // surviving bytes contain.
        let expect_frames = boundaries.iter().filter(|&&b| b > 8 && b <= cut).count();
        assert_eq!(
            info.next_lsn as usize, expect_frames,
            "cut at {cut}: wrong prefix length"
        );
        assert_eq!(
            *store.state(),
            replay(&records[..expect_frames]),
            "cut at {cut}: recovered state is not the exact prefix replay"
        );
        // A cut inside the magic tears the whole segment; past it, the
        // torn region starts at the last complete frame boundary.
        let valid = if cut < 8 {
            0
        } else {
            boundaries[expect_frames]
        };
        assert_eq!(
            info.torn_bytes as usize,
            cut - valid,
            "cut at {cut}: torn byte accounting"
        );
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&work);
}

/// Flip bits across the log: damage in the interior (where a later
/// CRC-valid frame survives) must fail loudly as corruption; damage in
/// the final frame may be treated as a torn tail — but then the state
/// must still be the exact shorter prefix. Nothing in between.
#[test]
fn bit_flips_fail_loudly_or_truncate_exactly() {
    let (dir, records, frame_lens) = synced_store("flip", 40);
    let segs = wal_files(&dir);
    let full = fs::read(&segs[0]).expect("read segment");
    let last_frame_start = full.len() - frame_lens.last().unwrap();
    let n = records.len();

    let work = tmp_dir("flip-work");
    for pos in 0..full.len() {
        // Sample every position with a shifting bit to keep runtime sane
        // while touching every byte.
        let bit = 1u8 << (pos % 8);
        let mut bytes = full.clone();
        bytes[pos] ^= bit;
        let _ = fs::remove_dir_all(&work);
        fs::create_dir_all(&work).unwrap();
        fs::write(work.join(segs[0].file_name().unwrap()), &bytes).unwrap();

        match MdsStore::open(&work, StoreConfig::manual()) {
            Err(e) => {
                assert!(e.is_corrupt(), "flip at {pos}: non-corruption error {e}");
            }
            Ok((store, info)) => {
                assert!(
                    pos >= last_frame_start,
                    "flip at {pos}: interior damage (before byte {last_frame_start}) \
                     must be detected, but the store opened cleanly"
                );
                assert_eq!(info.next_lsn as usize, n - 1, "flip at {pos}");
                assert_eq!(
                    *store.state(),
                    replay(&records[..n - 1]),
                    "flip at {pos}: recovered state is not the exact prefix replay"
                );
            }
        }
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&work);
}

/// Snapshot + compact + reopen: the snapshot fully covers the log, the
/// covered segments are pruned and recovery reproduces the same state.
#[test]
fn snapshot_compact_reopen_roundtrip() {
    let dir = tmp_dir("compact");
    let records: Vec<MdsRecord> = (0..300).map(record_at).collect();
    let mut config = StoreConfig::manual();
    config.segment_bytes = 1024; // force rotation so compaction has prey
    {
        let (mut store, _) = MdsStore::open(&dir, config).expect("open");
        for (i, r) in records.iter().enumerate() {
            store.append(*r).expect("append");
            if i % 37 == 0 {
                store.sync().expect("sync");
            }
        }
        store.sync().expect("final sync");
    }
    let before = d2tree::store::verify(&dir).expect("verify before");
    assert_eq!(before.next_lsn, 300);

    let (lsn, _removed) = d2tree::store::compact(&dir, config).expect("compact");
    assert_eq!(lsn, 300, "compaction snapshots the full log");

    let after = d2tree::store::inspect(&dir).expect("inspect after");
    assert_eq!(after.snapshot_lsn, 300);
    assert_eq!(after.next_lsn, 300);

    let (store, info) = MdsStore::open(&dir, config).expect("reopen");
    assert_eq!(info.snapshot_lsn, 300);
    assert_eq!(*store.state(), replay(&records));
    let _ = fs::remove_dir_all(&dir);
}

/// Seeded store-chaos schedules (the CI `store-recovery` matrix): torn
/// writes, lying fsyncs and bit-flip probes, reproducible per seed.
#[test]
fn store_chaos_seeds_are_reproducible_and_clean() {
    let config = StoreChaosConfig::default();
    for seed in seeds_under_test() {
        let a = run_store_chaos(seed, &config);
        let b = run_store_chaos(seed, &config);
        assert_eq!(a, b, "seed {seed}: same seed must replay identically");
        assert!(
            a.violations.is_empty(),
            "seed {seed}: recovery contract violated: {:?}",
            a.violations
        );
        assert_eq!(a.crashes, config.crashes, "seed {seed}");
        assert_eq!(
            a.corruptions_detected, a.corrupt_probes,
            "seed {seed}: every injected bit-flip must be caught"
        );
        assert!(
            a.torn_crashes + a.partial_fsyncs > 0,
            "seed {seed}: the schedule must tear something"
        );
    }
}

/// Kill an MDS mid-write and restart it: the rejoiner recovers its
/// subtree ownership, attr versions and popularity counters from its
/// local store (invariant-checker verified), reports `recovery_ms`,
/// and delta-syncs only the GL entries it missed.
#[test]
fn live_cluster_restart_recovers_from_disk() {
    for seed in seeds_under_test() {
        let store_root = tmp_dir("live");
        let m = 3;
        let w = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(600).with_operations(1_200))
            .seed(seed)
            .build();
        let pop = w.popularity();
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(m, 1.0));
        let tree = Arc::new(w.tree);
        let config = LiveConfig {
            store_root: Some(store_root.clone()),
            ..LiveConfig::default()
        };
        let cluster = LiveCluster::start_with_faults(
            Arc::clone(&tree),
            scheme.placement().clone(),
            scheme.local_index().clone(),
            config,
            FaultPlan::new(seed),
        );

        let mut client = cluster.client(seed);
        let root = tree.root();
        for op in w.trace.iter().take(300) {
            let _ = client.execute(*op);
        }
        // A burst of GL commits so the victim's replica has versions to
        // journal, then miss, then delta-sync back.
        for _ in 0..5 {
            let _ = client.execute(Operation {
                target: root,
                kind: OpKind::Update,
            });
        }

        let victim = MdsId(1);
        assert!(cluster.kill(victim), "seed {seed}: kill changes state");
        std::thread::sleep(Duration::from_millis(300));
        for _ in 0..5 {
            let _ = client.execute(Operation {
                target: root,
                kind: OpKind::Update,
            });
        }
        assert!(
            cluster.restart(victim),
            "seed {seed}: restart changes state"
        );

        // Recovery is disk-first: the journal must carry a StoreRecovered
        // event and the GL catch-up must be a delta sync, not a full copy.
        let deadline = Instant::now() + Duration::from_secs(5);
        let (mut recovered_seen, mut delta_seen) = (false, false);
        while Instant::now() < deadline && !(recovered_seen && delta_seen) {
            for e in cluster.registry().snapshot().events {
                match e.kind {
                    EventKind::StoreRecovered { mds: 1, .. } => recovered_seen = true,
                    EventKind::GlDeltaSync { mds: 1, .. } => delta_seen = true,
                    _ => {}
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(recovered_seen, "seed {seed}: no StoreRecovered event");
        assert!(delta_seen, "seed {seed}: no GlDeltaSync event");

        // recovery_ms is reported for the restarted MDS.
        let snap = cluster.registry().snapshot();
        let recovery_reported = snap
            .histograms
            .iter()
            .any(|(k, h)| k.name == names::RECOVERY_MS && h.count > 0);
        assert!(recovery_reported, "seed {seed}: recovery_ms not recorded");

        // The invariant checker cross-checks the recovered durable state
        // (owned subtrees, journaled attr versions) against live state.
        let deadline = Instant::now() + Duration::from_secs(5);
        let violations = loop {
            let v = cluster.check_invariants();
            if v.is_empty() || Instant::now() >= deadline {
                break v;
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        assert!(
            violations.is_empty(),
            "seed {seed}: restart left violations: {violations:?}"
        );

        drop(client);
        let _ = cluster.shutdown();
        let _ = fs::remove_dir_all(&store_root);
    }
}

/// The serving path's group-commit contract under a crash: a daemon that
/// dies after buffering a batch's WAL records but before the group
/// fsync loses exactly that batch — recovery replays the committed
/// batches bit-for-bit and truncates the torn tail, never a record
/// more, never a record less.
#[test]
fn serve_daemon_crash_mid_group_commit_recovers_the_committed_prefix() {
    use d2tree::cluster::{NetMds, Request, RequestId, ResponseBody};
    use d2tree::metrics::{Assignment, Placement};
    use d2tree::namespace::{NamespaceTree, NodeKind};
    use d2tree::telemetry::Registry;

    let dir = tmp_dir("groupcommit");
    let mut tree = NamespaceTree::new();
    let sub = tree
        .create(tree.root(), "s", NodeKind::Directory)
        .expect("create");
    let tree = Arc::new(tree);
    let mut placement = Placement::new(&tree, 1);
    for (id, _) in tree.nodes() {
        placement.set(id, Assignment::Single(MdsId(0)));
    }
    let mut index = d2tree::core::LocalIndex::new();
    index.insert(tree.root(), MdsId(0));
    let registry = Arc::new(Registry::new());
    let mds = NetMds::new(Arc::clone(&tree), placement, index, MdsId(0), registry)
        .with_store_root(&dir, StoreConfig::manual());
    let lsn0 = mds.store_next_lsn().expect("store attached");

    let req = |i: u64| Request {
        id: RequestId(i),
        kind: OpKind::Update,
        target: sub,
        hops: 0,
        trace: None,
    };
    // Three committed batches of three updates each: every
    // `serve_batch` group-commits (fsyncs) before its responses would
    // be acked, so all nine updates are durable.
    let committed_updates = 9u64;
    for b in 0..3u64 {
        let batch: Vec<Request> = (0..3).map(|i| req(b * 3 + i)).collect();
        let resps = mds.serve_batch(&batch);
        assert!(resps
            .iter()
            .all(|r| matches!(r.body, ResponseBody::Served { .. })));
    }
    let committed_lsn = mds.store_next_lsn().expect("store attached");
    assert!(committed_lsn > lsn0, "updates journal records");

    // A fourth batch is served deferred — records buffered, no group
    // commit yet — and the daemon dies with a torn write: only 3 bytes
    // of the buffered tail reach the disk (a mid-record tear).
    for i in 0..3u64 {
        let resp = mds.serve_deferred(req(100 + i));
        assert!(matches!(resp.body, ResponseBody::Served { .. }));
    }
    assert!(
        mds.store_next_lsn().expect("store attached") > committed_lsn,
        "the deferred tail was journaled in memory"
    );
    assert!(mds.simulate_store_crash(3), "store was attached");

    // Recovery: the exact committed prefix, the torn tail truncated.
    let (store, info) =
        MdsStore::open(dir.join("mds-0"), StoreConfig::manual()).expect("reopen after crash");
    assert_eq!(
        info.next_lsn, committed_lsn,
        "recovery ends exactly at the last group commit"
    );
    // `with_store_root` seeds the journal with the index's Ownership
    // records before `lsn0` was captured, so the full recovered
    // history is every record below `committed_lsn` (LSNs start at 0).
    assert_eq!(
        info.snapshot_lsn + info.records_replayed,
        committed_lsn,
        "every committed record is recovered"
    );
    assert!(info.torn_bytes > 0, "the torn tail bytes are truncated");
    let attr = store
        .state()
        .attrs
        .get(&(sub.index() as u64))
        .expect("the updated node's attrs were recovered");
    assert_eq!(
        attr.version, committed_updates,
        "attr state reflects the nine committed updates and none of the lost batch"
    );
    let _ = fs::remove_dir_all(&dir);
}
