//! Worked numeric examples validating the paper's formal definitions
//! end-to-end — each test is a hand-computed miniature of a definition or
//! equation, independent of the implementation that produced it.

use d2tree::core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree::metrics::mirror::mirror_divide;
use d2tree::metrics::{balance, ClusterSpec};
use d2tree::namespace::{NamespaceTree, NodeKind, Popularity};

/// Def. 2: `p_j = p'_j + Σ p_children` — hand-computed on the paper's
/// Fig. 2-like tree.
#[test]
fn def2_popularity_rollup_worked_example() {
    // root -> home -> {a, b}; home/a -> g.pdf; home/b -> {h.jpg}
    let mut t = NamespaceTree::new();
    let home = t.create(t.root(), "home", NodeKind::Directory).unwrap();
    let a = t.create(home, "a", NodeKind::Directory).unwrap();
    let b = t.create(home, "b", NodeKind::Directory).unwrap();
    let g = t.create(a, "g.pdf", NodeKind::File).unwrap();
    let h = t.create(b, "h.jpg", NodeKind::File).unwrap();

    let mut pop = Popularity::new(&t);
    pop.record(g, 30.0);
    pop.record(h, 50.0);
    pop.record(home, 5.0);
    pop.rollup(&t);

    // By hand: p(a) = 30, p(b) = 50, p(home) = 5 + 30 + 50 = 85,
    // p(root) = 85.
    assert_eq!(pop.total(a), 30.0);
    assert_eq!(pop.total(b), 50.0);
    assert_eq!(pop.total(home), 85.0);
    assert_eq!(pop.total(t.root()), 85.0);
}

/// Eq. 7: under the D2-Tree convention, Def. 3 locality reduces to
/// `1 / Σ_{n_j ∈ LL} p_j`. Both sides computed independently.
#[test]
fn eq7_locality_identity() {
    let mut t = NamespaceTree::new();
    let hot = t.create(t.root(), "hot", NodeKind::Directory).unwrap();
    let cold = t.create(t.root(), "cold", NodeKind::Directory).unwrap();
    let f1 = t.create(hot, "f1", NodeKind::File).unwrap();
    let f2 = t.create(cold, "f2", NodeKind::File).unwrap();

    let mut pop = Popularity::new(&t);
    pop.record(hot, 100.0);
    pop.record(f1, 40.0);
    pop.record(cold, 3.0);
    pop.record(f2, 7.0);
    pop.rollup(&t);

    let mut scheme = D2TreeScheme::new(D2TreeConfig::by_proportion(0.4)); // GL = {root, hot}
    scheme.build(&t, &pop, &ClusterSpec::homogeneous(2, 1.0));
    assert!(scheme.global_layer().contains(hot));
    assert!(!scheme.global_layer().contains(cold));

    // Right-hand side by hand: LL = {cold, f1, f2} with totals 10, 40, 7.
    let denominator = 10.0 + 40.0 + 7.0;
    let report = scheme.locality(&t, &pop);
    assert!((report.weighted_jumps - denominator).abs() < 1e-12);
    assert!((report.locality - 1.0 / denominator).abs() < 1e-15);
    // And via the layer's own accounting.
    assert!((scheme.global_layer().locality_denominator(&t, &pop) - denominator).abs() < 1e-12);
}

/// Def. 5 worked example: M = 3, C = (10, 10, 20), L = (6, 4, 10).
/// μ = 20/40 = 0.5; ratios (0.6, 0.4, 0.5); deviations (0.1, −0.1, 0);
/// variance = (0.01 + 0.01 + 0) / 2 = 0.01; balance = 100.
#[test]
fn def5_balance_worked_example() {
    let cluster = ClusterSpec::new(vec![10.0, 10.0, 20.0]);
    let b = balance(&[6.0, 4.0, 10.0], &cluster);
    assert!((b - 100.0).abs() < 1e-9, "got {b}");
}

/// Sec. III-B worked example: relative capacities `Re_k = L_k − μC_k`.
#[test]
fn relative_capacity_worked_example() {
    let cluster = ClusterSpec::new(vec![10.0, 30.0]);
    // Total load 20 over capacity 40: μ = 0.5, ideals (5, 15).
    let re = cluster.relative_capacities(&[8.0, 12.0]);
    assert_eq!(re, vec![3.0, -3.0]); // server 0 heavy, server 1 light
}

/// Fig. 4 of the paper, verbatim: subtree shares .5/.2/.1/.1/.1 onto
/// capacities .5/.3/.2 must give m1 = {Δ1}, m2 = {Δ2, Δ3}, m3 = {Δ4, Δ5}.
#[test]
fn fig4_mirror_division_verbatim() {
    let assignment = mirror_divide(&[0.5, 0.2, 0.1, 0.1, 0.1], &[0.5, 0.3, 0.2]);
    assert_eq!(assignment, vec![0, 1, 1, 2, 2]);
}

/// Thm. 1's construction sanity check: files directly under a replicated
/// root, two homogeneous servers — a perfect Partition-problem split gives
/// perfectly balanced (infinite Def. 5) loads.
#[test]
fn thm1_partition_reduction_construction() {
    let sizes = [3.0, 1.0, 1.0, 2.0, 5.0, 4.0]; // Σ = 16, perfect split = 8
    let mut t = NamespaceTree::new();
    let mut pop_builder = Vec::new();
    for (i, &s) in sizes.iter().enumerate() {
        let f = t
            .create(t.root(), &format!("f{i}"), NodeKind::File)
            .unwrap();
        pop_builder.push((f, s));
    }
    let mut pop = Popularity::new(&t);
    for &(f, s) in &pop_builder {
        pop.record(f, s);
    }
    pop.rollup(&t);

    // A YES-instance split: {3, 1, 4} vs {1, 2, 5}.
    use d2tree::metrics::{Assignment, MdsId, Placement};
    let mut placement = Placement::new(&t, 2);
    placement.set(t.root(), Assignment::Replicated);
    for (i, &(f, _)) in pop_builder.iter().enumerate() {
        let side = if [0usize, 1, 5].contains(&i) { 0 } else { 1 };
        placement.set(f, Assignment::Single(MdsId(side)));
    }
    let loads = placement.loads(&t, &pop);
    assert_eq!(loads[0], loads[1], "YES-instance must balance: {loads:?}");
    let cluster = ClusterSpec::homogeneous(2, 8.0);
    assert!(balance(&loads, &cluster).is_infinite());
}

/// Def. 1 on a concrete chain: servers A, A, B, C along the path give
/// exactly two jumps.
#[test]
fn def1_jump_count_worked_example() {
    use d2tree::metrics::{path_jumps, Assignment, MdsId, Placement};
    let mut t = NamespaceTree::new();
    let x = t.create(t.root(), "x", NodeKind::Directory).unwrap();
    let y = t.create(x, "y", NodeKind::Directory).unwrap();
    let z = t.create(y, "z", NodeKind::File).unwrap();

    let mut p = Placement::new(&t, 3);
    p.set(t.root(), Assignment::Single(MdsId(0)));
    p.set(x, Assignment::Single(MdsId(0)));
    p.set(y, Assignment::Single(MdsId(1)));
    p.set(z, Assignment::Single(MdsId(2)));
    assert_eq!(path_jumps(&t, &p, z), 2);
}
