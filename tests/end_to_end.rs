//! End-to-end integration: workload generation → every partitioning
//! scheme → metric evaluation → simulated replay, checking the paper's
//! qualitative claims hold on the full pipeline.

use d2tree::baselines::{extended_lineup, HashMapping};
use d2tree::cluster::{SimConfig, Simulator};
use d2tree::core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree::metrics::{balance, ClusterSpec};
use d2tree::workload::{TraceProfile, Workload, WorkloadBuilder};

fn workload(profile: TraceProfile) -> Workload {
    WorkloadBuilder::new(profile.with_nodes(3_000).with_operations(30_000))
        .seed(99)
        .build()
}

#[test]
fn full_pipeline_for_every_scheme_and_trace() {
    for profile in TraceProfile::paper_presets() {
        let w = workload(profile);
        let pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(6, 1.0);
        let sim = Simulator::new(SimConfig {
            clients: 32,
            ..SimConfig::default()
        });
        for mut scheme in extended_lineup(0.01, 5) {
            scheme.build(&w.tree, &pop, &cluster);
            assert!(scheme.placement().is_complete(&w.tree), "{}", scheme.name());

            let out = sim.replay(&w.tree, &w.trace, scheme.as_ref());
            assert_eq!(out.completed, w.trace.len(), "{} lost ops", scheme.name());
            assert_eq!(
                out.served_ops.iter().sum::<u64>() as usize,
                w.trace.len(),
                "{} served-op accounting",
                scheme.name()
            );
            assert!(out.throughput > 0.0);
            assert!(out.mean_latency_us > 0.0);

            let loads = scheme.loads(&w.tree, &pop);
            let total: f64 = loads.iter().sum();
            assert!(
                (total - pop.sum_individual()).abs() < 1e-6 * pop.sum_individual(),
                "{}: served-request load must be conserved ({total} vs {})",
                scheme.name(),
                pop.sum_individual()
            );
        }
    }
}

#[test]
fn d2tree_dominates_hash_on_locality_everywhere() {
    for profile in TraceProfile::paper_presets() {
        let w = workload(profile);
        let pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(8, 1.0);

        let mut d2 = D2TreeScheme::new(D2TreeConfig::paper_default());
        d2.build(&w.tree, &pop, &cluster);
        let mut hash = HashMapping::new(1);
        hash.build(&w.tree, &pop, &cluster);

        let d2_loc = d2.locality(&w.tree, &pop).locality;
        let hash_loc = hash.locality(&w.tree, &pop).locality;
        assert!(
            d2_loc > hash_loc,
            "{}: D2-Tree locality {d2_loc} must beat hashing {hash_loc}",
            w.profile.name
        );
    }
}

#[test]
fn d2tree_beats_static_on_balance_under_skew() {
    let w = workload(TraceProfile::dtr());
    let pop = w.popularity();
    let cluster = ClusterSpec::homogeneous(8, pop.sum_individual() / 8.0);

    let mut schemes = extended_lineup(0.01, 2);
    let mut results = std::collections::HashMap::new();
    for scheme in &mut schemes {
        scheme.build(&w.tree, &pop, &cluster);
        for _ in 0..5 {
            let _ = scheme.rebalance(&w.tree, &pop, &cluster);
        }
        results.insert(
            scheme.name().to_owned(),
            balance(&scheme.loads(&w.tree, &pop), &cluster),
        );
    }
    assert!(
        results["D2-Tree"] > results["Static Subtree"],
        "D2-Tree {} vs static {}",
        results["D2-Tree"],
        results["Static Subtree"]
    );
}

#[test]
fn throughput_scales_for_d2tree_but_not_static() {
    let w = workload(TraceProfile::dtr());
    let pop = w.popularity();
    let sim = Simulator::new(SimConfig {
        clients: 64,
        ..SimConfig::default()
    });

    let run = |m: usize, mk: &dyn Fn() -> Box<dyn Partitioner>| {
        let cluster = ClusterSpec::homogeneous(m, 1.0);
        let mut scheme = mk();
        scheme.build(&w.tree, &pop, &cluster);
        sim.replay(&w.tree, &w.trace, scheme.as_ref()).throughput
    };

    let d2 =
        |_| -> Box<dyn Partitioner> { Box::new(D2TreeScheme::new(D2TreeConfig::paper_default())) };
    let d2_small = run(3, &|| d2(()));
    let d2_large = run(12, &|| d2(()));
    assert!(
        d2_large > d2_small * 1.5,
        "D2-Tree should scale: {d2_small} -> {d2_large}"
    );

    let st = || -> Box<dyn Partitioner> { Box::new(d2tree::baselines::StaticSubtree::new(7)) };
    let st_small = run(3, &st);
    let st_large = run(12, &st);
    assert!(
        st_large < st_small * 1.5,
        "static subtree should be skew-bound: {st_small} -> {st_large}"
    );
}

#[test]
fn replay_is_deterministic_across_runs() {
    let w = workload(TraceProfile::ra());
    let pop = w.popularity();
    let cluster = ClusterSpec::homogeneous(4, 1.0);
    let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default().with_seed(13));
    scheme.build(&w.tree, &pop, &cluster);
    let sim = Simulator::new(SimConfig {
        clients: 16,
        seed: 3,
        ..SimConfig::default()
    });
    let a = sim.replay(&w.tree, &w.trace, &scheme);
    let b = sim.replay(&w.tree, &w.trace, &scheme);
    assert_eq!(a, b);
}
