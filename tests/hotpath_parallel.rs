//! The parallel sweep harness must be a pure scheduling change: for any
//! worker count, every DES cell is rebuilt from the same seed and the
//! results are reassembled in index order, so the output is
//! byte-identical to a serial run. This pins that contract for the
//! seeds the figures ship with.

use d2tree::baselines::paper_lineup;
use d2tree::cluster::{SimConfig, Simulator};
use d2tree_bench::{normalized_cluster, parallel_cells_with, Scale};
use d2tree_workload::{TraceProfile, WorkloadBuilder};

/// One figure-style cell: rebuild the scheme from scratch, replay the
/// trace on the DES, and format the throughput exactly as `fig5` does.
fn sweep_cells(seed: u64, workers: usize) -> Vec<String> {
    let scale = Scale {
        nodes: 600,
        operations: 3_000,
        seed,
    };
    let profile = TraceProfile::paper_presets().remove(0);
    let workload = WorkloadBuilder::new(scale.apply(profile))
        .seed(scale.seed)
        .build();
    let pop = workload.popularity();

    let slots = paper_lineup(0.01, seed).len().min(2);
    let ms = [5usize, 10];
    let cells = parallel_cells_with(workers, slots * ms.len(), |i| {
        let m_idx = i % ms.len();
        let slot = i / ms.len();
        let mut lineup = paper_lineup(0.01, seed);
        let scheme = &mut lineup[slot];
        let cluster = normalized_cluster(ms[m_idx], &pop);
        scheme.build(&workload.tree, &pop, &cluster);
        let sim = Simulator::new(SimConfig {
            seed,
            ..SimConfig::default()
        });
        let out = sim.replay(&workload.tree, &workload.trace, scheme.as_ref());
        format!("{:.0}", out.throughput)
    });
    cells
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    for seed in [1u64, 7, 42] {
        let serial = sweep_cells(seed, 1);
        for workers in [2usize, 4] {
            let parallel = sweep_cells(seed, workers);
            assert_eq!(
                serial, parallel,
                "seed {seed}: {workers}-worker sweep diverged from serial"
            );
        }
    }
}
