//! Property-based tests of the metrics substrate: ECDFs, histograms,
//! mirror division, DKW bounds and the balance formula.

use d2tree::metrics::mirror::{bucket_loads, mirror_divide};
use d2tree::metrics::{balance, dkw, ClusterSpec, Ecdf, Histogram};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ecdf_is_monotone_and_bounded(mut samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let e = Ecdf::from_samples(samples.clone());
        samples.sort_by(f64::total_cmp);
        let lo = samples[0];
        let hi = *samples.last().unwrap();
        prop_assert_eq!(e.eval(lo - 1.0), 0.0);
        prop_assert_eq!(e.eval(hi), 1.0);
        let probes = [lo, (lo + hi) / 2.0, hi];
        for w in probes.windows(2) {
            prop_assert!(e.eval(w[0]) <= e.eval(w[1]) + 1e-12);
        }
    }

    #[test]
    fn quantile_inverts_eval(samples in proptest::collection::vec(0.0f64..1e3, 1..100), q in 0.0f64..=1.0) {
        let e = Ecdf::from_samples(samples);
        let v = e.quantile(q);
        // F(quantile(q)) >= q, and quantile is a sample.
        prop_assert!(e.eval(v) + 1e-12 >= q);
    }

    #[test]
    fn histogram_boundaries_are_sorted(samples in proptest::collection::vec(0.0f64..1e4, 2..200), k in 2usize..16) {
        let e = Ecdf::from_samples(samples);
        let h = Histogram::equi_probability(&e, k);
        prop_assert_eq!(h.boundaries().len(), k);
        prop_assert!(h.boundaries().windows(2).all(|w| w[0] <= w[1]));
        prop_assert!((h.delta() * (k as f64 - 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mirror_divide_is_total_and_in_range(
        weights in proptest::collection::vec(0.0f64..100.0, 0..80),
        caps in proptest::collection::vec(0.0f64..10.0, 1..12),
    ) {
        let assignment = mirror_divide(&weights, &caps);
        prop_assert_eq!(assignment.len(), weights.len());
        for &b in &assignment {
            prop_assert!(b < caps.len());
        }
        // Conservation: bucket loads sum to total weight.
        let loads = bucket_loads(&weights, &assignment, caps.len());
        let total_w: f64 = weights.iter().sum();
        let total_l: f64 = loads.iter().sum();
        prop_assert!((total_w - total_l).abs() < 1e-6);
    }

    #[test]
    fn mirror_divide_proportionality(
        n in 10usize..200,
        caps in proptest::collection::vec(0.1f64..10.0, 2..8),
    ) {
        // Uniform weights: each bucket's load tracks its capacity share
        // within one item granule.
        let weights = vec![1.0; n];
        let assignment = mirror_divide(&weights, &caps);
        let loads = bucket_loads(&weights, &assignment, caps.len());
        let total_c: f64 = caps.iter().sum();
        for (l, c) in loads.iter().zip(&caps) {
            let ideal = n as f64 * c / total_c;
            prop_assert!(
                (l - ideal).abs() <= 2.0,
                "load {l} vs ideal {ideal} (n={n})"
            );
        }
    }

    #[test]
    fn dkw_bound_is_monotone(k in 1usize..10_000, eps in 0.001f64..1.0) {
        let p1 = dkw::violation_probability(k, eps);
        let p2 = dkw::violation_probability(k * 2, eps);
        prop_assert!(p2 <= p1 + 1e-15);
        prop_assert!((0.0..=1.0).contains(&p1));
    }

    #[test]
    fn dkw_epsilon_consistent(k in 2usize..10_000, conf in 0.5f64..0.999) {
        let eps = dkw::epsilon_for_confidence(k, conf);
        let p = dkw::violation_probability(k, eps);
        prop_assert!((p - (1.0 - conf)).abs() < 1e-9);
    }

    #[test]
    fn balance_is_scale_consistent(loads in proptest::collection::vec(1.0f64..100.0, 2..16), scale in 0.5f64..4.0) {
        // Scaling loads *and* capacities together leaves balance unchanged.
        let m = loads.len();
        let cluster = ClusterSpec::homogeneous(m, 10.0);
        let scaled_cluster = ClusterSpec::homogeneous(m, 10.0 * scale);
        let scaled_loads: Vec<f64> = loads.iter().map(|l| l * scale).collect();
        let a = balance(&loads, &cluster);
        let b = balance(&scaled_loads, &scaled_cluster);
        if a.is_finite() {
            prop_assert!((a - b).abs() / a < 1e-6, "{a} vs {b}");
        } else {
            prop_assert!(b.is_infinite());
        }
    }

    #[test]
    fn balance_decreases_when_skew_grows(base in 10.0f64..100.0, extra in 1.0f64..100.0, m in 2usize..10) {
        let cluster = ClusterSpec::homogeneous(m, base);
        let even = vec![base; m];
        let mut skewed = even.clone();
        skewed[0] += extra;
        skewed[m - 1] -= extra.min(base - 1.0);
        let b_even = balance(&even, &cluster);
        let b_skew = balance(&skewed, &cluster);
        prop_assert!(b_even > b_skew || b_even.is_infinite());
    }
}

/// Empirical DKW check: the measured KS distance between an empirical CDF
/// and the full-sample reference stays below the 99%-confidence epsilon in
/// (at least) 99% of trials — run as a fixed statistical test, not a
/// proptest, so the failure probability is controlled.
#[test]
fn dkw_bound_holds_empirically() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(123);
    let reference: Vec<f64> = (0..40_000).map(|_| rng.gen_range(0.0f64..1.0)).collect();
    let full = Ecdf::from_samples(reference.clone());

    let k = 500;
    let eps = dkw::epsilon_for_confidence(k, 0.99);
    let trials = 200;
    let mut violations = 0;
    for _ in 0..trials {
        let sample: Vec<f64> = (0..k)
            .map(|_| reference[rng.gen_range(0..reference.len())])
            .collect();
        let e = Ecdf::from_samples(sample);
        if e.sup_distance(&full) > eps {
            violations += 1;
        }
    }
    assert!(
        violations <= trials / 20,
        "DKW 99% bound violated {violations}/{trials} times (eps = {eps})"
    );
}
