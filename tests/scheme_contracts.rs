//! Cross-cutting behavioural contracts every scheme must honour:
//! determinism under a fixed seed, popularity-(in)sensitivity where
//! specified, and stability of names/outputs the harnesses rely on.

use d2tree::baselines::{extended_lineup, HashMapping, StaticSubtree};
use d2tree::core::Partitioner;
use d2tree::metrics::ClusterSpec;
use d2tree::workload::{TraceProfile, WorkloadBuilder};

fn workload(seed: u64) -> d2tree::workload::Workload {
    WorkloadBuilder::new(
        TraceProfile::dtr()
            .with_nodes(1_000)
            .with_operations(10_000),
    )
    .seed(seed)
    .build()
}

#[test]
fn every_scheme_is_deterministic_under_a_fixed_seed() {
    let w = workload(61);
    let pop = w.popularity();
    let cluster = ClusterSpec::homogeneous(5, 1.0);
    for (mut a, mut b) in extended_lineup(0.01, 9)
        .into_iter()
        .zip(extended_lineup(0.01, 9))
    {
        a.build(&w.tree, &pop, &cluster);
        b.build(&w.tree, &pop, &cluster);
        for (id, _) in w.tree.nodes() {
            assert_eq!(
                a.placement().assignment(id),
                b.placement().assignment(id),
                "{} not deterministic at {id}",
                a.name()
            );
        }
    }
}

#[test]
fn hash_and_static_placements_ignore_popularity() {
    let w = workload(62);
    let cluster = ClusterSpec::homogeneous(4, 1.0);
    let cold = {
        let mut p = d2tree::namespace::Popularity::new(&w.tree);
        p.rollup(&w.tree);
        p
    };
    let hot = w.popularity();

    for make in [
        || Box::new(HashMapping::new(3)) as Box<dyn Partitioner>,
        || Box::new(StaticSubtree::new(3)) as Box<dyn Partitioner>,
    ] {
        let mut with_cold = make();
        let mut with_hot = make();
        with_cold.build(&w.tree, &cold, &cluster);
        with_hot.build(&w.tree, &hot, &cluster);
        for (id, _) in w.tree.nodes() {
            assert_eq!(
                with_cold.placement().assignment(id),
                with_hot.placement().assignment(id),
                "{} placement should be popularity-blind",
                with_cold.name()
            );
        }
    }
}

#[test]
fn popularity_aware_schemes_react_to_popularity() {
    // D2-Tree and DROP must place differently when the heat moves.
    let w = workload(63);
    let cluster = ClusterSpec::homogeneous(4, 1.0);
    let pop_a = w.popularity();
    let mut pop_b = pop_a.clone();
    // Invert the regime: heat a set of cold leaves massively.
    for (id, _) in w
        .tree
        .nodes()
        .filter(|(_, n)| !n.kind().is_directory())
        .take(100)
    {
        pop_b.record(id, 50_000.0);
    }
    pop_b.rollup(&w.tree);

    for slot in [0usize, 3] {
        // 0 = D2-Tree, 3 = DROP in the paper lineup.
        let mut lineup_a = d2tree::baselines::paper_lineup(0.01, 5);
        let mut lineup_b = d2tree::baselines::paper_lineup(0.01, 5);
        let a = &mut lineup_a[slot];
        let b = &mut lineup_b[slot];
        a.build(&w.tree, &pop_a, &cluster);
        b.build(&w.tree, &pop_b, &cluster);
        let differs = w
            .tree
            .nodes()
            .any(|(id, _)| a.placement().assignment(id) != b.placement().assignment(id));
        assert!(differs, "{} ignored a regime change", a.name());
    }
}

#[test]
fn scheme_names_are_stable_api() {
    // The harnesses and EXPERIMENTS.md key off these exact names.
    let names: Vec<&str> = extended_lineup(0.01, 0).iter().map(|s| s.name()).collect();
    assert_eq!(
        names,
        vec![
            "D2-Tree",
            "Static Subtree",
            "Dynamic Subtree",
            "DROP",
            "AngleCut",
            "Hash Mapping"
        ]
    );
}

#[test]
fn loads_are_conserved_through_rebalancing() {
    let w = workload(64);
    let mut pop = w.popularity();
    let cluster = ClusterSpec::homogeneous(6, 1.0);
    for mut scheme in extended_lineup(0.01, 7) {
        scheme.build(&w.tree, &pop, &cluster);
        let total_before: f64 = scheme.loads(&w.tree, &pop).iter().sum();
        // Perturb and rebalance thrice.
        let victim = w.tree.nodes().map(|(id, _)| id).nth(123).unwrap();
        pop.record(victim, 1_000.0);
        pop.rollup(&w.tree);
        for _ in 0..3 {
            let _ = scheme.rebalance(&w.tree, &pop, &cluster);
        }
        let total_after: f64 = scheme.loads(&w.tree, &pop).iter().sum();
        assert!(
            (total_after - (total_before + 1_000.0)).abs() < 1e-6 * total_after,
            "{} lost load mass: {total_before} + 1000 vs {total_after}",
            scheme.name()
        );
        // Reset for the next scheme.
        pop.record(victim, -1_000.0);
        pop.rollup(&w.tree);
    }
}
