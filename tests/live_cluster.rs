//! Integration tests of the live multi-threaded cluster runtime:
//! concurrency, redirects, fail-over under load and lock-protected
//! global-layer updates.

use std::sync::Arc;
use std::time::{Duration, Instant};

use d2tree::cluster::live::{LiveCluster, LiveConfig};
use d2tree::cluster::message::ResponseBody;
use d2tree::core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree::metrics::{ClusterSpec, MdsId};
use d2tree::workload::{OpKind, Operation, TraceProfile, WorkloadBuilder};

fn start(
    m: usize,
    seed: u64,
) -> (
    Arc<d2tree::namespace::NamespaceTree>,
    LiveCluster,
    d2tree::workload::Trace,
) {
    let w = WorkloadBuilder::new(TraceProfile::lmbe().with_nodes(800).with_operations(2_000))
        .seed(seed)
        .build();
    let pop = w.popularity();
    let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
    scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(m, 1.0));
    let tree = Arc::new(w.tree);
    let cluster = LiveCluster::start(
        Arc::clone(&tree),
        scheme.placement().clone(),
        LiveConfig::default(),
    );
    (tree, cluster, w.trace)
}

#[test]
fn eight_concurrent_clients_under_churn() {
    let (_tree, cluster, trace) = start(5, 21);
    let cluster = Arc::new(cluster);
    let trace = Arc::new(trace);
    let mut handles = Vec::new();
    for c in 0..8u64 {
        let mut client = cluster.client(c);
        let trace = Arc::clone(&trace);
        handles.push(std::thread::spawn(move || {
            let mut ok = 0usize;
            for op in trace.iter().skip((c as usize * 250) % 1_000).take(250) {
                if client.execute(*op).is_ok() {
                    ok += 1;
                }
            }
            ok
        }));
    }
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 8 * 250);
    let report = Arc::try_unwrap(cluster).unwrap().shutdown();
    assert_eq!(report.served.iter().sum::<u64>(), 2_000);
}

#[test]
fn mixed_reads_and_locked_updates() {
    let (tree, cluster, _trace) = start(3, 22);
    let mut client = cluster.client(0);
    // Root and its replicated prefix take the lock path; deep files do not.
    for _ in 0..50 {
        let resp = client
            .execute(Operation {
                target: tree.root(),
                kind: OpKind::Update,
            })
            .expect("root update");
        assert!(matches!(resp.body, ResponseBody::Served { .. }));
    }
    let deep = tree
        .nodes()
        .map(|(id, _)| id)
        .max_by_key(|&id| tree.depth(id))
        .unwrap();
    let resp = client
        .execute(Operation {
            target: deep,
            kind: OpKind::Update,
        })
        .expect("deep update");
    assert!(matches!(resp.body, ResponseBody::Served { .. }));
    let _ = cluster.shutdown();
}

#[test]
fn failover_under_continuous_load() {
    let (tree, cluster, trace) = start(4, 23);
    std::thread::sleep(Duration::from_millis(100)); // all servers known

    let cluster = Arc::new(cluster);
    let trace = Arc::new(trace);

    // Background load while we kill a server.
    let loader = {
        let mut client = cluster.client(9);
        let trace = Arc::clone(&trace);
        std::thread::spawn(move || {
            let mut ok = 0usize;
            let mut failed = 0usize;
            for op in trace.iter().take(1_500) {
                match client.execute(*op) {
                    Ok(_) => ok += 1,
                    Err(_) => failed += 1,
                }
            }
            (ok, failed)
        })
    };

    std::thread::sleep(Duration::from_millis(30));
    let victim = MdsId(2);
    cluster.kill(victim);

    let (ok, failed) = loader.join().unwrap();
    assert!(ok > 0);
    // The retry budget should carry most requests through the fail-over
    // window; allow some casualties from the dead server's queue.
    assert!(
        failed <= 1_500 / 5,
        "too many failures across fail-over: {failed}"
    );

    // Eventually nothing points at the dead server.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let placement = cluster.placement_snapshot();
        let orphaned = tree
            .nodes()
            .filter(|(id, _)| placement.assignment(*id).owner() == Some(victim))
            .count();
        if orphaned == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{orphaned} nodes still on the dead server"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = Arc::try_unwrap(cluster).unwrap().shutdown();
}

#[test]
fn killing_an_mds_journals_mds_down_then_subtree_claimed() {
    use d2tree::telemetry::EventKind;

    // Seed the servers with the scheme's local index so the failover path
    // has published subtree roots to re-home (and therefore to journal).
    let w = WorkloadBuilder::new(TraceProfile::lmbe().with_nodes(800).with_operations(500))
        .seed(25)
        .build();
    let pop = w.popularity();
    let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
    scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(4, 1.0));
    let placement = scheme.placement().clone();
    let index = scheme.local_index().clone();
    let tree = Arc::new(w.tree);
    let cluster = LiveCluster::start_with_index(
        Arc::clone(&tree),
        placement,
        index.clone(),
        LiveConfig::default(),
    );

    // Pick a victim that owns at least one published subtree root, so its
    // death forces index re-pointing.
    let victim = index
        .iter()
        .map(|(_, owner)| owner)
        .next()
        .expect("non-empty index");
    std::thread::sleep(Duration::from_millis(100)); // all servers known
    cluster.kill(victim);

    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let events = cluster.registry().journal().snapshot();
        let down_seq = events.iter().find_map(|e| match e.kind {
            EventKind::MdsDown { mds } if mds == victim.0 => Some(e.seq),
            _ => None,
        });
        let claim_seq = events.iter().find_map(|e| match e.kind {
            EventKind::SubtreeClaimed { .. } => Some(e.seq),
            _ => None,
        });
        if let (Some(down), Some(claim)) = (down_seq, claim_seq) {
            assert!(
                down < claim,
                "failure must be journaled before the claim: down seq {down}, claim seq {claim}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no MdsDown + SubtreeClaimed pair in the journal (down: {down_seq:?}, claim: {claim_seq:?})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let report = cluster.shutdown();
    // The shutdown report carries the same journal.
    assert!(report
        .journal
        .iter()
        .any(|e| matches!(e.kind, EventKind::MdsDown { mds } if mds == victim.0)));
}

#[test]
fn report_counts_redirects_when_placement_changes_under_clients() {
    let (_tree, cluster, trace) = start(4, 24);
    let mut client = cluster.client(5);
    for op in trace.iter().take(500) {
        let _ = client.execute(*op);
    }
    let report = cluster.shutdown();
    // Redirects are possible but bounded; served counts must cover all ok
    // responses.
    assert!(report.served.iter().sum::<u64>() >= 500 - report.redirects);
}
