//! Long-running churn scenario: a D2-Tree deployment lives through
//! popularity drift, repeated rebalancing, cluster expansion and layer
//! re-cut planning, with every structural invariant re-verified by the
//! `validate` checker at each step.

use d2tree::core::{
    check_d2tree, plan_recut, D2TreeConfig, D2TreeScheme, Partitioner, SampleStrategy,
};
use d2tree::metrics::ClusterSpec;
use d2tree::namespace::Popularity;
use d2tree::workload::{DriftingWorkload, TraceProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_valid(w: &DriftingWorkload, scheme: &D2TreeScheme, step: &str) {
    let violations = check_d2tree(
        &w.tree,
        scheme.placement(),
        scheme.global_layer(),
        scheme.local_index(),
    );
    assert!(violations.is_empty(), "after {step}: {violations:?}");
}

#[test]
fn d2tree_survives_sustained_churn() {
    let workload = DriftingWorkload::generate(
        TraceProfile::ra().with_nodes(3_000).with_operations(60_000),
        6,
        77,
    );
    let mut rng = StdRng::seed_from_u64(78);
    let mut pop = Popularity::new(&workload.tree);
    let mut m = 4usize;
    let mut cluster = ClusterSpec::homogeneous(m, 1.0);

    let mut scheme = D2TreeScheme::new(
        D2TreeConfig::paper_default()
            .with_sampling(SampleStrategy::Uniform, 500)
            .with_seed(77),
    );

    // Phase 0 bootstraps the deployment.
    for op in &workload.phases[0] {
        pop.record(op.target, 1.0);
    }
    pop.rollup(&workload.tree);
    scheme.build(&workload.tree, &pop, &cluster);
    assert_valid(&workload, &scheme, "build");

    for (phase_no, phase) in workload.phases.iter().enumerate().skip(1) {
        // Drift: decay old heat, absorb the new phase.
        pop.decay(0.4);
        for op in phase {
            pop.record(op.target, 1.0);
        }
        pop.rollup(&workload.tree);

        // Sometimes the operator adds servers before rebalancing.
        if rng.gen_bool(0.5) && m < 12 {
            m += rng.gen_range(1..=2);
            cluster = ClusterSpec::homogeneous(m, 1.0);
            let _ = scheme.expand_cluster(&workload.tree, &pop, &cluster);
            assert_valid(
                &workload,
                &scheme,
                &format!("expand to {m} (phase {phase_no})"),
            );
        }

        // A few adjustment rounds.
        for round in 0..3 {
            let migrations = scheme.rebalance(&workload.tree, &pop, &cluster);
            assert_valid(
                &workload,
                &scheme,
                &format!(
                    "rebalance round {round} (phase {phase_no}, {} moves)",
                    migrations.len()
                ),
            );
        }

        // The (infrequent) global-layer re-cut stays well-formed even when
        // only planned.
        let plan = plan_recut(&workload.tree, &pop, |_| 0.0, 0.01, scheme.global_layer());
        assert!(plan.new_layer.is_closed_under_parents(&workload.tree));

        // Routing still terminates at owners for a random sample.
        for _ in 0..50 {
            let idx = rng.gen_range(0..workload.tree.arena_size());
            let id = d2tree::namespace::NodeId::from_index(idx);
            if !workload.tree.contains(id) {
                continue;
            }
            let plan = scheme.route(&workload.tree, id, &mut rng);
            if let Some(owner) = scheme.placement().assignment(id).owner() {
                assert_eq!(plan.terminal(), owner);
            }
        }
    }

    // After all churn the cluster grew and the state is still coherent.
    assert!(scheme.placement().cluster_size() >= 4);
    assert_valid(&workload, &scheme, "final");
}

#[test]
fn replication_limited_scheme_survives_expansion() {
    let workload = DriftingWorkload::generate(
        TraceProfile::dtr()
            .with_nodes(2_000)
            .with_operations(20_000),
        2,
        79,
    );
    let mut pop = Popularity::new(&workload.tree);
    for op in &workload.phases[0] {
        pop.record(op.target, 1.0);
    }
    pop.rollup(&workload.tree);

    let mut scheme = D2TreeScheme::new(
        D2TreeConfig::paper_default()
            .with_replication_limit(2)
            .with_seed(79),
    );
    let small = ClusterSpec::homogeneous(4, 1.0);
    scheme.build(&workload.tree, &pop, &small);
    assert_valid(&workload, &scheme, "limited build");

    let big = ClusterSpec::homogeneous(8, 1.0);
    let _ = scheme.expand_cluster(&workload.tree, &pop, &big);
    assert_valid(&workload, &scheme, "limited expand");
    // The replica set survives expansion (still 2 replicas).
    assert_eq!(scheme.placement().replicas().count(8), 2);
}
