//! Chaos-verified recovery: seeded fault schedules drive crash-restart,
//! rejoin and partition scenarios through both the deterministic chaos
//! engine and the live threaded cluster, with the ownership/replication
//! invariants machine-checked at every quiesce point.
//!
//! CI runs this suite once per seed in its matrix by exporting
//! `CHAOS_SEED=<n>`; without the variable every seed in the default
//! list is exercised.

use std::sync::Arc;
use std::time::{Duration, Instant};

use d2tree::cluster::live::{ClientError, LiveCluster, LiveConfig};
use d2tree::cluster::{
    run_chaos, run_monitor_chaos, ChaosConfig, FaultAction, FaultPlan, FaultRule, FaultScope,
    MonitorChaosConfig, RetryPolicy,
};
use d2tree::core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree::metrics::{ClusterSpec, MdsId};
use d2tree::telemetry::{names, EventKind};
use d2tree::workload::{OpKind, Operation, TraceProfile, WorkloadBuilder};

/// Seeds the CI matrix replays one at a time via `CHAOS_SEED`.
const DEFAULT_SEEDS: &[u64] = &[1, 7, 42];

fn seeds_under_test() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be an integer")],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

fn start_faulty(
    m: usize,
    seed: u64,
    config: LiveConfig,
    plan: FaultPlan,
) -> (
    Arc<d2tree::namespace::NamespaceTree>,
    LiveCluster,
    d2tree::workload::Trace,
) {
    let w = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(600).with_operations(1_500))
        .seed(seed)
        .build();
    let pop = w.popularity();
    let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
    scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(m, 1.0));
    let tree = Arc::new(w.tree);
    let cluster = LiveCluster::start_with_faults(
        Arc::clone(&tree),
        scheme.placement().clone(),
        scheme.local_index().clone(),
        config,
        plan,
    );
    (tree, cluster, w.trace)
}

/// Polls the cluster's invariant checker until it reports clean or the
/// deadline passes; recovery is asynchronous, so transient violations
/// mid-fail-over are expected and only a *persistent* violation fails.
fn settle_clean(cluster: &LiveCluster, within: Duration) -> Vec<String> {
    let deadline = Instant::now() + within;
    loop {
        let violations = cluster.check_invariants();
        if violations.is_empty() || Instant::now() >= deadline {
            return violations;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn counter_value(cluster: &LiveCluster, name: &str) -> u64 {
    cluster
        .registry()
        .snapshot()
        .counters
        .iter()
        .find(|(k, _)| k.name == name)
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

#[test]
fn chaos_engine_is_reproducible_and_clean_across_seeds() {
    let config = ChaosConfig::default();
    for seed in seeds_under_test() {
        let a = run_chaos(seed, &config);
        let b = run_chaos(seed, &config);
        assert_eq!(a, b, "seed {seed}: same seed must replay identically");
        assert!(
            a.violations.is_empty(),
            "seed {seed}: invariant violations: {:?}",
            a.violations
        );
        assert_eq!(a.kills, config.kills, "seed {seed}");
        assert_eq!(a.restarts, a.kills, "seed {seed}: every crash restarts");
        assert!(
            a.rejoins >= a.restarts,
            "seed {seed}: every restart must rejoin (got {} of {})",
            a.rejoins,
            a.restarts
        );
        assert!(
            a.rejoins_with_claims >= 1,
            "seed {seed}: at least one rejoiner must re-claim a subtree"
        );
        assert!(!a.journal.is_empty(), "seed {seed}: journal must record");
    }
}

#[test]
fn live_cluster_recovers_from_kill_restart_under_faults() {
    for seed in seeds_under_test() {
        let plan = FaultPlan::new(seed)
            .with_rule(
                FaultRule::new(FaultScope::AllLinks, FaultAction::Drop).with_probability(0.02),
            )
            .with_rule(
                FaultRule::new(
                    FaultScope::Mds(1),
                    FaultAction::Delay {
                        fixed_ms: 0,
                        jitter_ms: 2,
                    },
                )
                .with_probability(0.10),
            );
        let (_tree, cluster, trace) = start_faulty(4, seed, LiveConfig::default(), plan);
        let cluster = Arc::new(cluster);

        // Foreground load while the victim dies and comes back.
        let mut client = cluster.client(seed);
        for op in trace.iter().take(200) {
            let _ = client.execute(*op);
        }

        let victim = MdsId(1);
        assert!(cluster.kill(victim), "first kill changes state");
        // Let the Monitor declare the failure and migrate ownership.
        std::thread::sleep(Duration::from_millis(300));
        for op in trace.iter().skip(200).take(200) {
            let _ = client.execute(*op);
        }
        let after_failover = settle_clean(&cluster, Duration::from_secs(5));
        assert!(
            after_failover.is_empty(),
            "seed {seed}: fail-over left violations: {after_failover:?}"
        );

        assert!(cluster.restart(victim), "restart changes state");
        let after_rejoin = settle_clean(&cluster, Duration::from_secs(5));
        assert!(
            after_rejoin.is_empty(),
            "seed {seed}: rejoin left violations: {after_rejoin:?}"
        );

        // The Monitor saw the returning heartbeat and journaled the rejoin.
        let deadline = Instant::now() + Duration::from_secs(5);
        while counter_value(&cluster, names::REJOINS_TOTAL) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(
            counter_value(&cluster, names::REJOINS_TOTAL) >= 1,
            "seed {seed}: rejoin not recorded"
        );

        for op in trace.iter().skip(400).take(200) {
            let _ = client.execute(*op);
        }
        drop(client);
        let report = Arc::try_unwrap(cluster).unwrap().shutdown();
        assert!(
            report.served.iter().sum::<u64>() > 0,
            "seed {seed}: cluster served nothing"
        );
    }
}

#[test]
fn kill_and_restart_are_idempotent_and_panic_free() {
    let (_tree, cluster, _trace) = start_faulty(3, 5, LiveConfig::default(), FaultPlan::new(5));
    // Unknown ids are no-ops, never panics.
    assert!(!cluster.kill(MdsId(99)));
    assert!(!cluster.restart(MdsId(99)));
    // Restarting an alive server changes nothing.
    assert!(!cluster.restart(MdsId(0)));
    // First kill flips state; the second is a no-op.
    assert!(cluster.kill(MdsId(2)));
    assert!(!cluster.kill(MdsId(2)));
    // First restart flips state back; the second is a no-op.
    assert!(cluster.restart(MdsId(2)));
    assert!(!cluster.restart(MdsId(2)));
    let _ = cluster.shutdown();
}

#[test]
fn client_distinguishes_timeout_from_deadline() {
    // Every server dead: each attempt times out and the attempt budget
    // runs dry without a single response.
    let config = LiveConfig {
        request_timeout: Duration::from_millis(10),
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            jitter: Duration::from_millis(1),
            deadline: Duration::from_secs(30),
        },
        ..LiveConfig::default()
    };
    let (tree, cluster, _trace) = start_faulty(2, 6, config, FaultPlan::new(6));
    cluster.kill(MdsId(0));
    cluster.kill(MdsId(1));
    let mut client = cluster.client(1);
    let op = Operation {
        target: tree.root(),
        kind: OpKind::Read,
    };
    match client.execute(op) {
        Err(ClientError::Timeout { attempts }) => assert_eq!(attempts, 3),
        other => panic!("expected Timeout, got {other:?}"),
    }
    drop(client);
    let _ = cluster.shutdown();

    // Same dead cluster, but the overall deadline elapses before the
    // attempt budget does.
    let config = LiveConfig {
        request_timeout: Duration::from_millis(50),
        retry: RetryPolicy {
            max_attempts: 1_000,
            base_backoff: Duration::from_millis(5),
            jitter: Duration::from_millis(1),
            deadline: Duration::from_millis(120),
        },
        ..LiveConfig::default()
    };
    let (tree, cluster, _trace) = start_faulty(2, 6, config, FaultPlan::new(6));
    cluster.kill(MdsId(0));
    cluster.kill(MdsId(1));
    let mut client = cluster.client(2);
    let op = Operation {
        target: tree.root(),
        kind: OpKind::Read,
    };
    match client.execute(op) {
        Err(ClientError::DeadlineExceeded { elapsed }) => {
            assert!(elapsed >= Duration::from_millis(120));
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    drop(client);
    let _ = cluster.shutdown();
}

#[test]
fn gl_replicas_reconverge_after_restart() {
    let (tree, cluster, _trace) = start_faulty(3, 8, LiveConfig::default(), FaultPlan::new(8));
    let mut client = cluster.client(3);
    let root = tree.root();
    let update = Operation {
        target: root,
        kind: OpKind::Update,
    };

    for _ in 0..10 {
        client
            .execute(update)
            .expect("root update on healthy cluster");
    }
    let victim = MdsId(2);
    assert!(cluster.kill(victim));
    // The dead replica misses this batch of global-layer commits.
    for _ in 0..10 {
        client
            .execute(update)
            .expect("root update with one replica down");
    }
    let live_version = cluster.attr_version(MdsId(0), root);
    assert!(
        cluster.attr_version(victim, root) < live_version,
        "killed replica should have missed GL propagation"
    );

    // Restart re-syncs through the lock service before serving resumes.
    assert!(cluster.restart(victim));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let versions: Vec<u64> = (0..3)
            .map(|k| cluster.attr_version(MdsId(k), root))
            .collect();
        if versions.windows(2).all(|w| w[0] == w[1]) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replicas never reconverged: {versions:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let violations = settle_clean(&cluster, Duration::from_secs(5));
    assert!(violations.is_empty(), "{violations:?}");
    drop(client);
    let _ = cluster.shutdown();
}

#[test]
fn monitor_leader_crash_mid_rebalance_is_safe_and_reproducible() {
    // The replicated control plane under the full default schedule:
    // leader crash-restarts, a peer partition, a forced split vote and
    // an MDS kill that makes the surviving leader re-home subtrees
    // through the committed log. Safety must hold, grants must never
    // regress their fencing tokens, failover must stay within the
    // re-election bound, and the whole run must replay identically.
    let config = MonitorChaosConfig::default();
    let timing = d2tree::cluster::ConsensusTiming {
        heartbeat_ms: 2 * config.tick_ms,
        election_min_ms: 10 * config.tick_ms,
        election_jitter_ms: 10 * config.tick_ms,
        net_delay_ms: 1,
    };
    let failover_bound = timing.reelect_bound_ms() + 2 * config.tick_ms;
    for seed in seeds_under_test() {
        let a = run_monitor_chaos(seed, &config);
        let b = run_monitor_chaos(seed, &config);
        assert_eq!(a, b, "seed {seed}: same seed must replay identically");
        assert!(
            a.violations.is_empty(),
            "seed {seed}: control-plane violations: {:?}",
            a.violations
        );
        assert_eq!(a.monitor_kills, config.monitor_kills, "seed {seed}");
        assert_eq!(
            a.monitor_restarts, a.monitor_kills,
            "seed {seed}: every crashed replica restarts"
        );
        assert!(
            a.leader_changes >= 2,
            "seed {seed}: leader crashes must hand leadership over"
        );
        assert!(a.commits > 0 && a.grants > 0, "seed {seed}: no progress");
        assert!(
            a.max_failover_ms > 0 && a.max_failover_ms <= failover_bound,
            "seed {seed}: failover took {} ms, bound is {failover_bound} ms",
            a.max_failover_ms
        );
        // Zero lost grants, monotonic fences: every committed grant in
        // the journal carries a strictly larger fencing token than the
        // one before it, across every crash and re-election.
        let fences: Vec<u64> = a
            .journal
            .iter()
            .filter_map(|e| match e {
                EventKind::LeaseGranted { fence, .. } => Some(*fence),
                _ => None,
            })
            .collect();
        assert!(!fences.is_empty(), "seed {seed}: no grants journaled");
        assert!(
            fences.windows(2).all(|w| w[0] < w[1]),
            "seed {seed}: fencing tokens regressed: {fences:?}"
        );
        assert!(
            a.stale_probes_confirmed >= 1,
            "seed {seed}: the deliberate expired-fence probe must be rejected"
        );
    }
}

#[test]
fn monitor_quorum_loss_degrades_to_read_only_then_recovers() {
    // Killing 2 of 3 Monitor replicas must degrade the control plane to
    // read-only — writes blocked, no panic, no safety violation — and
    // restarting the replicas must restore write availability.
    let config = MonitorChaosConfig {
        ticks: 1_200,
        quorum_loss: true,
        ..MonitorChaosConfig::default()
    };
    for seed in seeds_under_test() {
        let report = run_monitor_chaos(seed, &config);
        assert!(
            report.violations.is_empty(),
            "seed {seed}: quorum loss broke safety: {:?}",
            report.violations
        );
        assert!(
            report.blocked_writes > 0,
            "seed {seed}: the leaderless window must visibly block writes"
        );
        assert!(
            report.grants > 0 && report.gl_writes > 0,
            "seed {seed}: writes must resume once quorum is restored"
        );
    }
}
