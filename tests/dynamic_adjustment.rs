//! Integration tests of the dynamic-adjustment machinery across crates:
//! popularity drift, decaying counters, pending-pool convergence and
//! global-layer re-cuts.

use d2tree::core::{
    plan_recut, split_to_proportion, D2TreeConfig, D2TreeScheme, Partitioner, SampleStrategy,
};
use d2tree::metrics::{balance, ClusterSpec};
use d2tree::workload::{TraceGen, TraceProfile, WorkloadBuilder};

#[test]
fn repeated_rounds_converge_to_stable_balance() {
    let w = WorkloadBuilder::new(
        TraceProfile::dtr()
            .with_nodes(4_000)
            .with_operations(60_000),
    )
    .seed(31)
    .build();
    let pop = w.popularity();
    let cluster = ClusterSpec::homogeneous(6, pop.sum_individual() / 6.0);
    let mut scheme = D2TreeScheme::new(
        D2TreeConfig::paper_default()
            .with_sampling(SampleStrategy::Uniform, 300)
            .with_seed(31),
    );
    scheme.build(&w.tree, &pop, &cluster);

    let mut history = Vec::new();
    for _ in 0..10 {
        let migrations = scheme.rebalance(&w.tree, &pop, &cluster);
        history.push((
            migrations.len(),
            balance(&scheme.loads(&w.tree, &pop), &cluster),
        ));
    }
    // Convergence: the tail rounds stop migrating.
    let tail_moves: usize = history.iter().rev().take(3).map(|(m, _)| m).sum();
    assert_eq!(tail_moves, 0, "rounds kept thrashing: {history:?}");
    // And the final balance is no worse than the initial one.
    let first = history.first().unwrap().1;
    let last = history.last().unwrap().1;
    assert!(last >= first * 0.9, "balance degraded: {first} -> {last}");
}

#[test]
fn decay_lets_new_hotspots_dominate() {
    let w = WorkloadBuilder::new(
        TraceProfile::lmbe()
            .with_nodes(2_000)
            .with_operations(20_000),
    )
    .seed(32)
    .build();
    let mut pop = w.popularity();
    let (old_layer, _) = split_to_proportion(&w.tree, &pop, |_| 0.0, 0.01);

    // A regime change: traffic moves to previously-cold nodes. With decay,
    // a few half-lives push the old regime's weight below the new one.
    let cold: Vec<_> = w
        .tree
        .nodes()
        .map(|(id, _)| id)
        .filter(|&id| pop.individual(id) < 1.0 && w.tree.depth(id) >= 2)
        .take(30)
        .collect();
    assert!(!cold.is_empty());
    for _ in 0..6 {
        pop.decay(0.5);
        for &id in &cold {
            pop.record(id, 500.0);
        }
    }
    pop.rollup(&w.tree);

    let plan = plan_recut(&w.tree, &pop, |_| 0.0, 0.01, &old_layer);
    assert!(
        !plan.promoted.is_empty(),
        "the re-cut should promote ancestors of the new hotspots"
    );
    assert!(plan.new_layer.is_closed_under_parents(&w.tree));
    assert_eq!(
        plan.new_layer.len(),
        old_layer.len(),
        "same proportion, same size"
    );
}

#[test]
fn trace_generator_streams_lazily_and_matches_collected() {
    let profile = TraceProfile::ra().with_nodes(600).with_operations(5_000);
    let w = WorkloadBuilder::new(profile.clone()).seed(33).build();
    let regenerated: Vec<_> = TraceGen::new(&profile, &w.tree, 33).collect();
    assert_eq!(w.trace.ops(), regenerated.as_slice());
    assert_eq!(TraceGen::new(&profile, &w.tree, 33).len(), 5_000);
}

#[test]
fn heterogeneous_cluster_gets_proportional_loads() {
    let w = WorkloadBuilder::new(
        TraceProfile::dtr()
            .with_nodes(3_000)
            .with_operations(50_000),
    )
    .seed(34)
    .build();
    let pop = w.popularity();
    // One server is 4x larger than the others.
    let cluster = ClusterSpec::new(vec![1_000.0, 1_000.0, 1_000.0, 4_000.0]);
    let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default().with_seed(34));
    scheme.build(&w.tree, &pop, &cluster);
    for _ in 0..5 {
        let _ = scheme.rebalance(&w.tree, &pop, &cluster);
    }
    let loads = scheme.loads(&w.tree, &pop);
    // The big server should carry clearly more than each small one.
    let small_max = loads[..3].iter().cloned().fold(0.0_f64, f64::max);
    assert!(loads[3] > small_max, "big server underused: {loads:?}");
}

#[test]
fn update_popularity_shapes_the_split() {
    let w = WorkloadBuilder::new(TraceProfile::ra().with_nodes(2_000).with_operations(30_000))
        .seed(35)
        .build();
    let pop = w.popularity();
    let cluster = ClusterSpec::homogeneous(4, 1.0);

    // Measured update popularity: every update op weighs on its target.
    let mut update_pop = d2tree::namespace::Popularity::new(&w.tree);
    for op in &w.trace {
        if op.kind.is_mutation() {
            update_pop.record(op.target, 1.0);
        }
    }
    update_pop.rollup(&w.tree);

    let mut with_measured = D2TreeScheme::new(D2TreeConfig::paper_default());
    with_measured.set_update_popularity(update_pop);
    with_measured.build(&w.tree, &pop, &cluster);

    let mut with_assumed = D2TreeScheme::new(D2TreeConfig::paper_default());
    with_assumed.build(&w.tree, &pop, &cluster);

    // Same proportion target, both complete.
    assert!(with_measured.placement().is_complete(&w.tree));
    assert!(with_assumed.placement().is_complete(&w.tree));
    assert_eq!(
        with_measured.global_layer().len(),
        with_assumed.global_layer().len()
    );
}
