//! Property-based tests of the discrete-event cluster simulator.

use d2tree::cluster::{SimConfig, Simulator};
use d2tree::core::{D2TreeConfig, D2TreeScheme, Partitioner};
use d2tree::metrics::ClusterSpec;
use d2tree::workload::{TraceProfile, WorkloadBuilder};
use proptest::prelude::*;

fn built_scheme(seed: u64, m: usize) -> (d2tree::workload::Workload, D2TreeScheme) {
    let w = WorkloadBuilder::new(TraceProfile::lmbe().with_nodes(400).with_operations(2_000))
        .seed(seed)
        .build();
    let pop = w.popularity();
    let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default().with_seed(seed));
    scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(m, 1.0));
    (w, scheme)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_config_completes_every_op(
        seed in 0u64..100,
        m in 1usize..10,
        clients in 1usize..300,
        workers in 1usize..4,
    ) {
        let (w, scheme) = built_scheme(seed, m);
        let sim = Simulator::new(SimConfig {
            clients,
            workers_per_mds: workers,
            seed,
            ..SimConfig::default()
        });
        let out = sim.replay(&w.tree, &w.trace, &scheme);
        prop_assert_eq!(out.completed, w.trace.len());
        prop_assert_eq!(out.served_ops.iter().sum::<u64>() as usize, w.trace.len());
        prop_assert_eq!(out.served_ops.len(), m);
        prop_assert!(out.sim_seconds > 0.0);
        prop_assert!(out.throughput.is_finite());
        prop_assert!(out.p99_latency_us + 1e-9 >= out.mean_latency_us * 0.1);
    }

    #[test]
    fn latency_floor_is_respected(seed in 0u64..100, m in 1usize..8) {
        // No op can finish faster than two client legs plus one service.
        let (w, scheme) = built_scheme(seed, m);
        let config = SimConfig { clients: 8, seed, ..SimConfig::default() };
        let floor_us =
            (2 * config.client_latency_ns + config.read_service_ns) as f64 / 1e3;
        let out = Simulator::new(config).replay(&w.tree, &w.trace, &scheme);
        prop_assert!(
            out.mean_latency_us + 1e-9 >= floor_us,
            "mean {} below physical floor {floor_us}", out.mean_latency_us
        );
    }

    #[test]
    fn busy_time_never_exceeds_capacity(seed in 0u64..100, m in 1usize..8, workers in 1usize..4) {
        let (w, scheme) = built_scheme(seed, m);
        let sim = Simulator::new(SimConfig {
            clients: 64,
            workers_per_mds: workers,
            seed,
            ..SimConfig::default()
        });
        let out = sim.replay(&w.tree, &w.trace, &scheme);
        let wall_ns = out.sim_seconds * 1e9;
        for &busy in &out.server_busy_ns {
            prop_assert!(
                busy as f64 <= wall_ns * workers as f64 + 1.0,
                "server busier ({busy}) than {workers} workers allow over {wall_ns}"
            );
        }
    }

    #[test]
    fn fewer_clients_never_increase_throughput_much(seed in 0u64..50) {
        // Closed-loop: more clients can only add offered load.
        let (w, scheme) = built_scheme(seed, 4);
        let run = |clients: usize| {
            Simulator::new(SimConfig { clients, seed, ..SimConfig::default() })
                .replay(&w.tree, &w.trace, &scheme)
                .throughput
        };
        let few = run(4);
        let many = run(64);
        prop_assert!(many + 1e-9 >= few * 0.9, "throughput fell hard: {few} -> {many}");
    }
}
