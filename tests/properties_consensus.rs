//! Property-based tests of the replicated Monitor control plane.
//!
//! Raft's two core safety properties must hold under *arbitrary* seeded
//! message-level perturbation of the replica↔replica links — drops,
//! delays, duplicates, reorders and partition windows:
//!
//! * **Election safety** — at most one leader per term, ever.
//! * **Log matching** — if two replicas hold an entry with the same
//!   index and term, their logs are identical up to and including it.
//!
//! And the whole control plane must be reproducible: the same seed and
//! fault plan yield the identical journal, observer state and leader
//! history across two independent runs (seeds 1/7/42, matching the CI
//! chaos matrix).

use std::collections::BTreeMap;
use std::sync::Arc;

use d2tree::cluster::{
    Command, ConsensusCluster, ConsensusConfig, ControlState, FaultAction, FaultInjector,
    FaultPlan, FaultRule, FaultScope, LeaderClient,
};
use d2tree::telemetry::{EventKind, Registry};
use proptest::prelude::*;

const REPLICAS: usize = 3;
const TICK_MS: u64 = 10;

/// A fault plan touching every replica↔replica link with every fault
/// kind the injector knows, scaled by the generated knobs. Partition
/// windows close well before the run ends so liveness can be asserted
/// at the final tick.
fn peer_fault_plan(
    seed: u64,
    drop_p: f64,
    delay_ms: u64,
    dup_p: f64,
    reorder_ms: u64,
    partition_victim: u16,
    partition_ticks: u64,
) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for r in 0..REPLICAS as u16 {
        if drop_p > 0.0 {
            plan = plan.with_rule(
                FaultRule::new(FaultScope::PeerLink(r), FaultAction::Drop).with_probability(drop_p),
            );
        }
        if delay_ms > 0 {
            plan = plan.with_rule(
                FaultRule::new(
                    FaultScope::PeerLink(r),
                    FaultAction::Delay {
                        fixed_ms: delay_ms,
                        jitter_ms: delay_ms,
                    },
                )
                .with_probability(0.3),
            );
        }
        if dup_p > 0.0 {
            plan = plan.with_rule(
                FaultRule::new(FaultScope::PeerLink(r), FaultAction::Duplicate)
                    .with_probability(dup_p),
            );
        }
        if reorder_ms > 0 {
            plan = plan.with_rule(
                FaultRule::new(
                    FaultScope::PeerLink(r),
                    FaultAction::Reorder {
                        jitter_ms: reorder_ms,
                    },
                )
                .with_probability(0.25),
            );
        }
    }
    if partition_ticks > 0 {
        // Isolate one replica for a bounded window mid-run.
        let from = 50 * TICK_MS;
        plan = plan.with_rule(FaultRule::partition(
            FaultScope::PeerLink(partition_victim),
            from,
            from + partition_ticks * TICK_MS,
        ));
    }
    plan
}

/// Drives a 3-replica cluster for `ticks` virtual ticks under `plan`,
/// submitting lease traffic through a redirect-following client and
/// crash-restarting the leader once mid-run. Returns everything a
/// property could want to inspect.
fn run_consensus(
    seed: u64,
    plan: &FaultPlan,
    ticks: u64,
) -> (ConsensusCluster, Vec<EventKind>, BTreeMap<u64, u16>, u64) {
    let reg = Arc::new(Registry::with_journal_capacity(8_192));
    let mut c = ConsensusCluster::new(seed, ConsensusConfig::default())
        .with_journal(Arc::clone(reg.journal()));
    let injector = FaultInjector::new(plan);
    let mut client = LeaderClient::new(seed, REPLICAS as u16);
    let kill_at = ticks / 3;
    let restart_at = kill_at + 40;
    for tick in 0..ticks {
        let now = tick * TICK_MS;
        if tick == kill_at {
            if let Some(l) = c.leader() {
                c.kill(l, now);
            }
        }
        if tick == restart_at {
            for r in 0..REPLICAS as u16 {
                if !c.is_up(r) {
                    c.restart(r, now);
                }
            }
        }
        let node = 1 + tick % 4;
        let _ = client.try_submit(
            &mut c,
            Command::LeaseAcquire {
                node,
                holder: 9,
                now_ms: now,
            },
            now,
        );
        c.tick(now, Some(&injector));
    }
    let events: Vec<EventKind> = reg.journal().snapshot().iter().map(|e| e.kind).collect();
    let leaders = c.leaders_by_term().clone();
    let retries = client.retries();
    (c, events, leaders, retries)
}

/// The classic log-matching check, stated directly on the replica logs:
/// find the highest index where two logs agree on the term; everything
/// up to and including it must be identical.
fn assert_log_matching(c: &ConsensusCluster) -> Result<(), TestCaseError> {
    for i in 0..REPLICAS as u16 {
        for j in (i + 1)..REPLICAS as u16 {
            let a = c.replica(i).log();
            let b = c.replica(j).log();
            let common = a.len().min(b.len());
            let agree = (0..common).rev().find(|&k| a[k].term == b[k].term);
            if let Some(k) = agree {
                prop_assert_eq!(
                    &a[..=k],
                    &b[..=k],
                    "log matching violated between replicas {} and {} up to index {}",
                    i,
                    j,
                    k + 1
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Election safety + log matching survive arbitrary combinations of
    /// drop/delay/duplicate/reorder rules plus a partition window, and
    /// the cluster still ends the run live (a leader exists and the
    /// state machine made progress) once faults have cleared.
    #[test]
    fn safety_holds_under_seeded_peer_faults(
        seed in 0u64..512,
        drop_p in 0.0f64..0.30,
        delay_ms in 0u64..4,
        dup_p in 0.0f64..0.20,
        reorder_ms in 0u64..3,
        victim in 0u16..REPLICAS as u16,
        partition_ticks in 0u64..60,
    ) {
        let plan = peer_fault_plan(
            seed ^ 0xfa17, drop_p, delay_ms, dup_p, reorder_ms, victim, partition_ticks,
        );
        let (c, _events, leaders, _retries) = run_consensus(seed, &plan, 1_200);
        let violations = c.check_invariants();
        prop_assert!(
            violations.is_empty(),
            "invariant violations under seed {}: {:?}", seed, violations
        );
        // Election safety: the per-term leader map is total over every
        // term that elected anyone, and terms never repeat a leader
        // inconsistently (a double leader would already be a violation;
        // this asserts the record is well-formed and non-trivial).
        prop_assert!(!leaders.is_empty(), "no leader was ever elected");
        prop_assert!(
            leaders.keys().zip(leaders.keys().skip(1)).all(|(a, b)| a < b),
            "terms must be strictly increasing"
        );
        assert_log_matching(&c)?;
        // Liveness after the faults cleared: all partition windows close
        // by tick 110 and probabilistic faults never exceed 30% drop, so
        // by tick 1200 a leader must exist and have committed traffic.
        prop_assert!(c.leader().is_some(), "cluster ended the run leaderless");
        prop_assert!(c.observer().applied > 0, "nothing was ever committed");
        prop_assert!(c.observer().grants > 0, "no lease traffic survived");
    }

    /// Committed state never forks: every replica's committed prefix is
    /// a prefix of the longest one, and fencing tokens observed in grant
    /// order are strictly monotonic.
    #[test]
    fn committed_prefixes_never_fork(
        seed in 0u64..512,
        drop_p in 0.0f64..0.25,
        victim in 0u16..REPLICAS as u16,
    ) {
        let plan = peer_fault_plan(seed ^ 0x10f5, drop_p, 2, 0.1, 1, victim, 30);
        let (c, events, _leaders, _retries) = run_consensus(seed, &plan, 1_000);
        prop_assert!(c.check_invariants().is_empty());
        for i in 0..REPLICAS as u16 {
            for j in (i + 1)..REPLICAS as u16 {
                let a = c.replica(i);
                let b = c.replica(j);
                let common = (a.commit_index().min(b.commit_index())) as usize;
                prop_assert_eq!(
                    &a.log()[..common.min(a.log().len())],
                    &b.log()[..common.min(b.log().len())],
                    "committed prefixes diverged between {} and {}", i, j
                );
            }
        }
        let fences: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                EventKind::LeaseGranted { fence, .. } => Some(*fence),
                _ => None,
            })
            .collect();
        prop_assert!(
            fences.windows(2).all(|w| w[0] < w[1]),
            "fencing tokens must be strictly monotonic across failover: {:?}", fences
        );
    }
}

/// The CI chaos matrix seeds, replayed twice each: journal, observer
/// state, leader history and client retry counts must be identical —
/// the control plane is deterministic end to end, faults included.
#[test]
fn seeds_1_7_42_reproduce_identical_journals() {
    let run = |seed: u64| -> (Vec<EventKind>, ControlState, BTreeMap<u64, u16>, u64) {
        let plan = peer_fault_plan(seed ^ 0xd0_07, 0.2, 2, 0.1, 2, (seed % 3) as u16, 40);
        let (c, events, leaders, retries) = run_consensus(seed, &plan, 1_200);
        assert!(
            c.check_invariants().is_empty(),
            "seed {seed} violated safety: {:?}",
            c.check_invariants()
        );
        (events, c.observer().clone(), leaders, retries)
    };
    let mut fingerprints = Vec::new();
    for &seed in &[1u64, 7, 42] {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.0, b.0, "seed {seed}: journals differ between runs");
        assert_eq!(a.1, b.1, "seed {seed}: observer states differ");
        assert_eq!(a.2, b.2, "seed {seed}: leader histories differ");
        assert_eq!(a.3, b.3, "seed {seed}: retry counts differ");
        fingerprints.push(a);
    }
    // The seeds genuinely explore different schedules.
    assert!(
        fingerprints[0].0 != fingerprints[1].0 || fingerprints[1].0 != fingerprints[2].0,
        "all three seeds produced identical journals — the seed is not reaching the schedule"
    );
}
