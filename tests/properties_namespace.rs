//! Property-based tests of the namespace-tree substrate.

use d2tree::namespace::{NamespaceTree, NodeKind, NsPath, Popularity, TreeBuilder};
use proptest::prelude::*;

/// Strategy: a list of plausible absolute paths over a tiny alphabet so
/// prefixes collide often (exercising shared-directory code paths).
fn path_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("(/[a-d]{1,2}){1,6}", 1..40)
}

proptest! {
    #[test]
    fn build_resolve_roundtrip(paths in path_strategy()) {
        let mut builder = TreeBuilder::new();
        let mut created = Vec::new();
        for p in &paths {
            // Conflicts (file vs dir on the same path) may legitimately
            // error; only successful creations must resolve.
            if let Ok(id) = builder.file(p) {
                created.push((p.clone(), id));
            }
        }
        let tree = builder.build();
        for (p, id) in created {
            let parsed: NsPath = p.parse().unwrap();
            prop_assert_eq!(tree.resolve(&parsed), Some(id));
            prop_assert_eq!(tree.path_of(id).to_string(), p);
        }
    }

    #[test]
    fn node_count_equals_descendants_of_root(paths in path_strategy()) {
        let mut builder = TreeBuilder::new();
        for p in &paths {
            let _ = builder.file(p);
        }
        let tree = builder.build();
        prop_assert_eq!(tree.node_count(), tree.descendants(tree.root()).count());
        prop_assert_eq!(
            tree.node_count(),
            tree.directory_count() + tree.file_count()
        );
    }

    #[test]
    fn ancestor_chain_lengths_match_depth(paths in path_strategy()) {
        let mut builder = TreeBuilder::new();
        for p in &paths {
            let _ = builder.file(p);
        }
        let tree = builder.build();
        for (id, _) in tree.nodes() {
            let depth = tree.depth(id);
            prop_assert_eq!(tree.ancestors(id).count(), depth);
            prop_assert_eq!(tree.path_from_root(id).len(), depth + 1);
            prop_assert_eq!(tree.path_of(id).depth(), depth);
        }
    }

    #[test]
    fn removal_conserves_counts(paths in path_strategy(), pick in any::<prop::sample::Index>()) {
        let mut builder = TreeBuilder::new();
        for p in &paths {
            let _ = builder.file(p);
        }
        let mut tree = builder.build();
        let candidates: Vec<_> =
            tree.nodes().map(|(id, _)| id).filter(|&id| id != tree.root()).collect();
        if candidates.is_empty() {
            return Ok(());
        }
        let victim = candidates[pick.index(candidates.len())];
        let before = tree.node_count();
        let sub = tree.subtree_size(victim);
        let removed = tree.remove_subtree(victim).unwrap();
        prop_assert_eq!(removed, sub);
        prop_assert_eq!(tree.node_count(), before - removed);
        prop_assert!(!tree.contains(victim));
    }

    #[test]
    fn move_preserves_subtree_and_count(paths in path_strategy(), a in any::<prop::sample::Index>(), b in any::<prop::sample::Index>()) {
        let mut builder = TreeBuilder::new();
        for p in &paths {
            let _ = builder.file(p);
        }
        let mut tree = builder.build();
        let nodes: Vec<_> =
            tree.nodes().map(|(id, _)| id).filter(|&id| id != tree.root()).collect();
        let dirs: Vec<_> = tree
            .nodes()
            .filter(|(_, n)| n.kind().is_directory())
            .map(|(id, _)| id)
            .collect();
        if nodes.is_empty() || dirs.is_empty() {
            return Ok(());
        }
        let subject = nodes[a.index(nodes.len())];
        let dest = dirs[b.index(dirs.len())];
        let before = tree.node_count();
        let sub_size = tree.subtree_size(subject);
        match tree.move_subtree(subject, dest) {
            Ok(()) => {
                prop_assert_eq!(tree.node_count(), before);
                prop_assert_eq!(tree.subtree_size(subject), sub_size);
                let parent = tree.node(subject).unwrap().parent();
                prop_assert_eq!(parent, Some(dest));
            }
            Err(_) => {
                // Rejected moves must leave the tree untouched.
                prop_assert_eq!(tree.node_count(), before);
                prop_assert_eq!(tree.subtree_size(subject), sub_size);
            }
        }
    }

    #[test]
    fn popularity_rollup_is_sum_of_individuals(paths in path_strategy(), weights in proptest::collection::vec(0.0f64..100.0, 40)) {
        let mut builder = TreeBuilder::new();
        for p in &paths {
            let _ = builder.file(p);
        }
        let tree = builder.build();
        let mut pop = Popularity::new(&tree);
        let ids: Vec<_> = tree.nodes().map(|(id, _)| id).collect();
        for (i, id) in ids.iter().enumerate() {
            pop.record(*id, weights[i % weights.len()]);
        }
        pop.rollup(&tree);
        // Root total equals the sum of all individuals.
        let sum: f64 = ids.iter().map(|&id| pop.individual(id)).collect::<Vec<_>>().iter().sum();
        prop_assert!((pop.total(tree.root()) - sum).abs() < 1e-6);
        // Every node's total is at least its own individual and at most
        // its parent's total.
        for &id in &ids {
            prop_assert!(pop.total(id) + 1e-9 >= pop.individual(id));
            if let Some(parent) = tree.node(id).unwrap().parent() {
                prop_assert!(pop.total(parent) + 1e-9 >= pop.total(id));
            }
        }
    }

    #[test]
    fn rename_is_observable_and_reversible(paths in path_strategy()) {
        let mut builder = TreeBuilder::new();
        for p in &paths {
            let _ = builder.file(p);
        }
        let mut tree = builder.build();
        let victim = match tree.nodes().map(|(id, _)| id).find(|&id| id != tree.root()) {
            Some(v) => v,
            None => return Ok(()),
        };
        let old_name = tree.node(victim).unwrap().name().to_owned();
        let unique = "zz_renamed";
        if tree.rename(victim, unique).is_ok() {
            prop_assert_eq!(tree.node(victim).unwrap().name(), unique);
            tree.rename(victim, &old_name).unwrap();
            prop_assert_eq!(tree.node(victim).unwrap().name(), old_name.as_str());
        }
    }
}

#[test]
fn create_path_agrees_with_manual_creation() {
    let mut a = NamespaceTree::new();
    let p: NsPath = "/x/y/z".parse().unwrap();
    let via_path = a.create_path(&p, NodeKind::File).unwrap();

    let mut b = NamespaceTree::new();
    let x = b.create(b.root(), "x", NodeKind::Directory).unwrap();
    let y = b.create(x, "y", NodeKind::Directory).unwrap();
    let z = b.create(y, "z", NodeKind::File).unwrap();

    assert_eq!(a.path_of(via_path), b.path_of(z));
    assert_eq!(a.node_count(), b.node_count());
}

/// I/O round-trip property: any tree built from generated paths survives
/// `write_tree` → `read_tree` with identical structure, and any trace over
/// it survives `write_trace` → `read_trace`.
mod io_roundtrip {
    use super::*;
    use d2tree::workload::io::{read_trace, read_tree, write_trace, write_tree};
    use d2tree::workload::{OpKind, Operation, Trace};
    use std::io::BufReader;

    proptest! {
        #[test]
        fn tree_and_trace_roundtrip(paths in super::path_strategy(), picks in proptest::collection::vec(any::<prop::sample::Index>(), 1..50)) {
            let mut builder = TreeBuilder::new();
            for p in &paths {
                let _ = builder.file(p);
            }
            let tree = builder.build();

            let mut buf = Vec::new();
            write_tree(&mut buf, &tree).unwrap();
            let back = read_tree(BufReader::new(buf.as_slice())).unwrap();
            prop_assert_eq!(back.node_count(), tree.node_count());
            for (id, node) in tree.nodes() {
                let p = tree.path_of(id);
                let there = back.resolve(&p);
                prop_assert!(there.is_some(), "missing {}", p);
                prop_assert_eq!(back.node(there.unwrap()).unwrap().kind(), node.kind());
            }

            // A random trace over the original tree replays over the copy.
            let ids: Vec<_> = tree.nodes().map(|(id, _)| id).collect();
            let kinds = [OpKind::Read, OpKind::Write, OpKind::Update];
            let ops: Vec<Operation> = picks
                .iter()
                .enumerate()
                .map(|(i, pick)| Operation {
                    target: ids[pick.index(ids.len())],
                    kind: kinds[i % 3],
                })
                .collect();
            let trace = Trace::from_ops(ops);
            let mut tbuf = Vec::new();
            write_trace(&mut tbuf, &trace, &tree).unwrap();
            let trace_back = read_trace(BufReader::new(tbuf.as_slice()), &back).unwrap();
            prop_assert_eq!(trace_back.len(), trace.len());
            for (a, b) in trace_back.iter().zip(&trace) {
                prop_assert_eq!(a.kind, b.kind);
                prop_assert_eq!(back.path_of(a.target), tree.path_of(b.target));
            }
        }
    }
}
