//! Property-based tests of the namespace-tree substrate.

use d2tree::namespace::{NamespaceTree, NodeKind, NsPath, Popularity, TreeBuilder};
use proptest::prelude::*;

/// Strategy: a list of plausible absolute paths over a tiny alphabet so
/// prefixes collide often (exercising shared-directory code paths).
fn path_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("(/[a-d]{1,2}){1,6}", 1..40)
}

proptest! {
    #[test]
    fn build_resolve_roundtrip(paths in path_strategy()) {
        let mut builder = TreeBuilder::new();
        let mut created = Vec::new();
        for p in &paths {
            // Conflicts (file vs dir on the same path) may legitimately
            // error; only successful creations must resolve.
            if let Ok(id) = builder.file(p) {
                created.push((p.clone(), id));
            }
        }
        let tree = builder.build();
        for (p, id) in created {
            let parsed: NsPath = p.parse().unwrap();
            prop_assert_eq!(tree.resolve(&parsed), Some(id));
            prop_assert_eq!(tree.path_of(id).to_string(), p);
        }
    }

    #[test]
    fn node_count_equals_descendants_of_root(paths in path_strategy()) {
        let mut builder = TreeBuilder::new();
        for p in &paths {
            let _ = builder.file(p);
        }
        let tree = builder.build();
        prop_assert_eq!(tree.node_count(), tree.descendants(tree.root()).count());
        prop_assert_eq!(
            tree.node_count(),
            tree.directory_count() + tree.file_count()
        );
    }

    #[test]
    fn ancestor_chain_lengths_match_depth(paths in path_strategy()) {
        let mut builder = TreeBuilder::new();
        for p in &paths {
            let _ = builder.file(p);
        }
        let tree = builder.build();
        for (id, _) in tree.nodes() {
            let depth = tree.depth(id);
            prop_assert_eq!(tree.ancestors(id).count(), depth);
            prop_assert_eq!(tree.path_from_root(id).len(), depth + 1);
            prop_assert_eq!(tree.path_of(id).depth(), depth);
        }
    }

    #[test]
    fn removal_conserves_counts(paths in path_strategy(), pick in any::<prop::sample::Index>()) {
        let mut builder = TreeBuilder::new();
        for p in &paths {
            let _ = builder.file(p);
        }
        let mut tree = builder.build();
        let candidates: Vec<_> =
            tree.nodes().map(|(id, _)| id).filter(|&id| id != tree.root()).collect();
        if candidates.is_empty() {
            return Ok(());
        }
        let victim = candidates[pick.index(candidates.len())];
        let before = tree.node_count();
        let sub = tree.subtree_size(victim);
        let removed = tree.remove_subtree(victim).unwrap();
        prop_assert_eq!(removed, sub);
        prop_assert_eq!(tree.node_count(), before - removed);
        prop_assert!(!tree.contains(victim));
    }

    #[test]
    fn move_preserves_subtree_and_count(paths in path_strategy(), a in any::<prop::sample::Index>(), b in any::<prop::sample::Index>()) {
        let mut builder = TreeBuilder::new();
        for p in &paths {
            let _ = builder.file(p);
        }
        let mut tree = builder.build();
        let nodes: Vec<_> =
            tree.nodes().map(|(id, _)| id).filter(|&id| id != tree.root()).collect();
        let dirs: Vec<_> = tree
            .nodes()
            .filter(|(_, n)| n.kind().is_directory())
            .map(|(id, _)| id)
            .collect();
        if nodes.is_empty() || dirs.is_empty() {
            return Ok(());
        }
        let subject = nodes[a.index(nodes.len())];
        let dest = dirs[b.index(dirs.len())];
        let before = tree.node_count();
        let sub_size = tree.subtree_size(subject);
        match tree.move_subtree(subject, dest) {
            Ok(()) => {
                prop_assert_eq!(tree.node_count(), before);
                prop_assert_eq!(tree.subtree_size(subject), sub_size);
                let parent = tree.node(subject).unwrap().parent();
                prop_assert_eq!(parent, Some(dest));
            }
            Err(_) => {
                // Rejected moves must leave the tree untouched.
                prop_assert_eq!(tree.node_count(), before);
                prop_assert_eq!(tree.subtree_size(subject), sub_size);
            }
        }
    }

    #[test]
    fn popularity_rollup_is_sum_of_individuals(paths in path_strategy(), weights in proptest::collection::vec(0.0f64..100.0, 40)) {
        let mut builder = TreeBuilder::new();
        for p in &paths {
            let _ = builder.file(p);
        }
        let tree = builder.build();
        let mut pop = Popularity::new(&tree);
        let ids: Vec<_> = tree.nodes().map(|(id, _)| id).collect();
        for (i, id) in ids.iter().enumerate() {
            pop.record(*id, weights[i % weights.len()]);
        }
        pop.rollup(&tree);
        // Root total equals the sum of all individuals.
        let sum: f64 = ids.iter().map(|&id| pop.individual(id)).collect::<Vec<_>>().iter().sum();
        prop_assert!((pop.total(tree.root()) - sum).abs() < 1e-6);
        // Every node's total is at least its own individual and at most
        // its parent's total.
        for &id in &ids {
            prop_assert!(pop.total(id) + 1e-9 >= pop.individual(id));
            if let Some(parent) = tree.node(id).unwrap().parent() {
                prop_assert!(pop.total(parent) + 1e-9 >= pop.total(id));
            }
        }
    }

    #[test]
    fn rename_is_observable_and_reversible(paths in path_strategy()) {
        let mut builder = TreeBuilder::new();
        for p in &paths {
            let _ = builder.file(p);
        }
        let mut tree = builder.build();
        let victim = match tree.nodes().map(|(id, _)| id).find(|&id| id != tree.root()) {
            Some(v) => v,
            None => return Ok(()),
        };
        let old_name = tree.node(victim).unwrap().name().to_owned();
        let unique = "zz_renamed";
        if tree.rename(victim, unique).is_ok() {
            prop_assert_eq!(tree.node(victim).unwrap().name(), unique);
            tree.rename(victim, &old_name).unwrap();
            prop_assert_eq!(tree.node(victim).unwrap().name(), old_name.as_str());
        }
    }
}

#[test]
fn create_path_agrees_with_manual_creation() {
    let mut a = NamespaceTree::new();
    let p: NsPath = "/x/y/z".parse().unwrap();
    let via_path = a.create_path(&p, NodeKind::File).unwrap();

    let mut b = NamespaceTree::new();
    let x = b.create(b.root(), "x", NodeKind::Directory).unwrap();
    let y = b.create(x, "y", NodeKind::Directory).unwrap();
    let z = b.create(y, "z", NodeKind::File).unwrap();

    assert_eq!(a.path_of(via_path), b.path_of(z));
    assert_eq!(a.node_count(), b.node_count());
}

/// I/O round-trip property: any tree built from generated paths survives
/// `write_tree` → `read_tree` with identical structure, and any trace over
/// it survives `write_trace` → `read_trace`.
mod io_roundtrip {
    use super::*;
    use d2tree::workload::io::{read_trace, read_tree, write_trace, write_tree};
    use d2tree::workload::{OpKind, Operation, Trace};
    use std::io::BufReader;

    proptest! {
        #[test]
        fn tree_and_trace_roundtrip(paths in super::path_strategy(), picks in proptest::collection::vec(any::<prop::sample::Index>(), 1..50)) {
            let mut builder = TreeBuilder::new();
            for p in &paths {
                let _ = builder.file(p);
            }
            let tree = builder.build();

            let mut buf = Vec::new();
            write_tree(&mut buf, &tree).unwrap();
            let back = read_tree(BufReader::new(buf.as_slice())).unwrap();
            prop_assert_eq!(back.node_count(), tree.node_count());
            for (id, node) in tree.nodes() {
                let p = tree.path_of(id);
                let there = back.resolve(&p);
                prop_assert!(there.is_some(), "missing {}", p);
                prop_assert_eq!(back.node(there.unwrap()).unwrap().kind(), node.kind());
            }

            // A random trace over the original tree replays over the copy.
            let ids: Vec<_> = tree.nodes().map(|(id, _)| id).collect();
            let kinds = [OpKind::Read, OpKind::Write, OpKind::Update];
            let ops: Vec<Operation> = picks
                .iter()
                .enumerate()
                .map(|(i, pick)| Operation {
                    target: ids[pick.index(ids.len())],
                    kind: kinds[i % 3],
                })
                .collect();
            let trace = Trace::from_ops(ops);
            let mut tbuf = Vec::new();
            write_trace(&mut tbuf, &trace, &tree).unwrap();
            let trace_back = read_trace(BufReader::new(tbuf.as_slice()), &back).unwrap();
            prop_assert_eq!(trace_back.len(), trace.len());
            for (a, b) in trace_back.iter().zip(&trace) {
                prop_assert_eq!(a.kind, b.kind);
                prop_assert_eq!(back.path_of(a.target), tree.path_of(b.target));
            }
        }
    }
}

/// Equivalence properties for the interned hot path: `intern_path` +
/// `resolve_syms` and the memoised `LocalIndex::locate` must agree with
/// a naive string-walk reference model, before and after arbitrary
/// rename / move / delete sequences (which exercise both symbol-table
/// stability and memo invalidation).
mod interned_hot_path {
    use super::*;
    use d2tree::core::LocalIndex;
    use d2tree::metrics::MdsId;
    use d2tree::namespace::NodeId;

    /// Reference resolver: walks components by comparing name *strings*
    /// against each child, independent of the symbol table and of the
    /// child-map representation.
    fn string_walk(tree: &NamespaceTree, path: &NsPath) -> Option<NodeId> {
        let mut cur = tree.root();
        for comp in path.components() {
            cur = tree
                .node(cur)?
                .children()
                .find_map(|(sym, child)| (tree.symbols().resolve(sym) == comp).then_some(child))?;
        }
        Some(cur)
    }

    /// Reference locate: first indexed node on the root→target chain
    /// (i.e. the shallowest, per D2-Tree's nearest-indexed-ancestor
    /// convention).
    fn walk_locate(
        tree: &NamespaceTree,
        index: &LocalIndex,
        target: NodeId,
    ) -> Option<(NodeId, MdsId)> {
        tree.path_from_root(target)
            .into_iter()
            .find_map(|id| index.owner_of(id).map(|owner| (id, owner)))
    }

    /// Asserts all three resolution routes agree for every live node,
    /// and that `locate` (memoised) == `locate_uncached` == reference.
    fn assert_equivalent(tree: &NamespaceTree, index: &LocalIndex) -> Result<(), TestCaseError> {
        for (id, _) in tree.nodes() {
            let path = tree.path_of(id);
            prop_assert_eq!(tree.resolve(&path), Some(id));
            prop_assert_eq!(string_walk(tree, &path), Some(id));
            let syms = tree.intern_path(&path);
            prop_assert!(syms.is_some(), "live path {} must intern", path);
            prop_assert_eq!(tree.resolve_syms(&syms.unwrap()), Some(id));

            let reference = walk_locate(tree, index, id);
            prop_assert_eq!(index.locate(tree, id), reference);
            prop_assert_eq!(index.locate_uncached(tree, id), reference);
        }
        Ok(())
    }

    fn build(paths: &[String]) -> NamespaceTree {
        let mut builder = TreeBuilder::new();
        for p in paths {
            let _ = builder.file(p);
        }
        builder.build()
    }

    fn spread_index(tree: &NamespaceTree) -> LocalIndex {
        let mut index = LocalIndex::new();
        for (i, (id, _)) in tree.nodes().enumerate() {
            // Index every third node so plenty of targets resolve via a
            // strict ancestor and some via themselves.
            if i % 3 == 0 {
                index.insert(id, MdsId((i % 5) as u16));
            }
        }
        index
    }

    proptest! {
        #[test]
        fn interned_resolution_matches_string_walk(paths in path_strategy()) {
            let tree = build(&paths);
            let index = spread_index(&tree);
            assert_equivalent(&tree, &index)?;
        }

        #[test]
        fn equivalence_survives_mutation_sequences(
            paths in path_strategy(),
            kinds in proptest::collection::vec(0u8..4, 12),
            picks_a in proptest::collection::vec(any::<prop::sample::Index>(), 12),
            picks_b in proptest::collection::vec(any::<prop::sample::Index>(), 12),
        ) {
            let mut tree = build(&paths);
            let mut index = spread_index(&tree);
            for ((&kind, a), b) in kinds.iter().zip(&picks_a).zip(&picks_b) {
                let nodes: Vec<NodeId> = tree
                    .nodes()
                    .map(|(id, _)| id)
                    .filter(|&id| id != tree.root())
                    .collect();
                if nodes.is_empty() {
                    break;
                }
                let subject = nodes[a.index(nodes.len())];
                match kind {
                    0 => {
                        // Rename to a name outside the generator alphabet
                        // (collision-free), then keep it — later rounds
                        // may rename it again.
                        let fresh = format!("r{}", subject.index());
                        let _ = tree.rename(subject, &fresh);
                    }
                    1 => {
                        let dirs: Vec<NodeId> = tree
                            .nodes()
                            .filter(|(_, n)| n.kind().is_directory())
                            .map(|(id, _)| id)
                            .collect();
                        let dest = dirs[b.index(dirs.len())];
                        let _ = tree.move_subtree(subject, dest);
                    }
                    2 => {
                        if tree.remove_subtree(subject).is_ok() {
                            // Drop index entries whose nodes died, as the
                            // owning MDS would.
                            let dead: Vec<NodeId> = index
                                .iter()
                                .map(|(id, _)| id)
                                .filter(|&id| !tree.contains(id))
                                .collect();
                            for id in dead {
                                index.remove(id);
                            }
                        }
                    }
                    _ => {
                        // Index churn: toggle the subject's entry.
                        if index.owner_of(subject).is_some() {
                            index.remove(subject);
                        } else {
                            index.insert(subject, MdsId((b.index(7)) as u16));
                        }
                    }
                }
                assert_equivalent(&tree, &index)?;
            }
        }

        #[test]
        fn stale_syms_track_renames(paths in path_strategy()) {
            let mut tree = build(&paths);
            let victim = match tree.nodes().map(|(id, _)| id).find(|&id| id != tree.root()) {
                Some(v) => v,
                None => return Ok(()),
            };
            let path = tree.path_of(victim);
            let syms = tree.intern_path(&path).unwrap();
            let old_name = tree.node(victim).unwrap().name().to_owned();
            if tree.rename(victim, "zz_stale").is_ok() {
                // The pre-rename symbol sequence no longer names a node…
                prop_assert_eq!(tree.resolve_syms(&syms), None);
                // …until the rename is undone, when it must work again
                // (symbols are never reclaimed, so the Vec<Sym> is still
                // valid).
                tree.rename(victim, &old_name).unwrap();
                prop_assert_eq!(tree.resolve_syms(&syms), Some(victim));
            }
        }
    }
}
