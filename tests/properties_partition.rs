//! Property-based tests over the partitioning schemes: structural
//! invariants that must hold for every seed, cluster size and trace shape.

use d2tree::baselines::extended_lineup;
use d2tree::core::{
    collect_subtrees, split_to_proportion, D2TreeConfig, D2TreeScheme, Partitioner,
};
use d2tree::metrics::ClusterSpec;
use d2tree::workload::{TraceProfile, WorkloadBuilder};
use proptest::prelude::*;

fn small_workload(seed: u64, nodes: usize) -> d2tree::workload::Workload {
    WorkloadBuilder::new(
        TraceProfile::ra()
            .with_nodes(nodes)
            .with_operations(nodes * 8),
    )
    .seed(seed)
    .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_scheme_covers_every_node(seed in 0u64..1000, m in 1usize..12) {
        let w = small_workload(seed, 400);
        let pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(m, 10.0);
        for mut scheme in extended_lineup(0.02, seed) {
            scheme.build(&w.tree, &pop, &cluster);
            prop_assert!(
                scheme.placement().is_complete(&w.tree),
                "{} incomplete at m={m} seed={seed}", scheme.name()
            );
        }
    }

    #[test]
    fn global_layer_is_closed_and_sized(seed in 0u64..1000, pct in 1u32..60) {
        let w = small_workload(seed, 500);
        let pop = w.popularity();
        let proportion = f64::from(pct) / 100.0;
        let (gl, implied) = split_to_proportion(&w.tree, &pop, |_| 0.0, proportion);
        prop_assert!(gl.is_closed_under_parents(&w.tree));
        let target = ((w.tree.node_count() as f64 * proportion).ceil() as usize).max(1);
        // The greedy split can only overshoot if the frontier empties.
        prop_assert!(gl.len() == target || gl.len() == w.tree.node_count());
        prop_assert_eq!(implied.global_nodes, gl.len());
    }

    #[test]
    fn subtrees_partition_local_layer_exactly(seed in 0u64..1000, pct in 1u32..30) {
        let w = small_workload(seed, 500);
        let pop = w.popularity();
        let (gl, _) = split_to_proportion(&w.tree, &pop, |_| 0.0, f64::from(pct) / 100.0);
        let subtrees = collect_subtrees(&w.tree, &gl, &pop);
        let covered: usize = subtrees.iter().map(|s| s.size).sum();
        prop_assert_eq!(covered + gl.len(), w.tree.node_count());
        // No subtree root is in the layer; every parent is.
        for s in &subtrees {
            prop_assert!(!gl.contains(s.root));
            prop_assert!(gl.contains(s.parent));
        }
    }

    #[test]
    fn d2tree_jumps_bounded_by_one(seed in 0u64..1000, m in 1usize..10) {
        let w = small_workload(seed, 300);
        let pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(m, 10.0);
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default().with_seed(seed));
        scheme.build(&w.tree, &pop, &cluster);
        for (id, _) in w.tree.nodes() {
            prop_assert!(scheme.jumps(&w.tree, id) <= 1, "Eq. 7 violated at {id}");
        }
    }

    #[test]
    fn routes_end_at_an_owning_server(seed in 0u64..1000, m in 2usize..10) {
        use rand::{rngs::StdRng, SeedableRng};
        let w = small_workload(seed, 300);
        let pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(m, 10.0);
        let mut rng = StdRng::seed_from_u64(seed);
        for mut scheme in extended_lineup(0.02, seed) {
            scheme.build(&w.tree, &pop, &cluster);
            for (id, _) in w.tree.nodes().take(40) {
                let plan = scheme.route(&w.tree, id, &mut rng);
                prop_assert!(!plan.visits.is_empty());
                let terminal = plan.terminal();
                prop_assert!(terminal.index() < m);
                match scheme.placement().assignment(id) {
                    d2tree::metrics::Assignment::Single(owner) => {
                        prop_assert_eq!(terminal, owner, "{} misroutes", scheme.name());
                    }
                    d2tree::metrics::Assignment::Replicated => {
                        prop_assert!(plan.target_replicated);
                    }
                    d2tree::metrics::Assignment::Unassigned => {
                        prop_assert!(false, "unassigned node in complete placement");
                    }
                }
            }
        }
    }

    #[test]
    fn rebalance_never_loses_or_duplicates_nodes(seed in 0u64..500, m in 2usize..8) {
        let w = small_workload(seed, 400);
        let mut pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(m, 10.0);
        for mut scheme in extended_lineup(0.02, seed) {
            scheme.build(&w.tree, &pop, &cluster);
            // Drift then rebalance twice.
            let hot = w.tree.nodes().map(|(id, _)| id).nth(seed as usize % 100).unwrap();
            pop.record(hot, 5_000.0);
            pop.rollup(&w.tree);
            for _ in 0..2 {
                let _ = scheme.rebalance(&w.tree, &pop, &cluster);
                prop_assert!(
                    scheme.placement().is_complete(&w.tree),
                    "{} broke completeness during rebalance", scheme.name()
                );
            }
        }
    }

    #[test]
    fn locality_and_balance_are_finite_and_positive(seed in 0u64..500, m in 2usize..10) {
        let w = small_workload(seed, 300);
        let pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(m, pop.sum_individual() / m as f64);
        for mut scheme in extended_lineup(0.02, seed) {
            scheme.build(&w.tree, &pop, &cluster);
            let loc = scheme.locality(&w.tree, &pop);
            prop_assert!(loc.locality > 0.0);
            prop_assert!(loc.weighted_jumps >= 0.0);
            let loads = scheme.loads(&w.tree, &pop);
            let b = d2tree::metrics::balance(&loads, &cluster);
            prop_assert!(b > 0.0);
        }
    }
}
