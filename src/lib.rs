//! # D2-Tree — distributed double-layer namespace partitioning
//!
//! Facade crate re-exporting the whole reproduction of *“D2-Tree: A
//! Distributed Double-Layer Namespace Tree Partition Scheme for Metadata
//! Management in Large-Scale Storage Systems”* (ICDCS 2018):
//!
//! * [`namespace`] — the arena-backed namespace-tree substrate.
//! * [`workload`] — synthetic DTR / LMBE / RA-style traces.
//! * [`metrics`] — the paper's locality / balance / update metrics, ECDFs
//!   and DKW bounds.
//! * [`core`] — the D2-Tree scheme itself (Tree-Splitting, mirror-division
//!   Subtree-Allocation, Dynamic-Adjustment).
//! * [`baselines`] — static/dynamic subtree partitioning, hash mapping,
//!   DROP and AngleCut.
//! * [`cluster`] — the MDS-cluster substrate (discrete-event simulator,
//!   live threaded runtime, monitor, lock service).
//! * [`store`] — per-MDS durability: a checksummed write-ahead log with
//!   group commit, snapshots and local crash recovery.
//! * [`telemetry`] — counters, gauges, latency histograms, the structured
//!   event journal and the Prometheus/JSON exporters.
//!
//! See the repository `README.md` for a quickstart and `EXPERIMENTS.md` for
//! the paper-vs-measured record of every table and figure.

pub use d2tree_baselines as baselines;
pub use d2tree_cluster as cluster;
pub use d2tree_core as core;
pub use d2tree_metrics as metrics;
pub use d2tree_namespace as namespace;
pub use d2tree_store as store;
pub use d2tree_telemetry as telemetry;
pub use d2tree_workload as workload;
