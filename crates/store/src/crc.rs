//! CRC-32 (IEEE 802.3 polynomial, the one `zlib` and the `crc32fast`
//! crate compute) — hand-rolled so the crate stays dependency-free.
//!
//! Every WAL frame and snapshot body is checksummed with this; a
//! mismatch is how recovery tells a torn or corrupted record from a
//! valid one, so the implementation is cross-checked against published
//! test vectors below.

/// Reflected polynomial of CRC-32/IEEE.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_always_change_the_checksum() {
        let data = b"d2tree write-ahead log record payload";
        let clean = crc32(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), clean, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
