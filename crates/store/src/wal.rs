//! The segmented write-ahead log.
//!
//! ## On-disk layout
//!
//! A log directory holds segment files named `wal-{first_lsn:016x}.log`
//! where `first_lsn` is the LSN of the segment's first frame. Each
//! segment starts with an 8-byte magic, then a sequence of frames:
//!
//! ```text
//! +----------------+----------------+------------------------------+
//! | len: u32 BE    | crc: u32 BE    | payload (len bytes)          |
//! +----------------+----------------+------------------------------+
//!                                    payload = lsn: u64 BE ++ record
//! ```
//!
//! `crc` is CRC-32/IEEE over the payload. LSNs are assigned densely
//! (one per record, starting at 0), and a segment's frames must carry
//! consecutive LSNs starting at its `first_lsn` — a CRC-valid frame
//! with the wrong LSN is corruption.
//!
//! ## Group commit
//!
//! [`WalWriter::append`] only buffers the encoded frame in memory;
//! nothing reaches the file until [`WalWriter::sync`], which writes the
//! buffer, fsyncs, and rotates segments. The caller (the store's group
//! commit policy) decides when to sync; a crash between appends and the
//! next sync loses exactly the unsynced suffix — which is what
//! [`WalWriter::simulate_crash`] models for chaos tests, including a
//! *torn* write of a prefix of the buffer.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::record::{Cursor, MdsRecord};
use crate::{StoreError, StoreResult};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"D2WAL001";

/// Bytes of frame header preceding the payload (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a frame payload; anything larger is malformed.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// File name of the segment whose first frame has LSN `first_lsn`.
#[must_use]
pub fn segment_file_name(first_lsn: u64) -> String {
    format!("wal-{first_lsn:016x}.log")
}

/// Parses a segment file name back into its `first_lsn`.
#[must_use]
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Encodes one frame (`len` + `crc` + payload) for LSN `lsn`.
#[must_use]
pub fn encode_frame(lsn: u64, record: &MdsRecord) -> Vec<u8> {
    let body = record.encode();
    let mut payload = Vec::with_capacity(8 + body.len());
    payload.extend_from_slice(&lsn.to_be_bytes());
    payload.extend_from_slice(&body);
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&crc32(&payload).to_be_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// A decoded frame: the record plus its log sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Log sequence number (dense, starting at 0).
    pub lsn: u64,
    /// The journaled record.
    pub record: MdsRecord,
}

/// Result of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Frames in the valid prefix, in LSN order.
    pub frames: Vec<Frame>,
    /// Byte length of the valid prefix (magic + whole frames).
    pub valid_len: u64,
    /// Bytes beyond the valid prefix (non-zero only for a torn tail
    /// in the last segment).
    pub torn_bytes: u64,
}

/// Why a frame failed to parse at some offset — used to decide between
/// "torn tail" and "corruption".
enum FrameIssue {
    /// Frame could not be parsed (short, bad length, CRC mismatch).
    Bad(String),
    /// Frame parsed and CRC-checked but its contents are invalid;
    /// this can never be produced by a torn write, so it is always
    /// corruption.
    Poisoned(StoreError),
}

/// Attempts to parse one frame at `pos`. `Ok(None)` means a clean end
/// of data at `pos`.
fn parse_frame_at(
    data: &[u8],
    pos: usize,
    expect_lsn: u64,
) -> Result<Option<(Frame, usize)>, FrameIssue> {
    let rest = &data[pos..];
    if rest.is_empty() {
        return Ok(None);
    }
    if rest.len() < FRAME_HEADER {
        return Err(FrameIssue::Bad(format!(
            "{} stray bytes, too short for a frame header",
            rest.len()
        )));
    }
    let mut c = Cursor::new(rest);
    let len = c.u32().expect("header length checked") as usize;
    let crc = c.u32().expect("header length checked");
    if len < 9 || len > MAX_PAYLOAD as usize {
        return Err(FrameIssue::Bad(format!("implausible frame length {len}")));
    }
    if rest.len() < FRAME_HEADER + len {
        return Err(FrameIssue::Bad(format!(
            "frame wants {len} payload bytes, only {} present",
            rest.len() - FRAME_HEADER
        )));
    }
    let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
    if crc32(payload) != crc {
        return Err(FrameIssue::Bad("payload CRC mismatch".to_string()));
    }
    // From here on the frame is CRC-valid: any problem is corruption,
    // not tearing.
    let lsn = u64::from_be_bytes(payload[..8].try_into().expect("9-byte minimum"));
    if lsn != expect_lsn {
        return Err(FrameIssue::Poisoned(StoreError::corrupt(format!(
            "frame at byte {pos} has lsn {lsn}, expected {expect_lsn}"
        ))));
    }
    let record = MdsRecord::decode(&payload[8..]).map_err(FrameIssue::Poisoned)?;
    Ok(Some((Frame { lsn, record }, FRAME_HEADER + len)))
}

/// True if any byte offset in `data[from..]` starts a CRC-valid frame.
/// Used after a bad frame: a valid frame *after* garbage proves the
/// garbage is mid-log corruption rather than a torn tail.
fn any_valid_frame_after(data: &[u8], from: usize) -> bool {
    let mut off = from;
    while off + FRAME_HEADER + 9 <= data.len() {
        let len =
            u32::from_be_bytes(data[off..off + 4].try_into().expect("bounds checked")) as usize;
        if (9..=MAX_PAYLOAD as usize).contains(&len) && off + FRAME_HEADER + len <= data.len() {
            let crc =
                u32::from_be_bytes(data[off + 4..off + 8].try_into().expect("bounds checked"));
            if crc32(&data[off + FRAME_HEADER..off + FRAME_HEADER + len]) == crc {
                return true;
            }
        }
        off += 1;
    }
    false
}

/// Scans one segment file.
///
/// `is_last` selects the tail policy: in the last segment a trailing
/// unparsable region with no valid frame after it is reported as a
/// torn tail ([`SegmentScan::torn_bytes`]); anywhere else, or when a
/// valid frame follows the bad bytes, the scan fails with
/// [`StoreError::Corrupt`].
///
/// # Errors
///
/// [`StoreError::Io`] on read failure, [`StoreError::Corrupt`] as
/// described above.
pub fn scan_segment(path: &Path, first_lsn: u64, is_last: bool) -> StoreResult<SegmentScan> {
    let data = fs::read(path)?;
    let name = path.display();
    if data.len() < SEGMENT_MAGIC.len() || &data[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        if is_last && !any_valid_frame_after(&data, 0) {
            // The magic itself was torn; nothing in this segment was
            // ever durable.
            return Ok(SegmentScan {
                frames: Vec::new(),
                valid_len: 0,
                torn_bytes: data.len() as u64,
            });
        }
        return Err(StoreError::corrupt(format!("{name}: bad segment magic")));
    }
    let mut frames = Vec::new();
    let mut pos = SEGMENT_MAGIC.len();
    let mut next_lsn = first_lsn;
    loop {
        match parse_frame_at(&data, pos, next_lsn) {
            Ok(None) => {
                return Ok(SegmentScan {
                    frames,
                    valid_len: pos as u64,
                    torn_bytes: 0,
                });
            }
            Ok(Some((frame, consumed))) => {
                frames.push(frame);
                pos += consumed;
                next_lsn += 1;
            }
            Err(FrameIssue::Poisoned(e)) => return Err(e),
            Err(FrameIssue::Bad(why)) => {
                if is_last && !any_valid_frame_after(&data, pos + 1) {
                    return Ok(SegmentScan {
                        frames,
                        valid_len: pos as u64,
                        torn_bytes: (data.len() - pos) as u64,
                    });
                }
                return Err(StoreError::corrupt(format!(
                    "{name}: bad frame at byte {pos} ({why}) with valid data after it"
                )));
            }
        }
    }
}

/// Lists segment files in a directory, sorted by `first_lsn`.
///
/// # Errors
///
/// [`StoreError::Io`] if the directory cannot be read.
pub fn list_segments(dir: &Path) -> StoreResult<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(first_lsn) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((first_lsn, entry.path()));
        }
    }
    out.sort_by_key(|&(lsn, _)| lsn);
    Ok(out)
}

fn sync_dir(dir: &Path) -> StoreResult<()> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Appender half of the WAL: buffers frames and makes them durable in
/// batches (group commit).
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    segment_bytes: u64,
    file: File,
    /// Durable bytes in the current segment (magic + synced frames).
    on_disk: u64,
    /// Encoded frames appended but not yet written+fsynced.
    pending: Vec<u8>,
    next_lsn: u64,
}

impl WalWriter {
    /// Opens a writer appending at `next_lsn`.
    ///
    /// When `last_segment` names an existing segment and its valid
    /// byte length, that file is truncated to the valid prefix (torn
    /// tails die here) and appended to; otherwise a fresh segment is
    /// created for `next_lsn`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn open(
        dir: &Path,
        segment_bytes: u64,
        last_segment: Option<(u64, u64)>,
        next_lsn: u64,
    ) -> StoreResult<Self> {
        match last_segment {
            Some((first_lsn, valid_len)) if valid_len >= SEGMENT_MAGIC.len() as u64 => {
                let path = dir.join(segment_file_name(first_lsn));
                let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
                file.set_len(valid_len)?;
                file.sync_all()?;
                // Truncation leaves the cursor at 0; appends must land
                // after the valid prefix, not over the magic.
                file.seek(SeekFrom::Start(valid_len))?;
                let mut w = WalWriter {
                    dir: dir.to_path_buf(),
                    segment_bytes,
                    file,
                    on_disk: valid_len,
                    pending: Vec::new(),
                    next_lsn,
                };
                // Rotate straight away if the recovered segment is
                // already over the size target.
                if w.on_disk >= w.segment_bytes {
                    w.rotate()?;
                }
                Ok(w)
            }
            other => {
                // No usable segment (fresh dir, or the last segment's
                // magic itself was torn): start a clean one.
                if let Some((first_lsn, _)) = other {
                    let stale = dir.join(segment_file_name(first_lsn));
                    if stale.exists() && first_lsn != next_lsn {
                        fs::remove_file(&stale)?;
                    }
                }
                let file = Self::create_segment(dir, next_lsn)?;
                Ok(WalWriter {
                    dir: dir.to_path_buf(),
                    segment_bytes,
                    file,
                    on_disk: SEGMENT_MAGIC.len() as u64,
                    pending: Vec::new(),
                    next_lsn,
                })
            }
        }
    }

    /// Creates `wal-{first_lsn}.log`, writes and fsyncs the magic, and
    /// fsyncs the directory so the file itself survives a crash.
    fn create_segment(dir: &Path, first_lsn: u64) -> StoreResult<File> {
        let path = dir.join(segment_file_name(first_lsn));
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(SEGMENT_MAGIC)?;
        file.sync_all()?;
        sync_dir(dir)?;
        Ok(file)
    }

    fn rotate(&mut self) -> StoreResult<()> {
        self.file = Self::create_segment(&self.dir, self.next_lsn)?;
        self.on_disk = SEGMENT_MAGIC.len() as u64;
        Ok(())
    }

    /// Buffers one record for the next group commit. Returns its LSN
    /// and the encoded frame size in bytes.
    pub fn append(&mut self, record: &MdsRecord) -> (u64, usize) {
        let lsn = self.next_lsn;
        let frame = encode_frame(lsn, record);
        let bytes = frame.len();
        self.pending.extend_from_slice(&frame);
        self.next_lsn += 1;
        (lsn, bytes)
    }

    /// Bytes buffered and not yet durable.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.pending.len()
    }

    /// LSN the next append will receive.
    #[must_use]
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Group commit: writes the buffered frames, fsyncs, and rotates
    /// to a new segment if the current one is over the size target.
    /// Returns the number of bytes made durable.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write/fsync failure.
    pub fn sync(&mut self) -> StoreResult<u64> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        let bytes = self.pending.len() as u64;
        self.file.write_all(&self.pending)?;
        self.file.sync_all()?;
        self.pending.clear();
        self.on_disk += bytes;
        if self.on_disk >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(bytes)
    }

    /// Crash model for chaos tests: of the unsynced buffer, only the
    /// first `keep` bytes reach the file (a torn write); the rest are
    /// lost, and the writer is consumed. `keep = 0` models losing the
    /// whole group-commit buffer; a mid-frame `keep` models a torn
    /// final record.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the torn prefix cannot be written.
    pub fn simulate_crash(mut self, keep: usize) -> StoreResult<()> {
        let keep = keep.min(self.pending.len());
        self.file.write_all(&self.pending[..keep])?;
        // Deliberately no fsync: the bytes are in the file image the
        // next open will read, exactly like a torn page after a real
        // crash.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AttrState;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "d2tree-wal-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn rec(i: u64) -> MdsRecord {
        MdsRecord::AttrCommit {
            node: i,
            gl: i.is_multiple_of(2),
            attr: AttrState {
                version: i + 1,
                size: i * 10,
                ..AttrState::default()
            },
        }
    }

    fn scan_all(dir: &Path) -> StoreResult<Vec<Frame>> {
        let segs = list_segments(dir)?;
        let mut frames = Vec::new();
        for (i, (first_lsn, path)) in segs.iter().enumerate() {
            let scan = scan_segment(path, *first_lsn, i + 1 == segs.len())?;
            frames.extend(scan.frames);
        }
        Ok(frames)
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(
            parse_segment_name(&segment_file_name(0xdead_beef)),
            Some(0xdead_beef)
        );
        assert_eq!(parse_segment_name("wal-zz.log"), None);
        assert_eq!(parse_segment_name("snap-0000000000000000.snap"), None);
    }

    #[test]
    fn append_sync_scan_round_trips_across_rotation() {
        let dir = tmp_dir("rotate");
        // Tiny segments force several rotations.
        let mut w = WalWriter::open(&dir, 128, None, 0).unwrap();
        for i in 0..40 {
            w.append(&rec(i));
            if i % 5 == 4 {
                w.sync().unwrap();
            }
        }
        w.sync().unwrap();
        assert!(list_segments(&dir).unwrap().len() > 1, "rotation happened");
        let frames = scan_all(&dir).unwrap();
        assert_eq!(frames.len(), 40);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.lsn, i as u64);
            assert_eq!(f.record, rec(i as u64));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsynced_appends_are_lost_and_torn_tail_is_truncated() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::open(&dir, 1 << 16, None, 0).unwrap();
        for i in 0..3 {
            w.append(&rec(i));
        }
        w.sync().unwrap();
        for i in 3..6 {
            w.append(&rec(i));
        }
        // Crash with 10 bytes of the unsynced frames torn into the file.
        w.simulate_crash(10).unwrap();

        let segs = list_segments(&dir).unwrap();
        let (first, path) = &segs[0];
        let scan = scan_segment(path, *first, true).unwrap();
        assert_eq!(scan.frames.len(), 3, "exact synced prefix");
        assert_eq!(scan.torn_bytes, 10);

        // Reopen for append after truncation, write more, and verify
        // the log is the synced prefix plus the new records.
        let mut w = WalWriter::open(&dir, 1 << 16, Some((*first, scan.valid_len)), 3).unwrap();
        w.append(&rec(3));
        w.sync().unwrap();
        let frames = scan_all(&dir).unwrap();
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[3].record, rec(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_bit_flip_is_corruption_not_truncation() {
        let dir = tmp_dir("flip");
        let mut w = WalWriter::open(&dir, 1 << 16, None, 0).unwrap();
        for i in 0..4 {
            w.append(&rec(i));
            w.sync().unwrap();
        }
        let (first, path) = list_segments(&dir).unwrap().remove(0);
        let mut data = fs::read(&path).unwrap();
        // Flip one bit inside the *first* frame's payload.
        let off = SEGMENT_MAGIC.len() + FRAME_HEADER + 4;
        data[off] ^= 0x40;
        fs::write(&path, &data).unwrap();
        let err = scan_segment(&path, first, true).unwrap_err();
        assert!(err.is_corrupt(), "later valid frames forbid truncation");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_lsn_in_valid_frame_is_corruption() {
        let dir = tmp_dir("lsn");
        let mut w = WalWriter::open(&dir, 1 << 16, None, 0).unwrap();
        w.append(&rec(0));
        w.sync().unwrap();
        let (_, path) = list_segments(&dir).unwrap().remove(0);
        // Scanning with the wrong expected first LSN must fail loudly.
        let err = scan_segment(&path, 7, true).unwrap_err();
        assert!(err.is_corrupt());
        fs::remove_dir_all(&dir).unwrap();
    }
}
