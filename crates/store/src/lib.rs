//! Durable MDS state for the D2-Tree reproduction.
//!
//! The paper's dynamic-adjustment and failover story (Sec. IV) assumes
//! each MDS's metadata — its local-layer subtrees, decayed popularity
//! counters, attribute versions, and GL replica version — survives a
//! crash. This crate provides that durability:
//!
//! * [`MdsRecord`] / [`MdsState`] — the journaled events and the state
//!   they replay into, with a hand-rolled big-endian codec (the
//!   workspace's serde shim derives are no-ops, so nothing here relies
//!   on derived serialization).
//! * [`wal`] — a length-prefixed, CRC32-checksummed, segmented
//!   write-ahead log with group commit: appends buffer in memory and
//!   become durable at the next [`MdsStore::sync`], batching fsyncs.
//! * [`snapshot`] — periodic whole-state snapshots written
//!   tmp+rename+dir-fsync so a crash never leaves a torn snapshot
//!   visible; covered WAL segments are pruned afterwards.
//! * [`MdsStore`] — ties the two together: `open` recovers
//!   snapshot+tail (truncating a torn final record), `append` journals
//!   and applies, `verify`/`inspect`/`compact` back the
//!   `d2tree store` CLI.
//!
//! ## Failure policy
//!
//! Recovery either replays an exact prefix of what was appended, or
//! fails loudly — never garbage:
//!
//! * a bad frame at the tail of the **last** segment with no valid
//!   frame after it is a *torn tail*: truncated, counted in
//!   [`RecoveryInfo::torn_bytes`], and the log resumes from the valid
//!   prefix;
//! * a bad frame **followed by** a CRC-valid frame (a mid-log bit
//!   flip), or any bad frame in a non-last segment, is *corruption*:
//!   [`StoreError::Corrupt`] — silently truncating would drop records
//!   that were acknowledged as durable.

#![warn(missing_docs)]

use std::fmt;

mod crc;
mod record;
pub mod snapshot;
mod store;
pub mod wal;

pub use crc::crc32;
pub use record::{AttrState, MdsRecord, MdsState};
pub use store::{compact, inspect, verify};
pub use store::{InspectReport, MdsStore, RecoveryInfo, StoreConfig, VerifyReport};

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// On-disk data is malformed in a way that is *not* a torn tail:
    /// replaying further could invent or drop acknowledged records.
    Corrupt(String),
}

impl StoreError {
    pub(crate) fn corrupt(msg: impl Into<String>) -> Self {
        StoreError::Corrupt(msg.into())
    }

    /// True when the error is data corruption (vs an I/O failure).
    #[must_use]
    pub fn is_corrupt(&self) -> bool {
        matches!(self, StoreError::Corrupt(_))
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Shorthand result type for store operations.
pub type StoreResult<T> = Result<T, StoreError>;
