//! The logical records an MDS journals, their binary codec, and the
//! [`MdsState`] they replay into.
//!
//! Identifiers are raw `u64`/`u16` (node arena indices and MDS ids) so
//! this crate stays free of workspace dependencies, mirroring the
//! telemetry journal's convention; the cluster maps `NodeId`/`MdsId`
//! at the boundary.

use std::collections::{BTreeMap, BTreeSet};

use crate::{StoreError, StoreResult};

/// A `stat`-like attribute payload as journaled (field-for-field the
/// cluster's `FileAttr` plus its version).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttrState {
    /// Mutation version; replicas and recovery converge on the highest.
    pub version: u64,
    /// Permission bits.
    pub mode: u16,
    /// Owning user id.
    pub uid: u32,
    /// Owning group id.
    pub gid: u32,
    /// Logical size in bytes.
    pub size: u64,
    /// Modification time, seconds since the epoch.
    pub mtime: u64,
}

/// One durable event in an MDS's life, as appended to the WAL.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MdsRecord {
    /// An attribute mutation committed on (or propagated to) this MDS.
    AttrCommit {
        /// Target node (arena index).
        node: u64,
        /// Whether the node is global-layer replicated (the commit then
        /// also advances the MDS's GL replica version).
        gl: bool,
        /// The committed record.
        attr: AttrState,
    },
    /// A local-layer subtree entered or left this MDS's ownership
    /// (initial placement, rebalance, fail-over, rejoin claim).
    Ownership {
        /// Subtree root (arena index).
        root: u64,
        /// Whether the subtree was acquired (`true`) or shed (`false`).
        acquired: bool,
    },
    /// A global-layer recut pass (promotion/demotion) this MDS applied.
    GlRecut {
        /// GL generation after the recut.
        version: u64,
        /// Nodes promoted into the global layer.
        promoted: u64,
        /// Nodes demoted out of it.
        demoted: u64,
    },
    /// New absolute value of a subtree's decayed access counter.
    Popularity {
        /// Subtree root (arena index).
        root: u64,
        /// The counter, as `f64::to_bits` (exact round-trip).
        bits: u64,
    },
    /// One replicated control-plane log event (term vote, log entry or
    /// conflict truncation). Opaque to [`MdsState::apply`]: consensus
    /// replicas keep their own state machine and reuse the WAL purely
    /// for durable, CRC-checked, torn-tail-tolerant framing.
    Consensus {
        /// Term the event belongs to.
        term: u64,
        /// Log index (entries) or auxiliary slot (metadata events).
        index: u64,
        /// Consensus-level opcode (the `cluster` crate's vocabulary).
        op: u8,
        /// First opcode-specific operand.
        a: u64,
        /// Second opcode-specific operand.
        b: u64,
        /// Third opcode-specific operand.
        c: u64,
    },
}

const TAG_ATTR: u8 = 1;
const TAG_OWNERSHIP: u8 = 2;
const TAG_GL_RECUT: u8 = 3;
const TAG_POPULARITY: u8 = 4;
const TAG_CONSENSUS: u8 = 5;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Big-endian read cursor that fails loudly instead of panicking.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> StoreResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::corrupt(format!(
                "record truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> StoreResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> StoreResult<u16> {
        Ok(u16::from_be_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    pub(crate) fn u32(&mut self) -> StoreResult<u32> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> StoreResult<u64> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

fn put_attr(out: &mut Vec<u8>, attr: &AttrState) {
    put_u64(out, attr.version);
    put_u16(out, attr.mode);
    put_u32(out, attr.uid);
    put_u32(out, attr.gid);
    put_u64(out, attr.size);
    put_u64(out, attr.mtime);
}

fn get_attr(c: &mut Cursor<'_>) -> StoreResult<AttrState> {
    Ok(AttrState {
        version: c.u64()?,
        mode: c.u16()?,
        uid: c.u32()?,
        gid: c.u32()?,
        size: c.u64()?,
        mtime: c.u64()?,
    })
}

impl MdsRecord {
    /// Serialises the record (tag byte + big-endian fields).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        match self {
            MdsRecord::AttrCommit { node, gl, attr } => {
                out.push(TAG_ATTR);
                put_u64(&mut out, *node);
                out.push(u8::from(*gl));
                put_attr(&mut out, attr);
            }
            MdsRecord::Ownership { root, acquired } => {
                out.push(TAG_OWNERSHIP);
                put_u64(&mut out, *root);
                out.push(u8::from(*acquired));
            }
            MdsRecord::GlRecut {
                version,
                promoted,
                demoted,
            } => {
                out.push(TAG_GL_RECUT);
                put_u64(&mut out, *version);
                put_u64(&mut out, *promoted);
                put_u64(&mut out, *demoted);
            }
            MdsRecord::Popularity { root, bits } => {
                out.push(TAG_POPULARITY);
                put_u64(&mut out, *root);
                put_u64(&mut out, *bits);
            }
            MdsRecord::Consensus {
                term,
                index,
                op,
                a,
                b,
                c,
            } => {
                out.push(TAG_CONSENSUS);
                put_u64(&mut out, *term);
                put_u64(&mut out, *index);
                out.push(*op);
                put_u64(&mut out, *a);
                put_u64(&mut out, *b);
                put_u64(&mut out, *c);
            }
        }
        out
    }

    /// Deserialises a record, failing loudly on unknown tags, short
    /// buffers or trailing garbage — a CRC-valid frame that does not
    /// decode is corruption, never silently skipped.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on any malformation.
    pub fn decode(buf: &[u8]) -> StoreResult<Self> {
        let mut c = Cursor::new(buf);
        let record = match c.u8()? {
            TAG_ATTR => MdsRecord::AttrCommit {
                node: c.u64()?,
                gl: c.u8()? != 0,
                attr: get_attr(&mut c)?,
            },
            TAG_OWNERSHIP => MdsRecord::Ownership {
                root: c.u64()?,
                acquired: c.u8()? != 0,
            },
            TAG_GL_RECUT => MdsRecord::GlRecut {
                version: c.u64()?,
                promoted: c.u64()?,
                demoted: c.u64()?,
            },
            TAG_POPULARITY => MdsRecord::Popularity {
                root: c.u64()?,
                bits: c.u64()?,
            },
            TAG_CONSENSUS => MdsRecord::Consensus {
                term: c.u64()?,
                index: c.u64()?,
                op: c.u8()?,
                a: c.u64()?,
                b: c.u64()?,
                c: c.u64()?,
            },
            tag => {
                return Err(StoreError::corrupt(format!("unknown record tag {tag}")));
            }
        };
        if c.remaining() != 0 {
            return Err(StoreError::corrupt(format!(
                "{} trailing bytes after record",
                c.remaining()
            )));
        }
        Ok(record)
    }

    /// Short label used by `inspect` and the event journal.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            MdsRecord::AttrCommit { .. } => "attr_commit",
            MdsRecord::Ownership { .. } => "ownership",
            MdsRecord::GlRecut { .. } => "gl_recut",
            MdsRecord::Popularity { .. } => "popularity",
            MdsRecord::Consensus { .. } => "consensus",
        }
    }
}

/// The durable state of one MDS: what a snapshot captures and what
/// recovery rebuilds by replaying snapshot + WAL tail.
///
/// `PartialEq` is derived so chaos tests can assert recovered state is
/// *bit-identical* to the journaled pre-crash state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MdsState {
    /// The GL replica version: highest global-layer commit or recut
    /// generation this MDS has applied.
    pub gl_version: u64,
    /// Local-layer subtree roots currently owned.
    pub owned: BTreeSet<u64>,
    /// Versioned attributes, sparse (only nodes ever mutated).
    pub attrs: BTreeMap<u64, AttrState>,
    /// Decayed access counters (`f64::to_bits`), sparse.
    pub popularity: BTreeMap<u64, u64>,
}

impl MdsState {
    /// Replays one record into the state. Deterministic and idempotent
    /// for version-gated records, so replaying a longer log prefix
    /// always dominates a shorter one.
    pub fn apply(&mut self, record: &MdsRecord) {
        match record {
            MdsRecord::AttrCommit { node, gl, attr } => {
                let slot = self.attrs.entry(*node).or_default();
                if attr.version > slot.version {
                    *slot = *attr;
                }
                if *gl {
                    self.gl_version = self.gl_version.max(attr.version);
                }
            }
            MdsRecord::Ownership { root, acquired } => {
                if *acquired {
                    self.owned.insert(*root);
                } else {
                    self.owned.remove(root);
                }
            }
            MdsRecord::GlRecut { version, .. } => {
                self.gl_version = self.gl_version.max(*version);
            }
            MdsRecord::Popularity { root, bits } => {
                self.popularity.insert(*root, *bits);
            }
            // Consensus events carry control-plane log payloads, not MDS
            // metadata; replicas replay them through their own state
            // machine (`d2tree-cluster`'s `consensus` module).
            MdsRecord::Consensus { .. } => {}
        }
    }

    /// Serialises the state for a snapshot body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            16 + self.owned.len() * 8 + self.attrs.len() * 42 + self.popularity.len() * 16,
        );
        put_u64(&mut out, self.gl_version);
        put_u32(&mut out, self.owned.len() as u32);
        for &root in &self.owned {
            put_u64(&mut out, root);
        }
        put_u32(&mut out, self.attrs.len() as u32);
        for (&node, attr) in &self.attrs {
            put_u64(&mut out, node);
            put_attr(&mut out, attr);
        }
        put_u32(&mut out, self.popularity.len() as u32);
        for (&root, &bits) in &self.popularity {
            put_u64(&mut out, root);
            put_u64(&mut out, bits);
        }
        out
    }

    /// Deserialises a snapshot body.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on truncation or trailing garbage.
    pub fn decode(buf: &[u8]) -> StoreResult<Self> {
        let mut c = Cursor::new(buf);
        let gl_version = c.u64()?;
        let mut owned = BTreeSet::new();
        for _ in 0..c.u32()? {
            owned.insert(c.u64()?);
        }
        let mut attrs = BTreeMap::new();
        for _ in 0..c.u32()? {
            let node = c.u64()?;
            attrs.insert(node, get_attr(&mut c)?);
        }
        let mut popularity = BTreeMap::new();
        for _ in 0..c.u32()? {
            let root = c.u64()?;
            popularity.insert(root, c.u64()?);
        }
        if c.remaining() != 0 {
            return Err(StoreError::corrupt(format!(
                "{} trailing bytes after snapshot state",
                c.remaining()
            )));
        }
        Ok(MdsState {
            gl_version,
            owned,
            attrs,
            popularity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<MdsRecord> {
        vec![
            MdsRecord::Ownership {
                root: 17,
                acquired: true,
            },
            MdsRecord::AttrCommit {
                node: 3,
                gl: true,
                attr: AttrState {
                    version: 5,
                    mode: 0o755,
                    uid: 1000,
                    gid: 100,
                    size: 4096,
                    mtime: 1_700_000_000,
                },
            },
            MdsRecord::GlRecut {
                version: 9,
                promoted: 2,
                demoted: 1,
            },
            MdsRecord::Popularity {
                root: 17,
                bits: 3.5f64.to_bits(),
            },
            MdsRecord::Ownership {
                root: 17,
                acquired: false,
            },
            MdsRecord::Consensus {
                term: 3,
                index: 12,
                op: 2,
                a: 99,
                b: 7,
                c: u64::MAX,
            },
        ]
    }

    #[test]
    fn records_round_trip() {
        for r in sample_records() {
            let bytes = r.encode();
            assert_eq!(MdsRecord::decode(&bytes).unwrap(), r, "{}", r.label());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(MdsRecord::decode(&[]).is_err());
        assert!(MdsRecord::decode(&[99, 0, 0]).is_err(), "unknown tag");
        let mut ok = MdsRecord::Ownership {
            root: 1,
            acquired: true,
        }
        .encode();
        ok.push(0); // trailing byte
        assert!(MdsRecord::decode(&ok).is_err(), "trailing bytes");
        assert!(MdsRecord::decode(&ok[..ok.len() - 2]).is_err(), "truncated");
    }

    #[test]
    fn state_replay_is_order_sensitive_and_version_gated() {
        let mut s = MdsState::default();
        for r in sample_records() {
            s.apply(&r);
        }
        assert!(s.owned.is_empty(), "acquired then shed");
        assert_eq!(s.attrs.get(&3).unwrap().version, 5);
        assert_eq!(s.gl_version, 9, "recut generation dominates");
        assert_eq!(s.popularity.get(&17), Some(&3.5f64.to_bits()));

        // An older attr commit never overwrites a newer one.
        s.apply(&MdsRecord::AttrCommit {
            node: 3,
            gl: false,
            attr: AttrState {
                version: 2,
                size: 1,
                ..AttrState::default()
            },
        });
        assert_eq!(s.attrs.get(&3).unwrap().size, 4096);
    }

    #[test]
    fn state_round_trips_through_snapshot_encoding() {
        let mut s = MdsState::default();
        for r in sample_records() {
            s.apply(&r);
        }
        s.apply(&MdsRecord::Ownership {
            root: 40,
            acquired: true,
        });
        let bytes = s.encode();
        assert_eq!(MdsState::decode(&bytes).unwrap(), s);
        // Truncation and trailing garbage fail loudly.
        assert!(MdsState::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes;
        extra.push(7);
        assert!(MdsState::decode(&extra).is_err());
    }
}
