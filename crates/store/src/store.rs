//! [`MdsStore`]: the durable state machine one MDS owns — WAL +
//! snapshots + group-commit policy + recovery.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use d2tree_telemetry::trace::{span_names, ArgKey, Span, Tracer};
use d2tree_telemetry::{names, Counter, Histogram, MetricKey, Registry};

use crate::record::{MdsRecord, MdsState};
use crate::snapshot::{list_snapshots, read_snapshot, remove_stale_tmp, write_snapshot};
use crate::wal::{list_segments, scan_segment, WalWriter};
use crate::{StoreError, StoreResult};

/// Tuning knobs for one MDS store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Rotate to a new WAL segment once the current one reaches this
    /// many bytes.
    pub segment_bytes: u64,
    /// Group commit: fsync at most this often under steady appends.
    /// Appends within the window batch into one fsync.
    pub flush_interval_ms: u64,
    /// Group commit: fsync early once this many bytes are buffered,
    /// bounding the data at risk between fsyncs.
    pub group_buffer_bytes: usize,
    /// Take a snapshot (and prune covered segments) every this many
    /// appended records.
    pub snapshot_every: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_bytes: 64 * 1024,
            flush_interval_ms: 5,
            group_buffer_bytes: 64 * 1024,
            snapshot_every: 1024,
        }
    }
}

impl StoreConfig {
    /// A configuration that never syncs or snapshots on its own:
    /// every fsync is an explicit [`MdsStore::sync`] call. Chaos tests
    /// use this so the durability boundary is deterministic.
    #[must_use]
    pub fn manual() -> Self {
        StoreConfig {
            segment_bytes: 64 * 1024,
            flush_interval_ms: u64::MAX,
            group_buffer_bytes: usize::MAX,
            snapshot_every: u64::MAX,
        }
    }
}

/// What recovery found and did while opening a store.
#[derive(Debug, Clone)]
pub struct RecoveryInfo {
    /// LSN covered by the snapshot recovery started from (0 = none).
    pub snapshot_lsn: u64,
    /// WAL records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// Bytes truncated from a torn tail (0 on a clean open).
    pub torn_bytes: u64,
    /// WAL segment files present at open.
    pub segments: usize,
    /// LSN the next append will receive.
    pub next_lsn: u64,
    /// Wall-clock time recovery took.
    pub duration: Duration,
}

/// Everything a full read-only scan of a store directory learns.
struct ScanOutcome {
    state: MdsState,
    snapshot_lsn: u64,
    records_replayed: u64,
    torn_bytes: u64,
    /// `(first_lsn, path, frames, valid_len)` per segment, LSN order.
    segments: Vec<(u64, PathBuf, u64, u64)>,
    next_lsn: u64,
    record_counts: BTreeMap<&'static str, u64>,
}

/// Replays a store directory without mutating it: newest snapshot,
/// then every WAL segment in LSN order, enforcing LSN continuity.
fn scan_store(dir: &Path) -> StoreResult<ScanOutcome> {
    let snapshots = list_snapshots(dir)?;
    let (snapshot_lsn, mut state) = match snapshots.last() {
        Some((lsn, path)) => (*lsn, read_snapshot(path, *lsn)?),
        None => (0, MdsState::default()),
    };

    let segments = list_segments(dir)?;
    let mut next_lsn = snapshot_lsn;
    let mut records_replayed = 0u64;
    let mut torn_bytes = 0u64;
    let mut record_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut scanned = Vec::with_capacity(segments.len());

    for (i, (first_lsn, path)) in segments.iter().enumerate() {
        let is_last = i + 1 == segments.len();
        if i == 0 && *first_lsn > snapshot_lsn {
            return Err(StoreError::corrupt(format!(
                "WAL starts at lsn {first_lsn} but snapshot only covers lsn {snapshot_lsn}"
            )));
        }
        let scan = scan_segment(path, *first_lsn, is_last)?;
        if let Some((prev_first, _, prev_frames, _)) = scanned.last() {
            let prev_end: u64 = prev_first + prev_frames;
            if *first_lsn != prev_end {
                return Err(StoreError::corrupt(format!(
                    "segment gap: previous segment ends at lsn {prev_end}, next starts at {first_lsn}"
                )));
            }
        }
        for frame in &scan.frames {
            if frame.lsn >= snapshot_lsn {
                state.apply(&frame.record);
                records_replayed += 1;
                *record_counts.entry(frame.record.label()).or_insert(0) += 1;
            }
            next_lsn = frame.lsn + 1;
        }
        if scan.frames.is_empty() && is_last {
            // A fresh (or fully torn) last segment: appends resume at
            // its nominal first LSN.
            next_lsn = next_lsn.max(*first_lsn);
        }
        torn_bytes = scan.torn_bytes;
        scanned.push((
            *first_lsn,
            path.clone(),
            scan.frames.len() as u64,
            scan.valid_len,
        ));
    }

    if next_lsn < snapshot_lsn {
        return Err(StoreError::corrupt(format!(
            "snapshot covers lsn {snapshot_lsn} but the WAL ends at lsn {next_lsn}"
        )));
    }

    Ok(ScanOutcome {
        state,
        snapshot_lsn,
        records_replayed,
        torn_bytes,
        segments: scanned,
        next_lsn,
        record_counts,
    })
}

/// Cached metric handles; present only when a registry is attached.
struct StoreTelemetry {
    append_us: Arc<Histogram>,
    fsync_us: Arc<Histogram>,
    bytes_total: Arc<Counter>,
    records_total: Arc<Counter>,
    snapshots_total: Arc<Counter>,
}

/// The durable state of one MDS: a replayed [`MdsState`] kept in
/// lock-step with a write-ahead log and periodic snapshots.
pub struct MdsStore {
    dir: PathBuf,
    config: StoreConfig,
    state: MdsState,
    wal: WalWriter,
    records_since_snapshot: u64,
    last_sync: Instant,
    telemetry: Option<StoreTelemetry>,
    /// Tracer plus the owning MDS id for span attribution; `None` keeps
    /// the WAL hot path span-free.
    tracer: Option<(Arc<Tracer>, u16)>,
}

impl std::fmt::Debug for MdsStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MdsStore")
            .field("dir", &self.dir)
            .field("next_lsn", &self.wal.next_lsn())
            .field("pending_bytes", &self.wal.pending_bytes())
            .finish_non_exhaustive()
    }
}

impl MdsStore {
    /// Opens (creating if absent) the store in `dir`, recovering
    /// snapshot + WAL tail and truncating a torn final record.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure; [`StoreError::Corrupt`]
    /// if the log is damaged anywhere but a torn tail.
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> StoreResult<(Self, RecoveryInfo)> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let t0 = Instant::now();
        remove_stale_tmp(dir)?;
        let outcome = scan_store(dir)?;
        let last_segment = outcome
            .segments
            .last()
            .map(|&(first_lsn, _, _, valid_len)| (first_lsn, valid_len));
        let wal = WalWriter::open(dir, config.segment_bytes, last_segment, outcome.next_lsn)?;
        let info = RecoveryInfo {
            snapshot_lsn: outcome.snapshot_lsn,
            records_replayed: outcome.records_replayed,
            torn_bytes: outcome.torn_bytes,
            segments: outcome.segments.len(),
            next_lsn: outcome.next_lsn,
            duration: t0.elapsed(),
        };
        let store = MdsStore {
            dir: dir.to_path_buf(),
            config,
            state: outcome.state,
            wal,
            records_since_snapshot: 0,
            last_sync: Instant::now(),
            telemetry: None,
            tracer: None,
        };
        Ok((store, info))
    }

    /// Attaches a metric registry; WAL and snapshot activity is then
    /// recorded under this MDS's per-id keys.
    #[must_use]
    pub fn with_registry(mut self, registry: &Arc<Registry>, mds: u16) -> Self {
        self.telemetry = Some(StoreTelemetry {
            append_us: registry.histogram(MetricKey::mds(names::WAL_APPEND_US, mds)),
            fsync_us: registry.histogram(MetricKey::mds(names::WAL_FSYNC_US, mds)),
            bytes_total: registry.counter(MetricKey::mds(names::WAL_BYTES_TOTAL, mds)),
            records_total: registry.counter(MetricKey::mds(names::WAL_RECORDS_TOTAL, mds)),
            snapshots_total: registry.counter(MetricKey::mds(names::SNAPSHOTS_TOTAL, mds)),
        });
        self
    }

    /// Attaches a tracer; sampled WAL appends and fsyncs then record
    /// `wal_append` / `wal_fsync` spans attributed to this MDS.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>, mds: u16) -> Self {
        self.tracer = Some((tracer, mds));
        self
    }

    /// Journals one record and applies it to the in-memory state.
    /// Durability follows the group-commit policy: the record is
    /// buffered and becomes durable at the next sync (time- or
    /// size-triggered here, or an explicit [`MdsStore::sync`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if a policy-triggered sync or snapshot fails.
    pub fn append(&mut self, record: MdsRecord) -> StoreResult<()> {
        self.append_inner(record, true)
    }

    /// [`append`](Self::append) minus the time/size sync policy: the
    /// record is buffered and applied, but no sync happens here even if
    /// the group buffer is full or the flush interval has elapsed. The
    /// caller owns durability and must call [`sync`](Self::sync) (one
    /// group-committed fsync for the whole batch) before acknowledging —
    /// this is the batch-serving path's building block. The snapshot
    /// trigger still fires (a snapshot syncs internally first).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if a triggered snapshot fails.
    pub fn append_deferred(&mut self, record: MdsRecord) -> StoreResult<()> {
        self.append_inner(record, false)
    }

    fn append_inner(&mut self, record: MdsRecord, policy_sync: bool) -> StoreResult<()> {
        let t0 = Instant::now();
        let (_, bytes) = self.wal.append(&record);
        self.state.apply(&record);
        self.records_since_snapshot += 1;
        if let Some(t) = &self.telemetry {
            t.append_us.record(t0.elapsed().as_micros() as u64);
            t.bytes_total.add(bytes as u64);
            t.records_total.inc();
        }
        if let Some((tr, mds)) = &self.tracer {
            if let Some(ctx) = tr.begin() {
                let dur = t0.elapsed().as_micros() as u64;
                let end = tr.now_us();
                tr.record(
                    Span::root(ctx, span_names::WAL_APPEND, end.saturating_sub(dur), dur)
                        .on_mds(*mds)
                        .with_arg(ArgKey::Bytes, bytes as u64),
                );
            }
        }
        if policy_sync
            && (self.wal.pending_bytes() >= self.config.group_buffer_bytes
                || u128::from(self.config.flush_interval_ms)
                    <= self.last_sync.elapsed().as_millis())
        {
            self.sync()?;
        }
        if self.records_since_snapshot >= self.config.snapshot_every {
            self.snapshot()?;
        }
        Ok(())
    }

    /// Group commit: makes every buffered append durable with one
    /// fsync.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write or fsync failure.
    pub fn sync(&mut self) -> StoreResult<()> {
        let t0 = Instant::now();
        let bytes = self.wal.sync()?;
        self.last_sync = Instant::now();
        if bytes > 0 {
            if let Some(t) = &self.telemetry {
                t.fsync_us.record(t0.elapsed().as_micros() as u64);
            }
            if let Some((tr, mds)) = &self.tracer {
                if let Some(ctx) = tr.begin() {
                    let dur = t0.elapsed().as_micros() as u64;
                    let end = tr.now_us();
                    tr.record(
                        Span::root(ctx, span_names::WAL_FSYNC, end.saturating_sub(dur), dur)
                            .on_mds(*mds)
                            .with_arg(ArgKey::Bytes, bytes),
                    );
                }
            }
        }
        Ok(())
    }

    /// Syncs, writes a snapshot of the current state, prunes WAL
    /// segments and older snapshots the new snapshot covers.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn snapshot(&mut self) -> StoreResult<()> {
        self.sync()?;
        let lsn = self.wal.next_lsn();
        write_snapshot(&self.dir, lsn, &self.state)?;
        self.records_since_snapshot = 0;
        if let Some(t) = &self.telemetry {
            t.snapshots_total.inc();
        }
        // Drop snapshots older than the one just written.
        for (old_lsn, path) in list_snapshots(&self.dir)? {
            if old_lsn < lsn {
                fs::remove_file(path)?;
            }
        }
        // Drop segments fully covered by the snapshot: a segment is
        // removable when the *next* segment starts at or below the
        // snapshot LSN (so every frame in it is below too). The live
        // tail segment has no successor and is never removed.
        let segments = list_segments(&self.dir)?;
        for pair in segments.windows(2) {
            if pair[1].0 <= lsn {
                fs::remove_file(&pair[0].1)?;
            }
        }
        Ok(())
    }

    /// The replayed, up-to-date state (includes unsynced appends).
    #[must_use]
    pub fn state(&self) -> &MdsState {
        &self.state
    }

    /// LSN the next append will receive.
    #[must_use]
    pub fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// Bytes appended but not yet durable.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.wal.pending_bytes()
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration this store was opened with.
    #[must_use]
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Crash model for chaos tests: consumes the store, tearing only
    /// the first `keep` bytes of the unsynced buffer into the file.
    /// See [`WalWriter::simulate_crash`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the torn prefix cannot be written.
    pub fn simulate_crash(self, keep: usize) -> StoreResult<()> {
        self.wal.simulate_crash(keep)
    }
}

/// Report from [`verify`]: what a recovery of this directory would do.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// LSN covered by the newest snapshot (0 = none).
    pub snapshot_lsn: u64,
    /// WAL records a recovery would replay on top of the snapshot.
    pub records: u64,
    /// Trailing bytes a recovery would truncate as a torn tail.
    pub torn_bytes: u64,
    /// WAL segment files present.
    pub segments: usize,
    /// LSN the next append would receive.
    pub next_lsn: u64,
}

/// Read-only integrity check of a store directory: replays exactly
/// like recovery would, but never truncates or writes.
///
/// # Errors
///
/// [`StoreError::Corrupt`] if the directory would not recover cleanly
/// (anything worse than a torn tail); [`StoreError::Io`] on read
/// failure.
pub fn verify(dir: impl AsRef<Path>) -> StoreResult<VerifyReport> {
    let outcome = scan_store(dir.as_ref())?;
    Ok(VerifyReport {
        snapshot_lsn: outcome.snapshot_lsn,
        records: outcome.records_replayed,
        torn_bytes: outcome.torn_bytes,
        segments: outcome.segments.len(),
        next_lsn: outcome.next_lsn,
    })
}

/// One WAL segment as seen by [`inspect`].
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// LSN of the segment's first frame.
    pub first_lsn: u64,
    /// Valid frames in the segment.
    pub frames: u64,
    /// Bytes in the valid prefix (magic + whole frames).
    pub valid_bytes: u64,
}

/// Report from [`inspect`]: layout plus replayed-state summary.
#[derive(Debug, Clone)]
pub struct InspectReport {
    /// LSN covered by the newest snapshot (0 = none).
    pub snapshot_lsn: u64,
    /// LSN the next append would receive.
    pub next_lsn: u64,
    /// Trailing torn bytes in the last segment.
    pub torn_bytes: u64,
    /// Per-segment layout, in LSN order.
    pub segments: Vec<SegmentInfo>,
    /// Replayed record counts by type label.
    pub record_counts: Vec<(String, u64)>,
    /// GL replica version of the replayed state.
    pub gl_version: u64,
    /// Owned subtree roots in the replayed state.
    pub owned: usize,
    /// Attribute entries in the replayed state.
    pub attrs: usize,
    /// Popularity counters in the replayed state.
    pub popularity: usize,
}

/// Read-only layout and content summary of a store directory.
///
/// # Errors
///
/// Same failure modes as [`verify`].
pub fn inspect(dir: impl AsRef<Path>) -> StoreResult<InspectReport> {
    let outcome = scan_store(dir.as_ref())?;
    Ok(InspectReport {
        snapshot_lsn: outcome.snapshot_lsn,
        next_lsn: outcome.next_lsn,
        torn_bytes: outcome.torn_bytes,
        segments: outcome
            .segments
            .iter()
            .map(|&(first_lsn, _, frames, valid_bytes)| SegmentInfo {
                first_lsn,
                frames,
                valid_bytes,
            })
            .collect(),
        record_counts: outcome
            .record_counts
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect(),
        gl_version: outcome.state.gl_version,
        owned: outcome.state.owned.len(),
        attrs: outcome.state.attrs.len(),
        popularity: outcome.state.popularity.len(),
    })
}

/// Recovers the store, snapshots its current state, and prunes every
/// covered WAL segment and older snapshot. Returns the covering
/// snapshot LSN and how many segment files were removed.
///
/// # Errors
///
/// Same failure modes as [`MdsStore::open`] plus snapshot I/O.
pub fn compact(dir: impl AsRef<Path>, config: StoreConfig) -> StoreResult<(u64, usize)> {
    let dir = dir.as_ref();
    let before = list_segments(dir)?.len();
    let (mut store, _) = MdsStore::open(dir, config)?;
    store.snapshot()?;
    let lsn = store.next_lsn();
    drop(store);
    let after = list_segments(dir)?.len();
    Ok((lsn, before.saturating_sub(after)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AttrState;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "d2tree-store-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn rec(i: u64) -> MdsRecord {
        match i % 4 {
            0 => MdsRecord::Ownership {
                root: i / 4,
                acquired: true,
            },
            1 => MdsRecord::AttrCommit {
                node: i,
                gl: i % 8 == 1,
                attr: AttrState {
                    version: i,
                    size: i * 3,
                    ..AttrState::default()
                },
            },
            2 => MdsRecord::Popularity {
                root: i / 4,
                bits: (i as f64 * 0.5).to_bits(),
            },
            _ => MdsRecord::GlRecut {
                version: i,
                promoted: 1,
                demoted: 0,
            },
        }
    }

    #[test]
    fn reopen_recovers_synced_state_exactly() {
        let dir = tmp_dir("reopen");
        let (mut store, info) = MdsStore::open(&dir, StoreConfig::manual()).unwrap();
        assert_eq!(info.next_lsn, 0);
        for i in 0..50 {
            store.append(rec(i)).unwrap();
        }
        store.sync().unwrap();
        let expect = store.state().clone();
        drop(store);

        let (store, info) = MdsStore::open(&dir, StoreConfig::manual()).unwrap();
        assert_eq!(info.records_replayed, 50);
        assert_eq!(info.torn_bytes, 0);
        assert_eq!(store.state(), &expect, "bit-identical recovery");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// `append_deferred` must ignore both the size and the time sync
    /// triggers: with a 1-byte group buffer and a 0ms flush interval,
    /// policy appends would sync on every record, yet deferred appends
    /// keep everything buffered until the caller's explicit group commit.
    #[test]
    fn append_deferred_buffers_past_every_policy_trigger() {
        let dir = tmp_dir("deferred");
        let config = StoreConfig {
            group_buffer_bytes: 1,
            flush_interval_ms: 0,
            ..StoreConfig::manual()
        };
        let (mut store, _) = MdsStore::open(&dir, config).unwrap();
        for i in 0..10 {
            store.append_deferred(rec(i)).unwrap();
        }
        assert!(
            store.pending_bytes() > 0,
            "no policy sync fired under deferred appends"
        );
        // Crash before the commit: nothing was durable.
        let expect_after_commit = store.state().clone();
        store.sync().unwrap();
        drop(store);
        let (store, info) = MdsStore::open(&dir, StoreConfig::manual()).unwrap();
        assert_eq!(info.records_replayed, 10);
        assert_eq!(store.state(), &expect_after_commit);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A crash between deferred appends and the group commit loses the
    /// whole batch — exactly the not-yet-acknowledged window.
    #[test]
    fn crash_before_group_commit_loses_the_deferred_batch() {
        let dir = tmp_dir("deferred-crash");
        let (mut store, _) = MdsStore::open(&dir, StoreConfig::manual()).unwrap();
        for i in 0..8 {
            store.append(rec(i)).unwrap();
        }
        store.sync().unwrap();
        let committed = store.state().clone();
        for i in 8..16 {
            store.append_deferred(rec(i)).unwrap();
        }
        store.simulate_crash(3).unwrap();
        let (store, info) = MdsStore::open(&dir, StoreConfig::manual()).unwrap();
        assert_eq!(info.records_replayed, 8);
        assert_eq!(store.state(), &committed);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_loses_only_unsynced_suffix() {
        let dir = tmp_dir("crash");
        let (mut store, _) = MdsStore::open(&dir, StoreConfig::manual()).unwrap();
        let mut synced_state = MdsState::default();
        for i in 0..20 {
            store.append(rec(i)).unwrap();
        }
        store.sync().unwrap();
        for i in 0..20 {
            synced_state.apply(&rec(i));
        }
        for i in 20..30 {
            store.append(rec(i)).unwrap();
        }
        // Tear 7 bytes of the unsynced records into the file.
        store.simulate_crash(7).unwrap();

        let (store, info) = MdsStore::open(&dir, StoreConfig::manual()).unwrap();
        assert_eq!(store.state(), &synced_state);
        assert_eq!(info.records_replayed, 20);
        assert_eq!(info.torn_bytes, 7);
        assert_eq!(info.next_lsn, 20);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_prunes_and_recovery_uses_it() {
        let dir = tmp_dir("snap");
        let config = StoreConfig {
            segment_bytes: 256,
            ..StoreConfig::manual()
        };
        let (mut store, _) = MdsStore::open(&dir, config).unwrap();
        for i in 0..60 {
            store.append(rec(i)).unwrap();
            if i % 10 == 9 {
                store.sync().unwrap();
            }
        }
        store.snapshot().unwrap();
        let expect = store.state().clone();
        drop(store);

        let report = verify(&dir).unwrap();
        assert_eq!(report.snapshot_lsn, 60);
        assert_eq!(report.records, 0, "everything lives in the snapshot");
        assert!(report.segments <= 2, "covered segments pruned");

        let (mut store, info) = MdsStore::open(&dir, config).unwrap();
        assert_eq!(store.state(), &expect);
        assert_eq!(info.snapshot_lsn, 60);
        // Appends continue past the snapshot and replay on reopen.
        store.append(rec(60)).unwrap();
        store.sync().unwrap();
        drop(store);
        let (store, info) = MdsStore::open(&dir, config).unwrap();
        assert_eq!(info.records_replayed, 1);
        let mut want = expect;
        want.apply(&rec(60));
        assert_eq!(store.state(), &want);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_snapshot_triggers_by_record_count() {
        let dir = tmp_dir("auto");
        let config = StoreConfig {
            snapshot_every: 16,
            flush_interval_ms: u64::MAX,
            group_buffer_bytes: usize::MAX,
            ..StoreConfig::default()
        };
        let (mut store, _) = MdsStore::open(&dir, config).unwrap();
        for i in 0..40 {
            store.append(rec(i)).unwrap();
        }
        drop(store);
        let report = verify(&dir).unwrap();
        assert!(report.snapshot_lsn >= 16, "auto snapshot happened");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_shrinks_the_log() {
        let dir = tmp_dir("compact");
        let config = StoreConfig {
            segment_bytes: 256,
            ..StoreConfig::manual()
        };
        let (mut store, _) = MdsStore::open(&dir, config).unwrap();
        for i in 0..80 {
            store.append(rec(i)).unwrap();
            if i % 8 == 7 {
                store.sync().unwrap();
            }
        }
        store.sync().unwrap();
        drop(store);
        let before = verify(&dir).unwrap();
        assert!(before.segments > 2);
        let (lsn, removed) = compact(&dir, config).unwrap();
        assert_eq!(lsn, 80);
        assert!(removed > 0);
        let after = verify(&dir).unwrap();
        assert_eq!(after.snapshot_lsn, 80);
        assert_eq!(after.records, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inspect_summarises_layout_and_state() {
        let dir = tmp_dir("inspect");
        let (mut store, _) = MdsStore::open(&dir, StoreConfig::manual()).unwrap();
        for i in 0..12 {
            store.append(rec(i)).unwrap();
        }
        store.sync().unwrap();
        drop(store);
        let report = inspect(&dir).unwrap();
        assert_eq!(report.next_lsn, 12);
        assert_eq!(report.segments.len(), 1);
        assert_eq!(report.segments[0].frames, 12);
        let total: u64 = report.record_counts.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 12);
        assert!(report.owned > 0 && report.attrs > 0 && report.popularity > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_counters_move_when_attached() {
        let dir = tmp_dir("telemetry");
        let registry = Arc::new(Registry::new());
        let (store, _) = MdsStore::open(&dir, StoreConfig::manual()).unwrap();
        let mut store = store.with_registry(&registry, 3);
        for i in 0..5 {
            store.append(rec(i)).unwrap();
        }
        store.sync().unwrap();
        store.snapshot().unwrap();
        let records = registry
            .counter(MetricKey::mds(names::WAL_RECORDS_TOTAL, 3))
            .get();
        assert_eq!(records, 5);
        assert!(
            registry
                .counter(MetricKey::mds(names::WAL_BYTES_TOTAL, 3))
                .get()
                > 0
        );
        assert_eq!(
            registry
                .counter(MetricKey::mds(names::SNAPSHOTS_TOTAL, 3))
                .get(),
            1
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_spans_record_append_and_fsync_when_traced() {
        use d2tree_telemetry::trace::Sampler;
        let dir = tmp_dir("traced");
        let tracer = Arc::new(Tracer::new(Sampler::always(0)));
        let (store, _) = MdsStore::open(&dir, StoreConfig::manual()).unwrap();
        let mut store = store.with_tracer(Arc::clone(&tracer), 5);
        for i in 0..4 {
            store.append(rec(i)).unwrap();
        }
        store.sync().unwrap();
        let spans = tracer.drain();
        let appends = spans
            .iter()
            .filter(|s| s.name == span_names::WAL_APPEND)
            .count();
        let fsyncs = spans
            .iter()
            .filter(|s| s.name == span_names::WAL_FSYNC)
            .count();
        assert_eq!(appends, 4, "one span per appended record");
        assert_eq!(fsyncs, 1, "manual config: one explicit group commit");
        assert!(spans.iter().all(|s| s.mds == Some(5)));
        assert!(spans
            .iter()
            .all(|s| s.args.iter().any(|&(k, v)| k == ArgKey::Bytes && v > 0)));
        fs::remove_dir_all(&dir).unwrap();
    }
}
