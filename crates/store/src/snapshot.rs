//! Whole-state snapshots.
//!
//! A snapshot file `snap-{lsn:016x}.snap` captures the [`MdsState`]
//! after replaying every record with LSN `< lsn`; recovery loads the
//! newest snapshot and replays only the WAL tail from that LSN on.
//!
//! Layout: 8-byte magic, `len: u32 BE`, `crc: u32 BE` (CRC-32 of the
//! body), then the body (`lsn: u64 BE` ++ encoded state). Snapshots
//! are written to a `.tmp` file, fsynced, renamed into place, and the
//! directory fsynced — a crash mid-snapshot leaves at worst a stale
//! `.tmp` that recovery deletes; a torn snapshot is never visible
//! under its final name.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::record::{Cursor, MdsState};
use crate::{StoreError, StoreResult};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"D2SNAP01";

/// File name of the snapshot covering records with LSN `< lsn`.
#[must_use]
pub fn snapshot_file_name(lsn: u64) -> String {
    format!("snap-{lsn:016x}.snap")
}

/// Parses a snapshot file name back into its covered LSN.
#[must_use]
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Lists snapshot files in a directory, sorted by covered LSN.
///
/// # Errors
///
/// [`StoreError::Io`] if the directory cannot be read.
pub fn list_snapshots(dir: &Path) -> StoreResult<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(lsn) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            out.push((lsn, entry.path()));
        }
    }
    out.sort_by_key(|&(lsn, _)| lsn);
    Ok(out)
}

/// Deletes leftover `.tmp` files from a snapshot interrupted by a
/// crash before its rename.
///
/// # Errors
///
/// [`StoreError::Io`] if the directory cannot be read or a stale file
/// cannot be removed.
pub fn remove_stale_tmp(dir: &Path) -> StoreResult<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry
            .file_name()
            .to_str()
            .is_some_and(|n| n.ends_with(".tmp"))
        {
            fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

/// Writes a snapshot of `state` covering records with LSN `< lsn`,
/// durably (tmp + fsync + rename + dir fsync). Returns the final path.
///
/// # Errors
///
/// [`StoreError::Io`] on any filesystem failure.
pub fn write_snapshot(dir: &Path, lsn: u64, state: &MdsState) -> StoreResult<PathBuf> {
    let mut body = Vec::with_capacity(64);
    body.extend_from_slice(&lsn.to_be_bytes());
    body.extend_from_slice(&state.encode());

    let mut data = Vec::with_capacity(16 + body.len());
    data.extend_from_slice(SNAPSHOT_MAGIC);
    data.extend_from_slice(&(body.len() as u32).to_be_bytes());
    data.extend_from_slice(&crc32(&body).to_be_bytes());
    data.extend_from_slice(&body);

    let final_path = dir.join(snapshot_file_name(lsn));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(lsn)));
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp_path)?;
    file.write_all(&data)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp_path, &final_path)?;
    File::open(dir)?.sync_all()?;
    Ok(final_path)
}

/// Reads and validates a snapshot file, checking that it covers
/// exactly `expect_lsn` (the LSN encoded in its name).
///
/// # Errors
///
/// [`StoreError::Io`] on read failure; [`StoreError::Corrupt`] on a
/// bad magic, CRC mismatch, length mismatch, or LSN disagreement —
/// a snapshot is never truncated-and-tolerated, because rename made
/// it visible only after a successful fsync.
pub fn read_snapshot(path: &Path, expect_lsn: u64) -> StoreResult<MdsState> {
    let data = fs::read(path)?;
    let name = path.display();
    if data.len() < 16 || &data[..8] != SNAPSHOT_MAGIC {
        return Err(StoreError::corrupt(format!("{name}: bad snapshot magic")));
    }
    let mut c = Cursor::new(&data[8..16]);
    let len = c.u32().expect("sized above") as usize;
    let crc = c.u32().expect("sized above");
    if data.len() != 16 + len {
        return Err(StoreError::corrupt(format!(
            "{name}: snapshot body is {} bytes, header says {len}",
            data.len() - 16
        )));
    }
    let body = &data[16..];
    if crc32(body) != crc {
        return Err(StoreError::corrupt(format!(
            "{name}: snapshot CRC mismatch"
        )));
    }
    let lsn = u64::from_be_bytes(body[..8].try_into().expect("16-byte minimum"));
    if lsn != expect_lsn {
        return Err(StoreError::corrupt(format!(
            "{name}: snapshot covers lsn {lsn}, file name says {expect_lsn}"
        )));
    }
    MdsState::decode(&body[8..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AttrState, MdsRecord};
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "d2tree-snap-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_state() -> MdsState {
        let mut s = MdsState::default();
        s.apply(&MdsRecord::Ownership {
            root: 5,
            acquired: true,
        });
        s.apply(&MdsRecord::AttrCommit {
            node: 9,
            gl: true,
            attr: AttrState {
                version: 12,
                size: 777,
                ..AttrState::default()
            },
        });
        s.apply(&MdsRecord::Popularity {
            root: 5,
            bits: 1.25f64.to_bits(),
        });
        s
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = tmp_dir("rt");
        let state = sample_state();
        let path = write_snapshot(&dir, 42, &state).unwrap();
        assert_eq!(
            parse_snapshot_name(path.file_name().unwrap().to_str().unwrap()),
            Some(42)
        );
        assert_eq!(read_snapshot(&path, 42).unwrap(), state);
        assert_eq!(list_snapshots(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_snapshot_fails_loudly() {
        let dir = tmp_dir("bad");
        let path = write_snapshot(&dir, 7, &sample_state()).unwrap();
        let mut data = fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x01;
        fs::write(&path, &data).unwrap();
        assert!(read_snapshot(&path, 7).unwrap_err().is_corrupt());
        // Wrong expected LSN is also rejected.
        let ok = write_snapshot(&dir, 8, &sample_state()).unwrap();
        assert!(read_snapshot(&ok, 9).unwrap_err().is_corrupt());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_files_are_removed() {
        let dir = tmp_dir("tmp");
        fs::write(dir.join("snap-0000000000000001.snap.tmp"), b"half").unwrap();
        remove_stale_tmp(&dir).unwrap();
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
