//! The local index: inter node → owners of its local-layer subtrees.
//!
//! Clients cache this index. A query whose path prefix hits an inter node
//! goes straight to the MDS owning the corresponding subtree; a query whose
//! prefix never leaves the global layer can be served by any MDS
//! (Sec. IV-A2 of the paper).

use std::collections::HashMap;
use std::sync::Mutex;

use d2tree_metrics::MdsId;
use d2tree_namespace::{NamespaceTree, NodeId};
use serde::{Deserialize, Serialize};

/// One memoised [`LocalIndex::locate`] answer plus the root-to-target
/// ancestor chain it was computed over. The chain is what makes targeted
/// invalidation sound: an index mutation at root `D` can only change the
/// answer for targets whose chain passes through `D` (the tree itself is
/// unchanged — tree mutations are handled by the tree stamp).
#[derive(Debug)]
struct MemoEntry {
    answer: Option<(NodeId, MdsId)>,
    chain: Box<[NodeId]>,
    /// Dirty-log frontier this entry was last validated against. Probing
    /// an entry only has to check the log *suffix* recorded after this
    /// point, and a successful probe moves the stamp forward.
    epoch: u64,
}

/// Past this many pending dirty roots, the next settle amortises them in
/// one sweep over the memo (evict every entry whose chain intersects the
/// log, reset the log) instead of letting probe-time suffix checks grow.
const DIRTY_ROOT_CAP: usize = 32;

/// Cache of [`LocalIndex::locate`] results with per-subtree dirty-root
/// invalidation.
///
/// Tree mutations (identity or version change) still discard everything:
/// the index cannot scope a structural change it never saw. Index
/// mutations instead append the mutated subtree root to `dirty_log` in
/// O(1); entries validate *lazily* — a probe re-checks the cached chain
/// against only the log suffix newer than the entry's `epoch`, evicting
/// on intersection and re-stamping on survival. Once the log passes
/// [`DIRTY_ROOT_CAP`], one settle sweep pays the full-memo scan for the
/// whole batch and resets the log. `dirty_all` is the wholesale
/// fallback, used for [`LocalIndex::replace_all`] and when the owner
/// opts out via [`LocalIndex::set_wholesale_invalidation`].
#[derive(Debug, Default)]
struct LocateMemo {
    tree_stamp: Option<(u64, u64)>,
    nearest: HashMap<NodeId, MemoEntry>,
    /// Subtree roots mutated since `base_epoch`, in mutation order.
    dirty_log: Vec<NodeId>,
    /// Epoch of `dirty_log[0]`; `base_epoch + dirty_log.len()` is the
    /// current frontier.
    base_epoch: u64,
    dirty_all: bool,
}

impl LocateMemo {
    fn frontier(&self) -> u64 {
        self.base_epoch + self.dirty_log.len() as u64
    }

    fn mark_dirty(&mut self, root: NodeId) {
        if !self.dirty_all {
            self.dirty_log.push(root);
        }
    }

    fn mark_dirty_all(&mut self) {
        self.dirty_all = true;
        self.dirty_log.clear();
    }

    /// Applies pending invalidation that cannot stay lazy: tree-stamp
    /// mismatches and wholesale requests clear everything, and a dirty
    /// log past [`DIRTY_ROOT_CAP`] is amortised into one sweep.
    fn settle(&mut self, tree: &NamespaceTree) {
        let tree_stamp = (tree.identity(), tree.version());
        if self.tree_stamp != Some(tree_stamp) {
            // A tree we have never seen, or one that mutated under us:
            // any cached chain may be stale, so everything goes.
            self.nearest.clear();
            self.tree_stamp = Some(tree_stamp);
            self.base_epoch = self.frontier();
            self.dirty_log.clear();
        } else if self.dirty_all {
            self.nearest.clear();
            self.base_epoch = self.frontier();
        } else if self.dirty_log.len() > DIRTY_ROOT_CAP {
            let dirty: std::collections::HashSet<NodeId> = self.dirty_log.iter().copied().collect();
            let frontier = self.frontier();
            self.nearest.retain(|_, e| {
                if e.chain.iter().any(|n| dirty.contains(n)) {
                    false
                } else {
                    e.epoch = frontier;
                    true
                }
            });
            self.base_epoch = frontier;
            self.dirty_log.clear();
        }
        self.dirty_all = false;
    }

    /// Memo probe with lazy validation: a hit whose chain intersects a
    /// dirty root logged after the entry's epoch is evicted (reported as
    /// a miss); a clean hit is re-stamped at the current frontier so the
    /// next probe checks even less.
    fn probe(&mut self, target: NodeId) -> Option<Option<(NodeId, MdsId)>> {
        let frontier = self.frontier();
        let entry = self.nearest.get_mut(&target)?;
        let unseen = &self.dirty_log[(entry.epoch - self.base_epoch) as usize..];
        if unseen.iter().any(|d| entry.chain.contains(d)) {
            self.nearest.remove(&target);
            None
        } else {
            entry.epoch = frontier;
            Some(entry.answer)
        }
    }
}

/// Versioned map from local-layer subtree roots to their owning MDS.
///
/// The version number supports the paper's client-cache consistency story
/// (version number + timeout + lease, borrowed from GFS): a client whose
/// cached version lags the server's re-fetches the index.
///
/// [`locate`](LocalIndex::locate) — the per-operation routing query —
/// memoises its nearest-owner answers per target node, so repeat lookups
/// are O(1) hash probes instead of O(depth) chain walks. Tree mutations
/// discard the memo wholesale; index mutations evict per affected
/// subtree (each cached answer remembers the ancestor chain it was
/// computed over, and a mutation at root `D` only evicts answers whose
/// chain passes through `D`). The memo is invisible to every other API:
/// clones start cold and equality ignores it.
///
/// # Example
///
/// ```
/// use d2tree_core::LocalIndex;
/// use d2tree_metrics::MdsId;
/// use d2tree_namespace::{NamespaceTree, NodeKind};
///
/// # fn main() -> Result<(), d2tree_namespace::TreeError> {
/// let mut tree = NamespaceTree::new();
/// let a = tree.create(tree.root(), "a", NodeKind::Directory)?;
/// let mut idx = LocalIndex::new();
/// idx.insert(a, MdsId(1));
/// assert_eq!(idx.owner_of(a), Some(MdsId(1)));
/// assert_eq!(idx.version(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct LocalIndex {
    owners: HashMap<NodeId, MdsId>,
    version: u64,
    memo: Mutex<LocateMemo>,
    wholesale: bool,
}

impl LocalIndex {
    /// Creates an empty index at version 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed subtree roots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Monotonic version, bumped on every mutation.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Registers (or re-registers) a subtree root's owner.
    pub fn insert(&mut self, subtree_root: NodeId, owner: MdsId) {
        self.owners.insert(subtree_root, owner);
        self.version += 1;
        self.note_mutation(subtree_root);
    }

    /// Removes a subtree root (e.g. when it is promoted into the global
    /// layer). Returns the previous owner, if any.
    pub fn remove(&mut self, subtree_root: NodeId) -> Option<MdsId> {
        let prev = self.owners.remove(&subtree_root);
        if prev.is_some() {
            self.version += 1;
            self.note_mutation(subtree_root);
        }
        prev
    }

    /// Records a mutation at `subtree_root` for the next memo settle.
    /// `&mut self` guarantees no concurrent `locate`, so the lock is
    /// uncontended.
    fn note_mutation(&mut self, subtree_root: NodeId) {
        let memo = self.memo.get_mut().expect("locate memo poisoned");
        if self.wholesale {
            memo.mark_dirty_all();
        } else {
            memo.mark_dirty(subtree_root);
        }
    }

    /// Forces the memo back to wholesale invalidation: any index mutation
    /// discards every cached answer, as before per-subtree dirty-root
    /// tracking existed. Exists so benchmarks can compare the two
    /// strategies on identical workloads; answers are unaffected.
    pub fn set_wholesale_invalidation(&mut self, wholesale: bool) {
        self.wholesale = wholesale;
        if wholesale {
            self.memo
                .get_mut()
                .expect("locate memo poisoned")
                .mark_dirty_all();
        }
    }

    /// Number of memoised `locate` answers currently cached. Includes
    /// entries a pending dirty root will evict on their next probe —
    /// invalidation is lazy, so stale entries linger until probed or
    /// swept. Exposed for tests, benchmarks and debugging.
    #[must_use]
    pub fn memo_len(&self) -> usize {
        self.memo
            .lock()
            .expect("locate memo poisoned")
            .nearest
            .len()
    }

    /// Direct owner lookup for a known subtree root.
    #[must_use]
    pub fn owner_of(&self, subtree_root: NodeId) -> Option<MdsId> {
        self.owners.get(&subtree_root).copied()
    }

    /// The client lookup of Sec. IV-A2: find the first (shallowest)
    /// indexed subtree root on the root-to-`target` chain and return it
    /// with its owner.
    ///
    /// `None` means every prefix node is in the global layer, so the query
    /// may be sent to any MDS.
    ///
    /// Answers are memoised per target together with the ancestor chain
    /// they were computed over. A repeat lookup against unchanged
    /// structures is a single hash probe. Tree mutations (or a different
    /// tree instance) still discard the whole memo, but
    /// [`insert`](Self::insert) and [`remove`](Self::remove) evict only
    /// the entries whose cached chain passes through the mutated subtree
    /// root — hot targets in untouched subtrees stay warm across
    /// unrelated writes. [`replace_all`](Self::replace_all) falls back to
    /// a wholesale clear.
    #[must_use]
    pub fn locate(&self, tree: &NamespaceTree, target: NodeId) -> Option<(NodeId, MdsId)> {
        let mut memo = self.memo.lock().expect("locate memo poisoned");
        memo.settle(tree);
        if let Some(answer) = memo.probe(target) {
            return answer;
        }
        // Walking upward visits the chain deepest-first, so the last hit
        // seen is the shallowest — the one the downward client walk of
        // Sec. IV-A2 would report first. The visited chain is recorded so
        // future index mutations can evict exactly the answers they touch.
        let mut chain = Vec::new();
        let mut answer = None;
        for id in tree.chain_up(target) {
            chain.push(id);
            if let Some(&owner) = self.owners.get(&id) {
                answer = Some((id, owner));
            }
        }
        let epoch = memo.frontier();
        memo.nearest.insert(
            target,
            MemoEntry {
                answer,
                chain: chain.into_boxed_slice(),
                epoch,
            },
        );
        answer
    }

    /// [`locate`](Self::locate) without the memo: one allocation-free
    /// upward walk of the parent chain, keeping the shallowest indexed
    /// hit. Exposed for benchmarking and for callers that query each
    /// target at most once.
    #[must_use]
    pub fn locate_uncached(&self, tree: &NamespaceTree, target: NodeId) -> Option<(NodeId, MdsId)> {
        // Walking upward visits the chain deepest-first, so the last hit
        // seen is the shallowest — the one the downward client walk of
        // Sec. IV-A2 would report first.
        let mut hit = None;
        for id in tree.chain_up(target) {
            if let Some(&owner) = self.owners.get(&id) {
                hit = Some((id, owner));
            }
        }
        hit
    }

    /// Iterates over `(subtree_root, owner)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, MdsId)> + '_ {
        self.owners.iter().map(|(&k, &v)| (k, v))
    }

    /// Rebuilds the index from an aligned `(subtree_root, owner)` listing,
    /// bumping the version once.
    pub fn replace_all<I>(&mut self, entries: I)
    where
        I: IntoIterator<Item = (NodeId, MdsId)>,
    {
        self.owners = entries.into_iter().collect();
        self.version += 1;
        // A full swap has no single affected root; clear wholesale.
        self.memo
            .get_mut()
            .expect("locate memo poisoned")
            .mark_dirty_all();
    }
}

impl Clone for LocalIndex {
    fn clone(&self) -> Self {
        LocalIndex {
            owners: self.owners.clone(),
            version: self.version,
            // The memo is derived state; a cold one re-fills on demand.
            memo: Mutex::new(LocateMemo::default()),
            wholesale: self.wholesale,
        }
    }
}

impl PartialEq for LocalIndex {
    fn eq(&self, other: &Self) -> bool {
        self.owners == other.owners && self.version == other.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_namespace::NodeKind;

    fn deep_tree() -> (NamespaceTree, NodeId, NodeId, NodeId) {
        let mut t = NamespaceTree::new();
        let a = t.create(t.root(), "a", NodeKind::Directory).unwrap();
        let b = t.create(a, "b", NodeKind::Directory).unwrap();
        let c = t.create(b, "c", NodeKind::File).unwrap();
        (t, a, b, c)
    }

    #[test]
    fn locate_finds_nearest_indexed_prefix() {
        let (t, _a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(b, MdsId(2));
        // Looking up c: prefix chain root, a, b, c — b is indexed.
        assert_eq!(idx.locate(&t, c), Some((b, MdsId(2))));
        // Looking up the subtree root itself also resolves.
        assert_eq!(idx.locate(&t, b), Some((b, MdsId(2))));
    }

    #[test]
    fn locate_returns_none_for_global_layer_targets() {
        let (t, a, b, _c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(b, MdsId(0));
        assert_eq!(idx.locate(&t, a), None);
        assert_eq!(idx.locate(&t, t.root()), None);
    }

    #[test]
    fn locate_prefers_the_shallowest_indexed_ancestor() {
        let (t, a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(a, MdsId(1));
        idx.insert(b, MdsId(2));
        // Both a and b lie on c's chain; the client walk hits a first.
        assert_eq!(idx.locate(&t, c), Some((a, MdsId(1))));
        assert_eq!(idx.locate_uncached(&t, c), Some((a, MdsId(1))));
    }

    #[test]
    fn versions_bump_on_mutation_only() {
        let (_t, a, b, _c) = deep_tree();
        let mut idx = LocalIndex::new();
        assert_eq!(idx.version(), 0);
        idx.insert(a, MdsId(0));
        assert_eq!(idx.version(), 1);
        idx.insert(a, MdsId(1)); // re-registration still bumps
        assert_eq!(idx.version(), 2);
        assert_eq!(idx.remove(b), None);
        assert_eq!(idx.version(), 2, "removing a missing key does not bump");
        assert_eq!(idx.remove(a), Some(MdsId(1)));
        assert_eq!(idx.version(), 3);
    }

    #[test]
    fn replace_all_swaps_contents() {
        let (_t, a, b, _c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(a, MdsId(0));
        idx.replace_all([(b, MdsId(1))]);
        assert_eq!(idx.owner_of(a), None);
        assert_eq!(idx.owner_of(b), Some(MdsId(1)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn memo_invalidates_on_index_mutation() {
        let (t, a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(b, MdsId(2));
        assert_eq!(idx.locate(&t, c), Some((b, MdsId(2))));
        // Re-register b elsewhere: the cached answer must not survive.
        idx.insert(b, MdsId(5));
        assert_eq!(idx.locate(&t, c), Some((b, MdsId(5))));
        // Indexing a shallower ancestor changes the answer too.
        idx.insert(a, MdsId(7));
        assert_eq!(idx.locate(&t, c), Some((a, MdsId(7))));
        idx.remove(a);
        idx.remove(b);
        assert_eq!(idx.locate(&t, c), None);
    }

    #[test]
    fn memo_invalidates_on_tree_mutation() {
        let (mut t, a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(a, MdsId(1));
        assert_eq!(idx.locate(&t, c), Some((a, MdsId(1))));
        // Move b (and its child c) to the root: a leaves c's chain.
        t.move_subtree(b, t.root()).unwrap();
        assert_eq!(idx.locate(&t, c), None);
        assert_eq!(idx.locate(&t, b), None);
        idx.insert(b, MdsId(3));
        assert_eq!(idx.locate(&t, c), Some((b, MdsId(3))));
    }

    #[test]
    fn clone_and_eq_ignore_the_memo() {
        let (t, _a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(b, MdsId(2));
        let warm = idx.locate(&t, c);
        let cloned = idx.clone();
        assert_eq!(idx, cloned, "warm memo must not affect equality");
        assert_eq!(cloned.locate(&t, c), warm);
        assert_eq!(idx, cloned);
    }

    #[test]
    fn repeat_locates_agree_with_uncached() {
        let (t, a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(a, MdsId(4));
        for target in [t.root(), a, b, c] {
            for _ in 0..3 {
                assert_eq!(idx.locate(&t, target), idx.locate_uncached(&t, target));
            }
        }
    }

    /// Two sibling subtrees, many cached answers under one: mutating the
    /// *other* subtree's root must leave all of them warm, while wholesale
    /// mode throws every one of them away.
    #[test]
    fn unrelated_mutation_keeps_the_memo_warm() {
        let mut t = NamespaceTree::new();
        let left = t.create(t.root(), "left", NodeKind::Directory).unwrap();
        let right = t.create(t.root(), "right", NodeKind::Directory).unwrap();
        let leaves: Vec<NodeId> = (0..8)
            .map(|i| t.create(left, &format!("f{i}"), NodeKind::File).unwrap())
            .collect();
        let rleaf = t.create(right, "r0", NodeKind::File).unwrap();

        let mut idx = LocalIndex::new();
        idx.insert(left, MdsId(1));
        idx.insert(right, MdsId(2));
        for &leaf in &leaves {
            assert_eq!(idx.locate(&t, leaf), Some((left, MdsId(1))));
        }
        assert_eq!(idx.locate(&t, rleaf), Some((right, MdsId(2))));
        assert_eq!(idx.memo_len(), 9);

        // Re-register the right subtree: only the right answer is stale.
        // Eviction is lazy, so the stale rleaf entry lingers (memo still
        // holds 9) until its own probe evicts and recomputes it; the 8
        // left-subtree answers stay warm throughout.
        idx.insert(right, MdsId(3));
        for &leaf in &leaves {
            assert_eq!(idx.locate(&t, leaf), Some((left, MdsId(1))));
        }
        assert_eq!(
            idx.memo_len(),
            9,
            "no left-subtree answer was evicted by the right-subtree write"
        );
        assert_eq!(idx.locate(&t, rleaf), Some((right, MdsId(3))));
        assert_eq!(idx.memo_len(), 9, "rleaf was evicted and re-memoised");

        // Same sequence in wholesale mode loses the whole memo.
        let mut whole = LocalIndex::new();
        whole.set_wholesale_invalidation(true);
        whole.insert(left, MdsId(1));
        whole.insert(right, MdsId(2));
        for &leaf in &leaves {
            let _ = whole.locate(&t, leaf);
        }
        let _ = whole.locate(&t, rleaf);
        whole.insert(right, MdsId(3));
        let _ = whole.locate(&t, leaves[0]);
        assert_eq!(whole.memo_len(), 1, "wholesale mode recomputes from cold");
        assert_eq!(whole.locate(&t, rleaf), Some((right, MdsId(3))));
    }

    /// Inserting a *new* shallower root must evict cached answers that
    /// pass through it, even though no cached answer mentions it yet —
    /// that is what the stored chain (not just the answer) buys.
    #[test]
    fn inserting_a_shallower_root_on_the_chain_evicts() {
        let (t, a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(b, MdsId(2));
        assert_eq!(idx.locate(&t, c), Some((b, MdsId(2))));
        idx.insert(a, MdsId(9)); // a is on c's chain but was unindexed
        assert_eq!(idx.locate(&t, c), Some((a, MdsId(9))));
        idx.remove(a);
        assert_eq!(idx.locate(&t, c), Some((b, MdsId(2))));
    }

    #[test]
    fn replace_all_discards_the_whole_memo() {
        let (t, a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(a, MdsId(1));
        assert_eq!(idx.locate(&t, c), Some((a, MdsId(1))));
        idx.replace_all([(b, MdsId(6))]);
        assert_eq!(idx.locate(&t, c), Some((b, MdsId(6))));
        assert_eq!(idx.locate(&t, a), None);
    }

    /// Past DIRTY_ROOT_CAP dirty roots between locates, the next settle
    /// amortises the whole batch into one sweep — answers must stay
    /// correct across the overflow.
    #[test]
    fn dirty_root_overflow_falls_back_to_wholesale() {
        let mut t = NamespaceTree::new();
        let roots: Vec<NodeId> = (0..DIRTY_ROOT_CAP + 4)
            .map(|i| {
                t.create(t.root(), &format!("d{i}"), NodeKind::Directory)
                    .unwrap()
            })
            .collect();
        let mut idx = LocalIndex::new();
        for (i, &r) in roots.iter().enumerate() {
            idx.insert(r, MdsId(i as u16));
        }
        for &r in &roots {
            let _ = idx.locate(&t, r);
        }
        // Mutate more roots than the cap tracks, then verify every answer.
        for (i, &r) in roots.iter().enumerate() {
            idx.insert(r, MdsId(100 + i as u16));
        }
        for (i, &r) in roots.iter().enumerate() {
            assert_eq!(idx.locate(&t, r), Some((r, MdsId(100 + i as u16))));
        }
    }

    /// Randomised interleaving of mutations and locates: the memoised
    /// answer must always agree with an uncached walk, in both modes.
    #[test]
    fn interleaved_mutations_always_agree_with_uncached() {
        let mut t = NamespaceTree::new();
        let mut nodes = vec![t.root()];
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..40 {
            let parent = nodes[(rng() % nodes.len() as u64) as usize];
            if let Ok(id) = t.create(parent, &format!("n{i}"), NodeKind::Directory) {
                nodes.push(id);
            }
        }
        for wholesale in [false, true] {
            let mut idx = LocalIndex::new();
            idx.set_wholesale_invalidation(wholesale);
            for _ in 0..400 {
                let n = nodes[(rng() % nodes.len() as u64) as usize];
                match rng() % 10 {
                    0 => idx.insert(n, MdsId((rng() % 8) as u16)),
                    1 => {
                        idx.remove(n);
                    }
                    _ => {
                        assert_eq!(
                            idx.locate(&t, n),
                            idx.locate_uncached(&t, n),
                            "wholesale={wholesale} target={n:?}"
                        );
                    }
                }
            }
        }
    }
}
