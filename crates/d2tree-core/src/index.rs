//! The local index: inter node → owners of its local-layer subtrees.
//!
//! Clients cache this index. A query whose path prefix hits an inter node
//! goes straight to the MDS owning the corresponding subtree; a query whose
//! prefix never leaves the global layer can be served by any MDS
//! (Sec. IV-A2 of the paper).

use std::collections::HashMap;
use std::sync::Mutex;

use d2tree_metrics::MdsId;
use d2tree_namespace::{NamespaceTree, NodeId};
use serde::{Deserialize, Serialize};

/// Cache of [`LocalIndex::locate`] results, stamped with the exact
/// `(tree identity, tree version, index version)` it was computed
/// against. Any mutation of either the tree or the index changes the
/// stamp and implicitly discards every entry.
#[derive(Debug, Default)]
struct LocateMemo {
    stamp: Option<(u64, u64, u64)>,
    nearest: HashMap<NodeId, Option<(NodeId, MdsId)>>,
}

/// Versioned map from local-layer subtree roots to their owning MDS.
///
/// The version number supports the paper's client-cache consistency story
/// (version number + timeout + lease, borrowed from GFS): a client whose
/// cached version lags the server's re-fetches the index.
///
/// [`locate`](LocalIndex::locate) — the per-operation routing query —
/// memoises its nearest-owner answers per target node, so repeat lookups
/// are O(1) hash probes instead of O(depth) chain walks. The memo is
/// version-stamped against both the index and the tree and is invisible
/// to every other API: clones start cold and equality ignores it.
///
/// # Example
///
/// ```
/// use d2tree_core::LocalIndex;
/// use d2tree_metrics::MdsId;
/// use d2tree_namespace::{NamespaceTree, NodeKind};
///
/// # fn main() -> Result<(), d2tree_namespace::TreeError> {
/// let mut tree = NamespaceTree::new();
/// let a = tree.create(tree.root(), "a", NodeKind::Directory)?;
/// let mut idx = LocalIndex::new();
/// idx.insert(a, MdsId(1));
/// assert_eq!(idx.owner_of(a), Some(MdsId(1)));
/// assert_eq!(idx.version(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct LocalIndex {
    owners: HashMap<NodeId, MdsId>,
    version: u64,
    memo: Mutex<LocateMemo>,
}

impl LocalIndex {
    /// Creates an empty index at version 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed subtree roots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Monotonic version, bumped on every mutation.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Registers (or re-registers) a subtree root's owner.
    pub fn insert(&mut self, subtree_root: NodeId, owner: MdsId) {
        self.owners.insert(subtree_root, owner);
        self.version += 1;
    }

    /// Removes a subtree root (e.g. when it is promoted into the global
    /// layer). Returns the previous owner, if any.
    pub fn remove(&mut self, subtree_root: NodeId) -> Option<MdsId> {
        let prev = self.owners.remove(&subtree_root);
        if prev.is_some() {
            self.version += 1;
        }
        prev
    }

    /// Direct owner lookup for a known subtree root.
    #[must_use]
    pub fn owner_of(&self, subtree_root: NodeId) -> Option<MdsId> {
        self.owners.get(&subtree_root).copied()
    }

    /// The client lookup of Sec. IV-A2: find the first (shallowest)
    /// indexed subtree root on the root-to-`target` chain and return it
    /// with its owner.
    ///
    /// `None` means every prefix node is in the global layer, so the query
    /// may be sent to any MDS.
    ///
    /// Answers are memoised per target and stamped with the tree's and the
    /// index's versions; a repeat lookup against unchanged structures is a
    /// single hash probe. Any [`insert`](Self::insert),
    /// [`remove`](Self::remove), [`replace_all`](Self::replace_all) or
    /// tree mutation invalidates the whole memo via the stamp.
    #[must_use]
    pub fn locate(&self, tree: &NamespaceTree, target: NodeId) -> Option<(NodeId, MdsId)> {
        let mut memo = self.memo.lock().expect("locate memo poisoned");
        let stamp = (tree.identity(), tree.version(), self.version);
        if memo.stamp != Some(stamp) {
            memo.nearest.clear();
            memo.stamp = Some(stamp);
        }
        if let Some(&cached) = memo.nearest.get(&target) {
            return cached;
        }
        let answer = self.locate_uncached(tree, target);
        memo.nearest.insert(target, answer);
        answer
    }

    /// [`locate`](Self::locate) without the memo: one allocation-free
    /// upward walk of the parent chain, keeping the shallowest indexed
    /// hit. Exposed for benchmarking and for callers that query each
    /// target at most once.
    #[must_use]
    pub fn locate_uncached(&self, tree: &NamespaceTree, target: NodeId) -> Option<(NodeId, MdsId)> {
        // Walking upward visits the chain deepest-first, so the last hit
        // seen is the shallowest — the one the downward client walk of
        // Sec. IV-A2 would report first.
        let mut hit = None;
        for id in tree.chain_up(target) {
            if let Some(&owner) = self.owners.get(&id) {
                hit = Some((id, owner));
            }
        }
        hit
    }

    /// Iterates over `(subtree_root, owner)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, MdsId)> + '_ {
        self.owners.iter().map(|(&k, &v)| (k, v))
    }

    /// Rebuilds the index from an aligned `(subtree_root, owner)` listing,
    /// bumping the version once.
    pub fn replace_all<I>(&mut self, entries: I)
    where
        I: IntoIterator<Item = (NodeId, MdsId)>,
    {
        self.owners = entries.into_iter().collect();
        self.version += 1;
    }
}

impl Clone for LocalIndex {
    fn clone(&self) -> Self {
        LocalIndex {
            owners: self.owners.clone(),
            version: self.version,
            // The memo is derived state; a cold one re-fills on demand.
            memo: Mutex::new(LocateMemo::default()),
        }
    }
}

impl PartialEq for LocalIndex {
    fn eq(&self, other: &Self) -> bool {
        self.owners == other.owners && self.version == other.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_namespace::NodeKind;

    fn deep_tree() -> (NamespaceTree, NodeId, NodeId, NodeId) {
        let mut t = NamespaceTree::new();
        let a = t.create(t.root(), "a", NodeKind::Directory).unwrap();
        let b = t.create(a, "b", NodeKind::Directory).unwrap();
        let c = t.create(b, "c", NodeKind::File).unwrap();
        (t, a, b, c)
    }

    #[test]
    fn locate_finds_nearest_indexed_prefix() {
        let (t, _a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(b, MdsId(2));
        // Looking up c: prefix chain root, a, b, c — b is indexed.
        assert_eq!(idx.locate(&t, c), Some((b, MdsId(2))));
        // Looking up the subtree root itself also resolves.
        assert_eq!(idx.locate(&t, b), Some((b, MdsId(2))));
    }

    #[test]
    fn locate_returns_none_for_global_layer_targets() {
        let (t, a, b, _c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(b, MdsId(0));
        assert_eq!(idx.locate(&t, a), None);
        assert_eq!(idx.locate(&t, t.root()), None);
    }

    #[test]
    fn locate_prefers_the_shallowest_indexed_ancestor() {
        let (t, a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(a, MdsId(1));
        idx.insert(b, MdsId(2));
        // Both a and b lie on c's chain; the client walk hits a first.
        assert_eq!(idx.locate(&t, c), Some((a, MdsId(1))));
        assert_eq!(idx.locate_uncached(&t, c), Some((a, MdsId(1))));
    }

    #[test]
    fn versions_bump_on_mutation_only() {
        let (_t, a, b, _c) = deep_tree();
        let mut idx = LocalIndex::new();
        assert_eq!(idx.version(), 0);
        idx.insert(a, MdsId(0));
        assert_eq!(idx.version(), 1);
        idx.insert(a, MdsId(1)); // re-registration still bumps
        assert_eq!(idx.version(), 2);
        assert_eq!(idx.remove(b), None);
        assert_eq!(idx.version(), 2, "removing a missing key does not bump");
        assert_eq!(idx.remove(a), Some(MdsId(1)));
        assert_eq!(idx.version(), 3);
    }

    #[test]
    fn replace_all_swaps_contents() {
        let (_t, a, b, _c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(a, MdsId(0));
        idx.replace_all([(b, MdsId(1))]);
        assert_eq!(idx.owner_of(a), None);
        assert_eq!(idx.owner_of(b), Some(MdsId(1)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn memo_invalidates_on_index_mutation() {
        let (t, a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(b, MdsId(2));
        assert_eq!(idx.locate(&t, c), Some((b, MdsId(2))));
        // Re-register b elsewhere: the cached answer must not survive.
        idx.insert(b, MdsId(5));
        assert_eq!(idx.locate(&t, c), Some((b, MdsId(5))));
        // Indexing a shallower ancestor changes the answer too.
        idx.insert(a, MdsId(7));
        assert_eq!(idx.locate(&t, c), Some((a, MdsId(7))));
        idx.remove(a);
        idx.remove(b);
        assert_eq!(idx.locate(&t, c), None);
    }

    #[test]
    fn memo_invalidates_on_tree_mutation() {
        let (mut t, a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(a, MdsId(1));
        assert_eq!(idx.locate(&t, c), Some((a, MdsId(1))));
        // Move b (and its child c) to the root: a leaves c's chain.
        t.move_subtree(b, t.root()).unwrap();
        assert_eq!(idx.locate(&t, c), None);
        assert_eq!(idx.locate(&t, b), None);
        idx.insert(b, MdsId(3));
        assert_eq!(idx.locate(&t, c), Some((b, MdsId(3))));
    }

    #[test]
    fn clone_and_eq_ignore_the_memo() {
        let (t, _a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(b, MdsId(2));
        let warm = idx.locate(&t, c);
        let cloned = idx.clone();
        assert_eq!(idx, cloned, "warm memo must not affect equality");
        assert_eq!(cloned.locate(&t, c), warm);
        assert_eq!(idx, cloned);
    }

    #[test]
    fn repeat_locates_agree_with_uncached() {
        let (t, a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(a, MdsId(4));
        for target in [t.root(), a, b, c] {
            for _ in 0..3 {
                assert_eq!(idx.locate(&t, target), idx.locate_uncached(&t, target));
            }
        }
    }
}
