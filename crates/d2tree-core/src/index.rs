//! The local index: inter node → owners of its local-layer subtrees.
//!
//! Clients cache this index. A query whose path prefix hits an inter node
//! goes straight to the MDS owning the corresponding subtree; a query whose
//! prefix never leaves the global layer can be served by any MDS
//! (Sec. IV-A2 of the paper).

use std::collections::HashMap;

use d2tree_metrics::MdsId;
use d2tree_namespace::{NamespaceTree, NodeId};
use serde::{Deserialize, Serialize};

/// Versioned map from local-layer subtree roots to their owning MDS.
///
/// The version number supports the paper's client-cache consistency story
/// (version number + timeout + lease, borrowed from GFS): a client whose
/// cached version lags the server's re-fetches the index.
///
/// # Example
///
/// ```
/// use d2tree_core::LocalIndex;
/// use d2tree_metrics::MdsId;
/// use d2tree_namespace::{NamespaceTree, NodeKind};
///
/// # fn main() -> Result<(), d2tree_namespace::TreeError> {
/// let mut tree = NamespaceTree::new();
/// let a = tree.create(tree.root(), "a", NodeKind::Directory)?;
/// let mut idx = LocalIndex::new();
/// idx.insert(a, MdsId(1));
/// assert_eq!(idx.owner_of(a), Some(MdsId(1)));
/// assert_eq!(idx.version(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LocalIndex {
    owners: HashMap<NodeId, MdsId>,
    version: u64,
}

impl LocalIndex {
    /// Creates an empty index at version 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed subtree roots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Monotonic version, bumped on every mutation.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Registers (or re-registers) a subtree root's owner.
    pub fn insert(&mut self, subtree_root: NodeId, owner: MdsId) {
        self.owners.insert(subtree_root, owner);
        self.version += 1;
    }

    /// Removes a subtree root (e.g. when it is promoted into the global
    /// layer). Returns the previous owner, if any.
    pub fn remove(&mut self, subtree_root: NodeId) -> Option<MdsId> {
        let prev = self.owners.remove(&subtree_root);
        if prev.is_some() {
            self.version += 1;
        }
        prev
    }

    /// Direct owner lookup for a known subtree root.
    #[must_use]
    pub fn owner_of(&self, subtree_root: NodeId) -> Option<MdsId> {
        self.owners.get(&subtree_root).copied()
    }

    /// The client lookup of Sec. IV-A2: walk the root-to-`target` chain and
    /// return the first indexed subtree root with its owner.
    ///
    /// `None` means every prefix node is in the global layer, so the query
    /// may be sent to any MDS.
    #[must_use]
    pub fn locate(&self, tree: &NamespaceTree, target: NodeId) -> Option<(NodeId, MdsId)> {
        for id in tree.path_from_root(target) {
            if let Some(&owner) = self.owners.get(&id) {
                return Some((id, owner));
            }
        }
        None
    }

    /// Iterates over `(subtree_root, owner)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, MdsId)> + '_ {
        self.owners.iter().map(|(&k, &v)| (k, v))
    }

    /// Rebuilds the index from an aligned `(subtree_root, owner)` listing,
    /// bumping the version once.
    pub fn replace_all<I>(&mut self, entries: I)
    where
        I: IntoIterator<Item = (NodeId, MdsId)>,
    {
        self.owners = entries.into_iter().collect();
        self.version += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_namespace::NodeKind;

    fn deep_tree() -> (NamespaceTree, NodeId, NodeId, NodeId) {
        let mut t = NamespaceTree::new();
        let a = t.create(t.root(), "a", NodeKind::Directory).unwrap();
        let b = t.create(a, "b", NodeKind::Directory).unwrap();
        let c = t.create(b, "c", NodeKind::File).unwrap();
        (t, a, b, c)
    }

    #[test]
    fn locate_finds_nearest_indexed_prefix() {
        let (t, _a, b, c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(b, MdsId(2));
        // Looking up c: prefix chain root, a, b, c — b is indexed.
        assert_eq!(idx.locate(&t, c), Some((b, MdsId(2))));
        // Looking up the subtree root itself also resolves.
        assert_eq!(idx.locate(&t, b), Some((b, MdsId(2))));
    }

    #[test]
    fn locate_returns_none_for_global_layer_targets() {
        let (t, a, b, _c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(b, MdsId(0));
        assert_eq!(idx.locate(&t, a), None);
        assert_eq!(idx.locate(&t, t.root()), None);
    }

    #[test]
    fn versions_bump_on_mutation_only() {
        let (_t, a, b, _c) = deep_tree();
        let mut idx = LocalIndex::new();
        assert_eq!(idx.version(), 0);
        idx.insert(a, MdsId(0));
        assert_eq!(idx.version(), 1);
        idx.insert(a, MdsId(1)); // re-registration still bumps
        assert_eq!(idx.version(), 2);
        assert_eq!(idx.remove(b), None);
        assert_eq!(idx.version(), 2, "removing a missing key does not bump");
        assert_eq!(idx.remove(a), Some(MdsId(1)));
        assert_eq!(idx.version(), 3);
    }

    #[test]
    fn replace_all_swaps_contents() {
        let (_t, a, b, _c) = deep_tree();
        let mut idx = LocalIndex::new();
        idx.insert(a, MdsId(0));
        idx.replace_all([(b, MdsId(1))]);
        assert_eq!(idx.owner_of(a), None);
        assert_eq!(idx.owner_of(b), Some(MdsId(1)));
        assert_eq!(idx.len(), 1);
    }
}
