//! Subtree-Allocation: mirror division of local-layer subtrees onto MDSs.

use d2tree_metrics::mirror::mirror_divide;
use d2tree_metrics::{ClusterSpec, MdsId};
use d2tree_namespace::{NamespaceTree, NodeId, Popularity};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::split::GlobalLayer;

/// One local-layer subtree `Δ_i`: its root, the inter node above it, its
/// popularity `s_i` (the total popularity of its root) and its node count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Subtree {
    /// Root of the subtree (a local-layer node).
    pub root: NodeId,
    /// The inter node the subtree hangs off (a global-layer node).
    pub parent: NodeId,
    /// Popularity `s_i` — the rolled-up popularity of `root`.
    pub popularity: f64,
    /// Number of nodes in the subtree.
    pub size: usize,
}

/// Collects the local-layer subtrees `Δ_1..Δ_H` below a global layer.
///
/// # Panics
///
/// In debug builds, panics if `pop` is not rolled up.
#[must_use]
pub fn collect_subtrees(tree: &NamespaceTree, gl: &GlobalLayer, pop: &Popularity) -> Vec<Subtree> {
    let mut subtrees = Vec::new();
    for &inter in &gl.inter_nodes(tree) {
        let node = tree.node(inter).expect("inter nodes are live");
        for (_, child) in node.children() {
            if !gl.contains(child) {
                subtrees.push(Subtree {
                    root: child,
                    parent: inter,
                    popularity: pop.total(child),
                    size: tree.subtree_size(child),
                });
            }
        }
    }
    subtrees
}

/// Full-information mirror division: every subtree's popularity is known
/// exactly, so the cumulative-popularity axis is matched exactly against
/// the cumulative-capacity axis (Fig. 4).
///
/// Returns one [`MdsId`] per subtree, aligned with the input order.
///
/// # Panics
///
/// Panics if the cluster is empty.
#[must_use]
pub fn allocate_full(subtrees: &[Subtree], cluster: &ClusterSpec) -> Vec<MdsId> {
    let weights: Vec<f64> = subtrees.iter().map(|s| s.popularity).collect();
    mirror_divide(&weights, cluster.capacities())
        .into_iter()
        .map(|b| MdsId(b as u16))
        .collect()
}

/// How the sampled allocator draws its subtree sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SampleStrategy {
    /// Uniform with replacement over the pending pool — the idealised
    /// sampling Lemma 1 analyses. Stands in for the full-information
    /// overlay lookups of the paper's reference \[20\].
    Uniform,
    /// A random walk down the namespace: start at the root, descend
    /// uniformly random children until crossing the cut line. Cheap to run
    /// against the real tree but mildly biased towards shallow subtrees;
    /// the ablation bench quantifies the difference.
    TreeWalk,
}

/// Sampled mirror division: each MDS estimates the popularity CDF from
/// `sample_size` sampled subtrees instead of reading all `H` of them.
///
/// The estimated cumulative mass index of subtree `t` is
/// `F̂(s_t) = (sampled mass strictly below s_t + jitter·mass at s_t) /
/// sampled total mass`; the subtree goes to the MDS whose cumulative
/// capacity interval contains the index (Eq. 10). With
/// `sample_size` per Lemma 1 the per-subtree index error is below `δ`
/// w.h.p., and Thm. 3/4 bound the resulting balance error.
///
/// # Panics
///
/// Panics if the cluster is empty or `sample_size == 0` while subtrees are
/// non-empty.
#[must_use]
pub fn allocate_sampled<R: Rng + ?Sized>(
    subtrees: &[Subtree],
    cluster: &ClusterSpec,
    tree: &NamespaceTree,
    gl: &GlobalLayer,
    strategy: SampleStrategy,
    sample_size: usize,
    rng: &mut R,
) -> Vec<MdsId> {
    assert!(!cluster.is_empty(), "cluster must have at least one MDS");
    if subtrees.is_empty() {
        return Vec::new();
    }
    assert!(sample_size > 0, "sample_size must be positive");

    let sample: Vec<f64> = match strategy {
        SampleStrategy::Uniform => (0..sample_size)
            .map(|_| subtrees[rng.gen_range(0..subtrees.len())].popularity)
            .collect(),
        SampleStrategy::TreeWalk => (0..sample_size)
            .map(|_| tree_walk_sample(tree, gl, subtrees, rng))
            .collect(),
    };
    let sample_total: f64 = sample.iter().sum();

    // Cumulative capacity boundaries.
    let total_cap = cluster.total_capacity();
    let mut cap_bounds: Vec<f64> = Vec::with_capacity(cluster.len());
    let mut acc = 0.0;
    for &c in cluster.capacities() {
        acc += c / total_cap;
        cap_bounds.push(acc);
    }
    *cap_bounds.last_mut().expect("non-empty cluster") = 1.0;

    let mut sorted_sample = sample;
    sorted_sample.sort_by(f64::total_cmp);

    subtrees
        .iter()
        .map(|s| {
            let below = sorted_sample.partition_point(|&w| w < s.popularity);
            let at_or_below = sorted_sample.partition_point(|&w| w <= s.popularity);
            let mass_below: f64 = sorted_sample[..below].iter().sum();
            let mass_at: f64 = sorted_sample[below..at_or_below].iter().sum();
            let jitter: f64 = rng.gen_range(0.0..1.0);
            let index = if sample_total > 0.0 {
                (mass_below + jitter * mass_at) / sample_total
            } else {
                jitter
            };
            let bucket = cap_bounds
                .partition_point(|&b| b < index)
                .min(cluster.len() - 1);
            MdsId(bucket as u16)
        })
        .collect()
}

/// One random-walk draw: descend from the root through uniformly random
/// children until leaving the global layer, returning that subtree's
/// popularity. Falls back to a uniform draw if the walk dead-ends inside
/// the layer (an inter-node-free branch).
fn tree_walk_sample<R: Rng + ?Sized>(
    tree: &NamespaceTree,
    gl: &GlobalLayer,
    subtrees: &[Subtree],
    rng: &mut R,
) -> f64 {
    let mut cur = tree.root();
    for _ in 0..tree.max_depth() + 1 {
        let node = match tree.node(cur) {
            Some(n) => n,
            None => break,
        };
        let kids: Vec<NodeId> = node.children().map(|(_, id)| id).collect();
        if kids.is_empty() {
            break;
        }
        let next = kids[rng.gen_range(0..kids.len())];
        if !gl.contains(next) {
            // Crossed the cut line: `next` is a subtree root.
            if let Some(s) = subtrees.iter().find(|s| s.root == next) {
                return s.popularity;
            }
            break;
        }
        cur = next;
    }
    subtrees[rng.gen_range(0..subtrees.len())].popularity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::split_to_proportion;
    use d2tree_metrics::mirror::bucket_loads;
    use d2tree_workload::{TraceProfile, WorkloadBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> (NamespaceTree, Popularity, GlobalLayer, Vec<Subtree>) {
        let w = WorkloadBuilder::new(
            TraceProfile::dtr()
                .with_nodes(3_000)
                .with_operations(60_000),
        )
        .seed(2)
        .build();
        let pop = w.popularity();
        let (gl, _) = split_to_proportion(&w.tree, &pop, |_| 0.0, 0.01);
        let subtrees = collect_subtrees(&w.tree, &gl, &pop);
        (w.tree, pop, gl, subtrees)
    }

    #[test]
    fn subtrees_partition_the_local_layer() {
        let (tree, _pop, gl, subtrees) = workload();
        let covered: usize = subtrees.iter().map(|s| s.size).sum();
        assert_eq!(covered + gl.len(), tree.node_count());
        for s in &subtrees {
            assert!(gl.contains(s.parent), "parent must be an inter node");
            assert!(!gl.contains(s.root), "root must be in the local layer");
        }
    }

    #[test]
    fn full_allocation_balances_proportionally() {
        let (_tree, _pop, _gl, subtrees) = workload();
        let cluster = ClusterSpec::homogeneous(4, 100.0);
        let owners = allocate_full(&subtrees, &cluster);
        assert_eq!(owners.len(), subtrees.len());
        let weights: Vec<f64> = subtrees.iter().map(|s| s.popularity).collect();
        let buckets: Vec<usize> = owners.iter().map(|m| m.index()).collect();
        let loads = bucket_loads(&weights, &buckets, 4);
        let total: f64 = loads.iter().sum();
        let heaviest_subtree = weights.iter().cloned().fold(0.0_f64, f64::max);
        for l in &loads {
            // Each server's load is within one subtree granule of ideal.
            assert!((l - total / 4.0).abs() <= heaviest_subtree + 1e-9);
        }
    }

    #[test]
    fn sampled_allocation_close_to_full() {
        let (tree, _pop, gl, subtrees) = workload();
        let cluster = ClusterSpec::homogeneous(4, 100.0);
        let mut rng = StdRng::seed_from_u64(3);
        let owners = allocate_sampled(
            &subtrees,
            &cluster,
            &tree,
            &gl,
            SampleStrategy::Uniform,
            2_000,
            &mut rng,
        );
        let weights: Vec<f64> = subtrees.iter().map(|s| s.popularity).collect();
        let buckets: Vec<usize> = owners.iter().map(|m| m.index()).collect();
        let loads = bucket_loads(&weights, &buckets, 4);
        let total: f64 = loads.iter().sum();
        let heaviest = weights.iter().cloned().fold(0.0_f64, f64::max);
        for l in &loads {
            // Subtrees are indivisible, so even a perfect allocator can miss
            // the ideal by one heaviest-subtree granule; the sampling adds a
            // small CDF-estimation error on top.
            let slack = heaviest + 0.1 * total;
            assert!(
                (l - total / 4.0).abs() <= slack,
                "sampled load {l} too far from ideal {} (slack {slack})",
                total / 4.0
            );
        }
    }

    #[test]
    fn tree_walk_strategy_produces_complete_assignment() {
        let (tree, _pop, gl, subtrees) = workload();
        let cluster = ClusterSpec::homogeneous(3, 100.0);
        let mut rng = StdRng::seed_from_u64(4);
        let owners = allocate_sampled(
            &subtrees,
            &cluster,
            &tree,
            &gl,
            SampleStrategy::TreeWalk,
            500,
            &mut rng,
        );
        assert_eq!(owners.len(), subtrees.len());
        assert!(owners.iter().all(|m| m.index() < 3));
    }

    #[test]
    fn heterogeneous_capacities_respected() {
        let (_tree, _pop, _gl, subtrees) = workload();
        let cluster = ClusterSpec::new(vec![100.0, 300.0]);
        let owners = allocate_full(&subtrees, &cluster);
        let weights: Vec<f64> = subtrees.iter().map(|s| s.popularity).collect();
        let buckets: Vec<usize> = owners.iter().map(|m| m.index()).collect();
        let loads = bucket_loads(&weights, &buckets, 2);
        assert!(
            loads[1] > loads[0],
            "the 3x-capacity server takes more load"
        );
    }

    #[test]
    fn empty_subtrees_allocate_to_nothing() {
        let cluster = ClusterSpec::homogeneous(2, 1.0);
        assert!(allocate_full(&[], &cluster).is_empty());
        let tree = NamespaceTree::new();
        let pop = Popularity::new(&tree);
        let (gl, _) = split_to_proportion(&tree, &pop, |_| 0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let owners = allocate_sampled(
            &[],
            &cluster,
            &tree,
            &gl,
            SampleStrategy::Uniform,
            10,
            &mut rng,
        );
        assert!(owners.is_empty());
    }
}
