//! Tree-Splitting (Alg. 1): greedy global-layer selection.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

use d2tree_namespace::{NamespaceTree, NodeId, Popularity};
use serde::{Deserialize, Serialize};

/// The constraints of Alg. 1: a minimum system locality `L0` and a maximum
/// global-layer update cost `U0` (Eq. 6).
///
/// Locality is the Def. 3 value `1 / Σ_{LL} p_j` under the D2-Tree
/// convention of Eq. 7, so larger `min_locality` forces more nodes into the
/// global layer, while smaller `max_update` caps how many can go in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitBounds {
    /// `L0`: the locality value the split must reach (`locality ≥ L0`).
    pub min_locality: f64,
    /// `U0`: the update-cost budget the global layer must stay under.
    pub max_update: f64,
}

/// The bounds implied by a proportion-driven split: the locality actually
/// achieved and the update cost actually spent (the two curves of Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpliedBounds {
    /// Achieved locality value `1 / Σ_{LL} p_j`.
    pub locality: f64,
    /// Accumulated global-layer update cost.
    pub update_cost: f64,
    /// Number of global-layer nodes.
    pub global_nodes: usize,
}

impl SplitBounds {
    /// Derives the `(L0, U0)` pair that makes Alg. 1 produce a layer of
    /// the given node proportion — the paper's calibration step ("we chose
    /// proper `U0` and `L0` to make global layer account for 1% nodes").
    ///
    /// The returned bounds are feasible by construction: running
    /// [`tree_split`] with them succeeds, meets `L0`, and admits at least
    /// the nodes of the proportion split (exactly those when every node
    /// has positive update cost; zero-cost nodes may ride along for
    /// free).
    ///
    /// # Panics
    ///
    /// Panics if `proportion` is outside `(0, 1]`.
    pub fn for_proportion<F>(
        tree: &NamespaceTree,
        pop: &Popularity,
        update_of: F,
        proportion: f64,
    ) -> SplitBounds
    where
        F: FnMut(NodeId) -> f64,
    {
        let (_, implied) = split_to_proportion(tree, pop, update_of, proportion);
        SplitBounds {
            min_locality: implied.locality,
            // The budget must strictly exceed the spend (Alg. 1 refuses an
            // admission that *reaches* the budget).
            max_update: implied.update_cost.max(f64::MIN_POSITIVE) * (1.0 + 1e-9)
                + f64::MIN_POSITIVE,
        }
    }
}

/// Failure of Alg. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SplitError {
    /// The update budget `U0` was exhausted before the locality bound `L0`
    /// could be met — Alg. 1's "return {}" case.
    Infeasible {
        /// Locality value reached when the budget ran out.
        achieved_locality: f64,
    },
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::Infeasible { achieved_locality } => write!(
                f,
                "update budget exhausted before locality bound was met (reached {achieved_locality:.3e})"
            ),
        }
    }
}

impl Error for SplitError {}

/// The replicated upper half of the namespace: membership set plus the
/// greedy inclusion order.
///
/// Invariant: the global layer is *closed under parents* — if a node is in
/// it, so are all its ancestors. Alg. 1 guarantees this because it only
/// ever admits children of members.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalLayer {
    member: Vec<bool>,
    order: Vec<NodeId>,
}

impl GlobalLayer {
    fn with_root(tree: &NamespaceTree) -> Self {
        let mut member = vec![false; tree.arena_size()];
        member[tree.root().index()] = true;
        GlobalLayer {
            member,
            order: vec![tree.root()],
        }
    }

    /// Whether `id` is in the global layer.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.member.get(id.index()).copied().unwrap_or(false)
    }

    /// Number of global-layer nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// A global layer always contains at least the root.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Members in greedy inclusion order (root first).
    #[must_use]
    pub fn members(&self) -> &[NodeId] {
        &self.order
    }

    /// The *inter nodes*: global-layer nodes with at least one child in the
    /// local layer (the yellow nodes of Fig. 2).
    #[must_use]
    pub fn inter_nodes(&self, tree: &NamespaceTree) -> Vec<NodeId> {
        self.order
            .iter()
            .copied()
            .filter(|&id| {
                tree.node(id)
                    .map(|n| n.children().any(|(_, c)| !self.contains(c)))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Roots of the local-layer subtrees `Δ_1..Δ_H`: children of
    /// global-layer nodes that are themselves outside the layer.
    #[must_use]
    pub fn subtree_roots(&self, tree: &NamespaceTree) -> Vec<NodeId> {
        let mut roots = Vec::new();
        for &id in &self.order {
            if let Some(node) = tree.node(id) {
                for (_, child) in node.children() {
                    if !self.contains(child) {
                        roots.push(child);
                    }
                }
            }
        }
        roots
    }

    /// The Eq. 7 locality denominator `Σ_{n_j ∈ LL} p_j`.
    #[must_use]
    pub fn locality_denominator(&self, tree: &NamespaceTree, pop: &Popularity) -> f64 {
        tree.nodes()
            .filter(|(id, _)| !self.contains(*id))
            .map(|(id, _)| pop.total(id))
            .sum()
    }

    /// The Eq. 7 locality value `1 / Σ_{LL} p_j`; infinite when the whole
    /// tree is in the global layer.
    #[must_use]
    pub fn locality_value(&self, tree: &NamespaceTree, pop: &Popularity) -> f64 {
        let d = self.locality_denominator(tree, pop);
        if d > 0.0 {
            1.0 / d
        } else {
            f64::INFINITY
        }
    }

    /// Checks the closed-under-parents invariant (used by tests).
    #[must_use]
    pub fn is_closed_under_parents(&self, tree: &NamespaceTree) -> bool {
        self.order.iter().all(|&id| {
            tree.node(id)
                .and_then(|n| n.parent())
                .map(|p| self.contains(p))
                .unwrap_or(true) // the root has no parent
        })
    }
}

/// Max-heap entry ordered by total popularity, ties broken by smaller
/// `NodeId` for determinism.
#[derive(Debug, PartialEq)]
struct Candidate {
    p: f64,
    id: NodeId,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.p
            .total_cmp(&other.p)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Greedy split driven by a stop condition on `(gl, next_candidate)`.
fn greedy_split<F, S>(
    tree: &NamespaceTree,
    pop: &Popularity,
    mut update_of: F,
    mut stop: S,
) -> (GlobalLayer, f64, f64)
where
    F: FnMut(NodeId) -> f64,
    S: FnMut(&GlobalLayer, f64 /* u_after */, f64 /* l_after */) -> bool,
{
    let mut gl = GlobalLayer::with_root(tree);
    let mut heap = BinaryHeap::new();
    let root = tree.root();
    if let Some(node) = tree.node(root) {
        for (_, c) in node.children() {
            heap.push(Candidate {
                p: pop.total(c),
                id: c,
            });
        }
    }
    // Eq. 7 denominator with GL = {root}: every node except the root.
    let mut l_tmp: f64 = tree
        .nodes()
        .filter(|(id, _)| *id != root)
        .map(|(id, _)| pop.total(id))
        .sum();
    let mut u_tmp = 0.0;

    while let Some(Candidate { p, id }) = heap.pop() {
        let u_after = u_tmp + update_of(id);
        let l_after = l_tmp - p;
        if stop(&gl, u_after, l_after) {
            break;
        }
        u_tmp = u_after;
        l_tmp = l_after;
        gl.member[id.index()] = true;
        gl.order.push(id);
        if let Some(node) = tree.node(id) {
            for (_, c) in node.children() {
                heap.push(Candidate {
                    p: pop.total(c),
                    id: c,
                });
            }
        }
    }
    (gl, u_tmp, l_tmp)
}

/// Alg. 1 — Tree-Splitting.
///
/// From the root downwards, repeatedly admit the frontier node with the
/// largest total popularity into the global layer, accumulating its update
/// cost, until the update budget `U0` would be exceeded. Then verify the
/// locality bound `L0` is met.
///
/// `update_of` supplies the per-node update cost `u_j` (commonly the
/// node's update-operation rate; the replication factor can be folded in
/// by the caller).
///
/// Deviation from the paper's listing: the listing initialises the
/// locality accumulator to `Σp` including the root even though the root is
/// already in the global layer; we start from `Σp − p_root` so the
/// accumulator equals Eq. 7's denominator at every step.
///
/// # Errors
///
/// [`SplitError::Infeasible`] when `U0` is exhausted before the locality
/// value reaches `L0` (the listing's "return {}" branch).
///
/// # Panics
///
/// In debug builds, panics if `pop` is not rolled up.
pub fn tree_split<F>(
    tree: &NamespaceTree,
    pop: &Popularity,
    update_of: F,
    bounds: SplitBounds,
) -> Result<GlobalLayer, SplitError>
where
    F: FnMut(NodeId) -> f64,
{
    // Alg. 1 admits as long as the update budget lasts (more global layer
    // only improves locality) and checks the locality bound at the end.
    let target_denominator = if bounds.min_locality > 0.0 {
        1.0 / bounds.min_locality
    } else {
        f64::INFINITY
    };
    let (gl, _u, l) = greedy_split(tree, pop, update_of, |_, u_after, _| {
        u_after >= bounds.max_update
    });
    let achieved = if l > 0.0 { 1.0 / l } else { f64::INFINITY };
    if l > target_denominator {
        Err(SplitError::Infeasible {
            achieved_locality: achieved,
        })
    } else {
        Ok(gl)
    }
}

/// Proportion-driven split: grow the global layer until it holds
/// `proportion` of all live nodes, and report the implied `L0` / `U0`.
///
/// This is the experimental knob of Sec. VI-C ("we chose proper `U0` and
/// `L0` to make global layer account for 1% nodes of the whole namespace
/// tree") and the generator of Fig. 8's two curves.
///
/// # Panics
///
/// Panics if `proportion` is not within `(0, 1]`.
pub fn split_to_proportion<F>(
    tree: &NamespaceTree,
    pop: &Popularity,
    update_of: F,
    proportion: f64,
) -> (GlobalLayer, ImpliedBounds)
where
    F: FnMut(NodeId) -> f64,
{
    assert!(
        proportion > 0.0 && proportion <= 1.0,
        "global-layer proportion must be in (0, 1], got {proportion}"
    );
    let target = ((tree.node_count() as f64 * proportion).ceil() as usize).max(1);
    let (gl, u, l) = greedy_split(tree, pop, update_of, |gl, _, _| gl.len() >= target);
    let locality = if l > 0.0 { 1.0 / l } else { f64::INFINITY };
    let implied = ImpliedBounds {
        locality,
        update_cost: u,
        global_nodes: gl.len(),
    };
    (gl, implied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_namespace::NodeKind;

    /// root -> {hot (100), cold (1)}; hot -> {h1 (60), h2 (30)}.
    fn skewed_tree() -> (NamespaceTree, Popularity, [NodeId; 5]) {
        let mut t = NamespaceTree::new();
        let hot = t.create(t.root(), "hot", NodeKind::Directory).unwrap();
        let cold = t.create(t.root(), "cold", NodeKind::Directory).unwrap();
        let h1 = t.create(hot, "h1", NodeKind::File).unwrap();
        let h2 = t.create(hot, "h2", NodeKind::File).unwrap();
        let mut pop = Popularity::new(&t);
        pop.record(hot, 10.0);
        pop.record(cold, 1.0);
        pop.record(h1, 60.0);
        pop.record(h2, 30.0);
        pop.rollup(&t);
        let root = t.root();
        (t, pop, [root, hot, cold, h1, h2])
    }

    #[test]
    fn greedy_admits_by_total_popularity() {
        let (t, pop, [root, hot, _cold, h1, _h2]) = skewed_tree();
        // Budget for exactly two admissions at cost 1 each.
        let (gl, implied) = split_to_proportion(&t, &pop, |_| 1.0, 3.0 / 5.0);
        assert_eq!(implied.global_nodes, 3);
        assert!(gl.contains(root));
        assert!(gl.contains(hot), "hot subtree root (p=100) admitted first");
        assert!(gl.contains(h1), "h1 (p=60) admitted second");
        assert!(gl.is_closed_under_parents(&t));
    }

    #[test]
    fn split_respects_update_budget() {
        let (t, pop, _) = skewed_tree();
        // Each admission costs 1; budget 2 admits exactly one node
        // (the second would reach the budget and is refused).
        let bounds = SplitBounds {
            min_locality: 0.0,
            max_update: 2.0,
        };
        let gl = tree_split(&t, &pop, |_| 1.0, bounds).unwrap();
        assert_eq!(gl.len(), 2); // root + 1
    }

    #[test]
    fn split_fails_when_bounds_conflict() {
        let (t, pop, _) = skewed_tree();
        let err = tree_split(
            &t,
            &pop,
            |_| 1_000.0, // any admission blows the budget
            SplitBounds {
                min_locality: 1.0,
                max_update: 1.0,
            },
        )
        .unwrap_err();
        let SplitError::Infeasible { achieved_locality } = err;
        assert!(achieved_locality < 1.0);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn locality_denominator_matches_eq7() {
        let (t, pop, [_, hot, cold, h1, h2]) = skewed_tree();
        let (gl, implied) = split_to_proportion(&t, &pop, |_| 0.0, 2.0 / 5.0);
        // GL = {root, hot}; LL = {cold, h1, h2} with totals 1 + 60 + 30.
        assert!(gl.contains(hot));
        assert!(!gl.contains(cold));
        let denom = gl.locality_denominator(&t, &pop);
        assert_eq!(denom, pop.total(cold) + pop.total(h1) + pop.total(h2));
        assert!((implied.locality - 1.0 / denom).abs() < 1e-15);
    }

    #[test]
    fn inter_nodes_and_subtree_roots() {
        let (t, pop, [root, hot, cold, h1, h2]) = skewed_tree();
        let (gl, _) = split_to_proportion(&t, &pop, |_| 0.0, 2.0 / 5.0);
        // GL = {root, hot}: root still has LL child `cold`, hot has both
        // children in LL.
        let inter = gl.inter_nodes(&t);
        assert!(inter.contains(&root));
        assert!(inter.contains(&hot));
        let mut roots = gl.subtree_roots(&t);
        roots.sort();
        let mut expect = vec![cold, h1, h2];
        expect.sort();
        assert_eq!(roots, expect);
    }

    #[test]
    fn full_tree_gl_has_infinite_locality() {
        let (t, pop, _) = skewed_tree();
        let (gl, implied) = split_to_proportion(&t, &pop, |_| 0.0, 1.0);
        assert_eq!(gl.len(), t.node_count());
        assert!(implied.locality.is_infinite());
        assert!(gl.subtree_roots(&t).is_empty());
        assert!(gl.inter_nodes(&t).is_empty());
    }

    #[test]
    fn update_cost_grows_with_proportion() {
        let (t, pop, _) = skewed_tree();
        let (_, small) = split_to_proportion(&t, &pop, |_| 1.0, 0.4);
        let (_, large) = split_to_proportion(&t, &pop, |_| 1.0, 1.0);
        assert!(large.update_cost > small.update_cost);
        assert!(large.locality >= small.locality);
    }

    #[test]
    fn derived_bounds_are_feasible() {
        let (t, pop, _) = skewed_tree();
        let update_of = |id: NodeId| pop.individual(id).max(0.1);
        let bounds = SplitBounds::for_proportion(&t, &pop, update_of, 0.4);
        let gl = tree_split(&t, &pop, update_of, bounds).expect("derived bounds feasible");
        let (by_prop, _) = split_to_proportion(&t, &pop, update_of, 0.4);
        assert!(gl.len() >= by_prop.len());
        assert!(gl.locality_value(&t, &pop) >= bounds.min_locality);
        for &id in by_prop.members() {
            assert!(gl.contains(id), "proportion-split member {id} missing");
        }
    }

    #[test]
    #[should_panic(expected = "proportion")]
    fn zero_proportion_panics() {
        let (t, pop, _) = skewed_tree();
        let _ = split_to_proportion(&t, &pop, |_| 0.0, 0.0);
    }
}
