//! Dynamic-Adjustment: heartbeat-driven rebalancing through the Monitor's
//! pending pool, plus periodic global-layer re-cuts.

use std::sync::Arc;

use d2tree_metrics::{ClusterSpec, MdsId, Migration};
use d2tree_namespace::{NamespaceTree, NodeId, Popularity};
use d2tree_telemetry::{EventJournal, EventKind};
use serde::{Deserialize, Serialize};

use crate::allocate::Subtree;
use crate::split::{split_to_proportion, GlobalLayer};

/// Periodic load report an MDS sends the Monitor (Sec. IV-B): current load
/// `L_k`; the Monitor derives the relative capacity `Re_k = L_k − μ·C_k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Reporting server.
    pub mds: MdsId,
    /// Its current load.
    pub load: f64,
}

/// A shed subtree waiting in the Monitor's pending pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolEntry {
    /// The shed subtree.
    pub subtree: Subtree,
    /// The overloaded server that shed it.
    pub from: MdsId,
}

/// The Monitor's pending pool: subtrees shed by overloaded servers,
/// waiting for light servers to claim them (Sec. IV-B).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PendingPool {
    entries: Vec<PoolEntry>,
}

impl PendingPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pooled subtrees.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total popularity waiting in the pool.
    #[must_use]
    pub fn total_popularity(&self) -> f64 {
        self.entries.iter().map(|e| e.subtree.popularity).sum()
    }

    /// Offers a shed subtree to the pool.
    pub fn offer(&mut self, entry: PoolEntry) {
        self.entries.push(entry);
    }

    /// The pooled entries, in offer order.
    #[must_use]
    pub fn entries(&self) -> &[PoolEntry] {
        &self.entries
    }

    /// Drains the whole pool.
    pub fn drain_all(&mut self) -> Vec<PoolEntry> {
        std::mem::take(&mut self.entries)
    }
}

/// Thresholds governing when servers shed and claim (our concretisation of
/// the paper's "relatively overloaded" / "lightly loaded" language).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdjustPolicy {
    /// A server sheds once `L_k > overload_factor · I_k`.
    pub overload_factor: f64,
    /// Shedding stops once the load is back at `shed_target · I_k`.
    pub shed_target: f64,
}

impl Default for AdjustPolicy {
    fn default() -> Self {
        // 5% hysteresis above ideal triggers shedding, shed back to ideal.
        AdjustPolicy {
            overload_factor: 1.05,
            shed_target: 1.0,
        }
    }
}

/// The Monitor-side rebalancing engine: accepts heartbeats, tells
/// overloaded servers what to shed, and assigns the pending pool to light
/// servers by mirror division of the pool CDF against the deficit CDF.
#[derive(Debug, Clone, Default)]
pub struct DynamicAdjuster {
    policy: AdjustPolicy,
    pool: PendingPool,
    journal: Option<Arc<EventJournal>>,
}

impl DynamicAdjuster {
    /// Creates an adjuster with the given policy.
    #[must_use]
    pub fn new(policy: AdjustPolicy) -> Self {
        DynamicAdjuster {
            policy,
            pool: PendingPool::new(),
            journal: None,
        }
    }

    /// Attaches a telemetry journal; every shed and claim the adjuster
    /// decides is then recorded as a structured event (with subtree size
    /// and popularity).
    #[must_use]
    pub fn with_journal(mut self, journal: Arc<EventJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The current pending pool.
    #[must_use]
    pub fn pool(&self) -> &PendingPool {
        &self.pool
    }

    /// One full adjustment round.
    ///
    /// `owned` lists every local-layer subtree with its current owner;
    /// loads are derived from subtree popularity (the replicated global
    /// layer adds the same share to every server, so it cancels out of the
    /// balance decision). Returns the migrations light servers should
    /// execute; the pool is left empty unless no server had spare ideal
    /// capacity.
    #[must_use]
    pub fn rebalance(
        &mut self,
        owned: &[(Subtree, MdsId)],
        cluster: &ClusterSpec,
    ) -> Vec<Migration> {
        let m = cluster.len();
        let mut loads = vec![0.0; m];
        for (s, owner) in owned {
            loads[owner.index()] += s.popularity;
        }
        let total: f64 = loads.iter().sum();
        if total <= 0.0 {
            return Vec::new();
        }
        let mu = cluster.ideal_load_factor(total);

        // Phase 1: overloaded servers shed into the pending pool.
        // Greedy best-fit: shed the largest subtree that fits the excess;
        // when nothing fits, shed the smallest to still make progress.
        for mds in cluster.ids() {
            let ideal = mu * cluster.capacity(mds);
            if loads[mds.index()] <= self.policy.overload_factor * ideal {
                continue;
            }
            let mut mine: Vec<&(Subtree, MdsId)> =
                owned.iter().filter(|(_, o)| *o == mds).collect();
            mine.sort_by(|a, b| b.0.popularity.total_cmp(&a.0.popularity));
            let target = self.policy.shed_target * ideal;
            let mut load = loads[mds.index()];
            let mut i = 0;
            while load > target && !mine.is_empty() {
                let excess = load - target;
                // First subtree (scanning big → small) that fits the excess;
                // otherwise the smallest one.
                let pick = mine[i..]
                    .iter()
                    .position(|(s, _)| s.popularity <= excess)
                    .map(|off| i + off)
                    .unwrap_or(mine.len() - 1);
                let (subtree, _) = *mine.remove(pick);
                i = pick.min(mine.len().saturating_sub(1));
                load -= subtree.popularity;
                if let Some(journal) = &self.journal {
                    journal.record(EventKind::SubtreeShed {
                        from: mds.0,
                        subtree: subtree.root.index() as u64,
                        size: subtree.size as u64,
                        popularity: subtree.popularity,
                    });
                }
                self.pool.offer(PoolEntry { subtree, from: mds });
                if pick == mine.len() {
                    break; // shed the smallest; nothing else can help
                }
            }
            loads[mds.index()] = load;
        }

        if self.pool.is_empty() {
            return Vec::new();
        }

        // Phase 2: light servers claim from the pool proportionally to
        // their deficit (Eq. 10's mirror interval, with remaining capacity
        // R_k = deficit below ideal).
        let deficits: Vec<f64> = cluster
            .ids()
            .map(|mds| (mu * cluster.capacity(mds) - loads[mds.index()]).max(0.0))
            .collect();
        if deficits.iter().sum::<f64>() <= 0.0 {
            // Nobody can take anything; keep the pool for the next round.
            return Vec::new();
        }
        let entries = self.pool.drain_all();
        let weights: Vec<f64> = entries.iter().map(|e| e.subtree.popularity).collect();
        let buckets = d2tree_metrics::mirror::mirror_divide(&weights, &deficits);
        entries
            .into_iter()
            .zip(buckets)
            .filter(|(e, b)| e.from != MdsId(*b as u16))
            .map(|(e, b)| {
                let to = MdsId(b as u16);
                if let Some(journal) = &self.journal {
                    journal.record(EventKind::SubtreeClaimed {
                        to: to.0,
                        subtree: e.subtree.root.index() as u64,
                        size: e.subtree.size as u64,
                        popularity: e.subtree.popularity,
                    });
                }
                Migration {
                    node: e.subtree.root,
                    from: e.from,
                    to,
                }
            })
            .collect()
    }
}

/// A planned global-layer re-cut (the infrequent adjustment of Sec. IV-B —
/// "typically once a day in our experiments").
#[derive(Debug, Clone, PartialEq)]
pub struct RecutPlan {
    /// The new global layer.
    pub new_layer: GlobalLayer,
    /// Nodes promoted from the local into the global layer.
    pub promoted: Vec<NodeId>,
    /// Nodes demoted from the global into the local layer.
    pub demoted: Vec<NodeId>,
}

impl RecutPlan {
    /// Number of nodes whose layer changes.
    #[must_use]
    pub fn churn(&self) -> usize {
        self.promoted.len() + self.demoted.len()
    }

    /// Records this re-cut in a telemetry journal as a
    /// [`EventKind::GlRecut`] event.
    pub fn record_to(&self, journal: &EventJournal) {
        journal.record(EventKind::GlRecut {
            promoted: self.promoted.len() as u64,
            demoted: self.demoted.len() as u64,
            churn: self.churn() as u64,
        });
    }
}

/// Recomputes the global layer against current (decayed) popularity and
/// diffs it against the old layer.
///
/// # Panics
///
/// Panics if `proportion` is outside `(0, 1]`; in debug builds, panics if
/// `pop` is not rolled up.
#[must_use]
pub fn plan_recut<F>(
    tree: &NamespaceTree,
    pop: &Popularity,
    update_of: F,
    proportion: f64,
    old: &GlobalLayer,
) -> RecutPlan
where
    F: FnMut(NodeId) -> f64,
{
    let (new_layer, _) = split_to_proportion(tree, pop, update_of, proportion);
    let promoted = new_layer
        .members()
        .iter()
        .copied()
        .filter(|&id| !old.contains(id))
        .collect();
    let demoted = old
        .members()
        .iter()
        .copied()
        .filter(|&id| !new_layer.contains(id))
        .collect();
    RecutPlan {
        new_layer,
        promoted,
        demoted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subtree(idx: u32, popularity: f64) -> Subtree {
        Subtree {
            root: NodeId::from_index(idx as usize + 1),
            parent: NodeId::ROOT,
            popularity,
            size: 1,
        }
    }

    #[test]
    fn balanced_cluster_produces_no_migrations() {
        let cluster = ClusterSpec::homogeneous(2, 100.0);
        let owned = vec![(subtree(0, 10.0), MdsId(0)), (subtree(1, 10.0), MdsId(1))];
        let mut adj = DynamicAdjuster::new(AdjustPolicy::default());
        assert!(adj.rebalance(&owned, &cluster).is_empty());
        assert!(adj.pool().is_empty());
    }

    #[test]
    fn overload_sheds_to_light_server() {
        let cluster = ClusterSpec::homogeneous(2, 100.0);
        let owned = vec![
            (subtree(0, 10.0), MdsId(0)),
            (subtree(1, 10.0), MdsId(0)),
            (subtree(2, 10.0), MdsId(0)),
            (subtree(3, 10.0), MdsId(0)),
        ];
        let mut adj = DynamicAdjuster::new(AdjustPolicy::default());
        let migrations = adj.rebalance(&owned, &cluster);
        assert!(!migrations.is_empty());
        assert!(migrations
            .iter()
            .all(|m| m.from == MdsId(0) && m.to == MdsId(1)));
        // Shedding should move about half the load.
        let moved: f64 = migrations
            .iter()
            .map(|m| {
                owned
                    .iter()
                    .find(|(s, _)| s.root == m.node)
                    .unwrap()
                    .0
                    .popularity
            })
            .sum();
        assert!((moved - 20.0).abs() < 10.0 + 1e-9);
    }

    #[test]
    fn heterogeneous_ideal_respected() {
        // Server 1 has 3x the capacity: a 25/75 split is ideal for a total
        // of 100.
        let cluster = ClusterSpec::new(vec![100.0, 300.0]);
        let owned = vec![
            (subtree(0, 50.0), MdsId(0)),
            (subtree(1, 25.0), MdsId(0)),
            (subtree(2, 25.0), MdsId(1)),
        ];
        let mut adj = DynamicAdjuster::new(AdjustPolicy::default());
        let migrations = adj.rebalance(&owned, &cluster);
        assert!(migrations.iter().all(|m| m.to == MdsId(1)));
        assert!(!migrations.is_empty());
    }

    #[test]
    fn pool_is_retained_when_nobody_can_claim() {
        // Two servers, both overloaded relative to a tiny third: shedding
        // happens, but if every candidate claimer is itself at ideal the
        // pool keeps the entries for the next round instead of dropping
        // them.
        let cluster = ClusterSpec::new(vec![100.0, 100.0]);
        // Each server carries exactly one huge indivisible subtree plus
        // one small one; ideals are met only by trading the small ones.
        let owned = vec![
            (subtree(0, 90.0), MdsId(0)),
            (subtree(1, 10.0), MdsId(0)),
            (subtree(2, 50.0), MdsId(1)),
        ];
        let mut adj = DynamicAdjuster::new(AdjustPolicy::default());
        let migrations = adj.rebalance(&owned, &cluster);
        // Whatever was shed was either claimed by mds1 (deficit 25) or
        // retained; no migration may target the overloaded mds0.
        assert!(migrations.iter().all(|m| m.to == MdsId(1)));
        // A second round from a balanced state neither sheds nor claims.
        let rebalanced: Vec<(Subtree, MdsId)> = owned
            .iter()
            .map(|&(s, o)| {
                let moved = migrations.iter().find(|m| m.node == s.root);
                (s, moved.map_or(o, |m| m.to))
            })
            .collect();
        let second = adj.rebalance(&rebalanced, &cluster);
        assert!(
            second.len() <= 1,
            "should be settled or nearly so: {second:?}"
        );
    }

    #[test]
    fn empty_load_is_a_noop() {
        let cluster = ClusterSpec::homogeneous(3, 10.0);
        let mut adj = DynamicAdjuster::new(AdjustPolicy::default());
        assert!(adj.rebalance(&[], &cluster).is_empty());
    }

    #[test]
    fn pool_accounting() {
        let mut pool = PendingPool::new();
        assert!(pool.is_empty());
        pool.offer(PoolEntry {
            subtree: subtree(0, 5.0),
            from: MdsId(0),
        });
        pool.offer(PoolEntry {
            subtree: subtree(1, 7.0),
            from: MdsId(1),
        });
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.total_popularity(), 12.0);
        let drained = pool.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(pool.is_empty());
    }

    #[test]
    fn journal_records_sheds_and_claims_with_size_and_popularity() {
        let journal = Arc::new(EventJournal::new(64));
        let cluster = ClusterSpec::homogeneous(2, 100.0);
        let owned = vec![
            (subtree(0, 10.0), MdsId(0)),
            (subtree(1, 10.0), MdsId(0)),
            (subtree(2, 10.0), MdsId(0)),
            (subtree(3, 10.0), MdsId(0)),
        ];
        let mut adj =
            DynamicAdjuster::new(AdjustPolicy::default()).with_journal(Arc::clone(&journal));
        let migrations = adj.rebalance(&owned, &cluster);
        assert!(!migrations.is_empty());
        let events = journal.snapshot();
        let sheds: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::SubtreeShed {
                    from,
                    size,
                    popularity,
                    ..
                } => Some((from, size, popularity)),
                _ => None,
            })
            .collect();
        assert!(!sheds.is_empty());
        assert!(sheds
            .iter()
            .all(|&(from, size, pop)| from == 0 && size == 1 && pop == 10.0));
        let claims = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SubtreeClaimed { to: 1, .. }))
            .count();
        assert_eq!(claims, migrations.len());
    }

    #[test]
    fn recut_tracks_popularity_drift() {
        use d2tree_namespace::NodeKind;
        let mut t = NamespaceTree::new();
        let a = t.create(t.root(), "a", NodeKind::Directory).unwrap();
        let b = t.create(t.root(), "b", NodeKind::Directory).unwrap();
        let mut pop = Popularity::new(&t);
        pop.record(a, 100.0);
        pop.record(b, 1.0);
        pop.rollup(&t);
        let (old, _) = split_to_proportion(&t, &pop, |_| 0.0, 0.5);
        assert!(old.contains(a));
        assert!(!old.contains(b));

        // Popularity flips.
        pop.set_individual(a, 1.0);
        pop.set_individual(b, 100.0);
        pop.rollup(&t);
        let plan = plan_recut(&t, &pop, |_| 0.0, 0.5, &old);
        assert_eq!(plan.promoted, vec![b]);
        assert_eq!(plan.demoted, vec![a]);
        assert_eq!(plan.churn(), 2);
        assert!(plan.new_layer.contains(b));

        let journal = EventJournal::new(8);
        plan.record_to(&journal);
        assert!(matches!(
            journal.snapshot()[0].kind,
            EventKind::GlRecut {
                promoted: 1,
                demoted: 1,
                churn: 2
            }
        ));
    }
}
