//! Consistency checking for partitioned namespaces — an `fsck` for
//! placements.
//!
//! Every invariant the scheme machinery promises is re-checked from
//! scratch here, so tests (and operators, through the CLI) can verify a
//! cluster state without trusting the code that produced it.

use std::fmt;

use d2tree_metrics::{Assignment, MdsId, Placement};
use d2tree_namespace::{NamespaceTree, NodeId};

use crate::index::LocalIndex;
use crate::split::GlobalLayer;

/// A violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// A live node has no assignment (Eq. 4 broken).
    Unassigned(NodeId),
    /// A [`Assignment::Single`] owner is outside the cluster.
    OwnerOutOfRange {
        /// The misplaced node.
        node: NodeId,
        /// Its out-of-range owner.
        owner: MdsId,
    },
    /// A global-layer node's parent is not in the layer (closure broken).
    LayerNotClosed {
        /// The layer member whose parent escaped.
        node: NodeId,
    },
    /// A global-layer node is not replicated in the placement.
    LayerNotReplicated(NodeId),
    /// A replicated node is not in the global layer.
    ReplicatedOutsideLayer(NodeId),
    /// A local-layer subtree is split across servers.
    SubtreeSplit {
        /// The subtree root.
        root: NodeId,
        /// A descendant with a different owner.
        stray: NodeId,
    },
    /// The local index disagrees with the placement about an owner.
    IndexMismatch {
        /// The indexed subtree root.
        root: NodeId,
        /// Owner according to the index.
        index_owner: MdsId,
        /// Owner according to the placement (`None` = replicated or
        /// unassigned).
        placement_owner: Option<MdsId>,
    },
    /// A subtree root below the cut is missing from the local index.
    IndexMissing(NodeId),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Unassigned(n) => write!(f, "node {n} is unassigned"),
            Violation::OwnerOutOfRange { node, owner } => {
                write!(f, "node {node} owned by out-of-range {owner}")
            }
            Violation::LayerNotClosed { node } => {
                write!(f, "global-layer node {node} has a parent outside the layer")
            }
            Violation::LayerNotReplicated(n) => {
                write!(f, "global-layer node {n} is not replicated")
            }
            Violation::ReplicatedOutsideLayer(n) => {
                write!(f, "node {n} replicated but outside the global layer")
            }
            Violation::SubtreeSplit { root, stray } => {
                write!(
                    f,
                    "subtree {root} split: descendant {stray} lives elsewhere"
                )
            }
            Violation::IndexMismatch {
                root,
                index_owner,
                placement_owner,
            } => write!(
                f,
                "index says {root} -> {index_owner}, placement says {placement_owner:?}"
            ),
            Violation::IndexMissing(n) => write!(f, "subtree root {n} missing from the index"),
        }
    }
}

/// Checks placement-only invariants: completeness (Eq. 4) and owner
/// ranges. Applies to every scheme.
#[must_use]
pub fn check_placement(tree: &NamespaceTree, placement: &Placement) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (id, _) in tree.nodes() {
        match placement.assignment(id) {
            Assignment::Unassigned => violations.push(Violation::Unassigned(id)),
            Assignment::Single(owner) if owner.index() >= placement.cluster_size() => {
                violations.push(Violation::OwnerOutOfRange { node: id, owner });
            }
            _ => {}
        }
    }
    violations
}

/// Checks the full D2-Tree state: placement invariants plus layer
/// closure, layer/replication agreement, subtree intactness and
/// index/placement agreement.
#[must_use]
pub fn check_d2tree(
    tree: &NamespaceTree,
    placement: &Placement,
    layer: &GlobalLayer,
    index: &LocalIndex,
) -> Vec<Violation> {
    let mut violations = check_placement(tree, placement);

    for &id in layer.members() {
        if let Some(parent) = tree.node(id).and_then(|n| n.parent()) {
            if !layer.contains(parent) {
                violations.push(Violation::LayerNotClosed { node: id });
            }
        }
        if !placement.assignment(id).is_replicated() {
            violations.push(Violation::LayerNotReplicated(id));
        }
    }
    for (id, _) in tree.nodes() {
        if placement.assignment(id).is_replicated() && !layer.contains(id) {
            violations.push(Violation::ReplicatedOutsideLayer(id));
        }
    }

    for root in layer.subtree_roots(tree) {
        let owner = placement.assignment(root).owner();
        // Intactness: every descendant shares the root's owner.
        if let Some(owner) = owner {
            for stray in tree
                .descendants(root)
                .filter(|&d| placement.assignment(d).owner() != Some(owner))
            {
                violations.push(Violation::SubtreeSplit { root, stray });
            }
        }
        // Index agreement.
        match index.owner_of(root) {
            None => violations.push(Violation::IndexMissing(root)),
            Some(index_owner) if Some(index_owner) != owner => {
                violations.push(Violation::IndexMismatch {
                    root,
                    index_owner,
                    placement_owner: owner,
                });
            }
            Some(_) => {}
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{D2TreeConfig, D2TreeScheme, Partitioner};
    use d2tree_metrics::ClusterSpec;
    use d2tree_workload::{TraceProfile, WorkloadBuilder};

    fn built() -> (d2tree_workload::Workload, D2TreeScheme) {
        let w = WorkloadBuilder::new(
            TraceProfile::dtr()
                .with_nodes(1_500)
                .with_operations(15_000),
        )
        .seed(44)
        .build();
        let pop = w.popularity();
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(4, 1.0));
        (w, scheme)
    }

    #[test]
    fn a_built_scheme_passes_all_checks() {
        let (w, scheme) = built();
        let violations = check_d2tree(
            &w.tree,
            scheme.placement(),
            scheme.global_layer(),
            scheme.local_index(),
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn rebalanced_scheme_still_passes() {
        let (w, mut scheme) = built();
        let mut pop = w.popularity();
        let hot = w.tree.nodes().map(|(id, _)| id).nth(700).unwrap();
        pop.record(hot, 100_000.0);
        pop.rollup(&w.tree);
        let _ = scheme.rebalance(&w.tree, &pop, &ClusterSpec::homogeneous(4, 1.0));
        let violations = check_d2tree(
            &w.tree,
            scheme.placement(),
            scheme.global_layer(),
            scheme.local_index(),
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn checker_catches_planted_faults() {
        let (w, scheme) = built();
        // Fault 1: split a subtree.
        let mut broken = scheme.placement().clone();
        let (victim_root, other_owner) = {
            let (root, owner) = scheme
                .subtrees()
                .map(|(s, o)| (s.root, o))
                .find(|(r, _)| w.tree.subtree_size(*r) > 1)
                .expect("a multi-node subtree exists");
            (root, MdsId((owner.index() as u16 + 1) % 4))
        };
        let stray = w.tree.descendants(victim_root).nth(1).unwrap();
        broken.set(stray, Assignment::Single(other_owner));
        let violations = check_d2tree(
            &w.tree,
            &broken,
            scheme.global_layer(),
            scheme.local_index(),
        );
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::SubtreeSplit { .. })),
            "{violations:?}"
        );

        // Fault 2: de-replicate a layer node.
        let mut broken = scheme.placement().clone();
        let gl_node = scheme.global_layer().members()[0];
        broken.set(gl_node, Assignment::Single(MdsId(0)));
        let violations = check_d2tree(
            &w.tree,
            &broken,
            scheme.global_layer(),
            scheme.local_index(),
        );
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::LayerNotReplicated(_))));

        // Fault 3: stale index entry.
        let mut stale_index = scheme.local_index().clone();
        let (root, owner) = scheme.subtrees().map(|(s, o)| (s.root, o)).next().unwrap();
        stale_index.insert(root, MdsId((owner.index() as u16 + 1) % 4));
        let violations = check_d2tree(
            &w.tree,
            scheme.placement(),
            scheme.global_layer(),
            &stale_index,
        );
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::IndexMismatch { .. })));
    }

    #[test]
    fn unassigned_nodes_are_reported() {
        let (w, scheme) = built();
        let fresh = Placement::new(&w.tree, 4);
        let violations = check_placement(&w.tree, &fresh);
        assert_eq!(violations.len(), w.tree.node_count());
        assert!(!violations[0].to_string().is_empty());
        let _ = scheme;
    }
}
