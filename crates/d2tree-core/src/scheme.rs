//! The pluggable partitioning-scheme interface and the D2-Tree
//! implementation of it.

use d2tree_metrics::{
    locality_from_jumps, path_jumps, Assignment, ClusterSpec, LocalityReport, MdsId, Migration,
    Placement,
};
use d2tree_namespace::{NamespaceTree, NodeId, Popularity};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::adjust::{AdjustPolicy, DynamicAdjuster};
use crate::allocate::{allocate_full, allocate_sampled, collect_subtrees, SampleStrategy, Subtree};
use crate::index::LocalIndex;
use crate::split::{split_to_proportion, tree_split, GlobalLayer, SplitBounds, SplitError};

/// The sequence of MDSs one metadata access visits, in order.
///
/// The first server is the one the client contacts; each further entry is
/// a forwarding hop. Replicated (global-layer) targets record whether the
/// plan may be served by *any* server, which the throughput simulator uses
/// to spread load.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessPlan {
    /// Servers visited, in order. Never empty.
    pub visits: Vec<MdsId>,
    /// Whether the target node is replicated cluster-wide.
    pub target_replicated: bool,
}

impl AccessPlan {
    /// Number of inter-server forwarding hops (visits − 1).
    #[must_use]
    pub fn hops(&self) -> usize {
        self.visits.len().saturating_sub(1)
    }

    /// The server that ultimately serves the request.
    #[must_use]
    pub fn terminal(&self) -> MdsId {
        *self.visits.last().expect("plans are never empty")
    }
}

/// How many top levels of the namespace every client is assumed to have
/// cached: the owners of the root and of the first-level directories
/// essentially never change, so no production client re-resolves them per
/// operation. Routing therefore starts the physical traversal below this
/// depth (the Def. 1 *jump metric* still counts the full chain — caching
/// affects who does work, not the formal locality measure).
pub const CLIENT_CACHED_DEPTH: usize = 2;

/// Walks the root-to-target chain over a single-copy placement and emits
/// the server sequence a POSIX traversal visits (deduplicating consecutive
/// repeats). The first [`CLIENT_CACHED_DEPTH`] levels are client-cached
/// and skipped — without this, the root's owner would serve every single
/// operation in the cluster, which no real deployment does. Replicated
/// chain nodes are served wherever the traversal currently is; a traversal
/// that never pins to a server picks one at random.
///
/// This is the default routing for all baselines; D2-Tree overrides it
/// with its global-layer/local-index rule.
///
/// # Panics
///
/// Panics if a chain node is unassigned.
#[must_use]
pub fn chain_route(
    tree: &NamespaceTree,
    placement: &Placement,
    node: NodeId,
    rng: &mut dyn RngCore,
) -> AccessPlan {
    chain_route_from(tree, placement, node, rng, CLIENT_CACHED_DEPTH)
}

/// [`chain_route`] with an explicit first traversed depth.
///
/// `start_depth = 0` walks the full root-to-target chain with no client
/// caching. Under a full walk the deduplicated visit count minus one
/// equals Def. 1's [`path_jumps`] exactly — the property the trace
/// analyzer verifies per operation against observed spans.
///
/// # Panics
///
/// Panics if a chain node is unassigned.
#[must_use]
pub fn chain_route_from(
    tree: &NamespaceTree,
    placement: &Placement,
    node: NodeId,
    rng: &mut dyn RngCore,
    start_depth: usize,
) -> AccessPlan {
    thread_local! {
        // Routing happens once per simulated operation; reusing one
        // buffer per thread removes the per-call chain allocation.
        static CHAIN_BUF: std::cell::RefCell<Vec<NodeId>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    let mut visits: Vec<MdsId> = Vec::new();
    CHAIN_BUF.with(|buf| {
        let mut chain = buf.borrow_mut();
        chain.clear();
        chain.extend(tree.chain_up(node));
        chain.reverse();
        // Always traverse the target itself, even when it is shallow.
        let start = start_depth.min(chain.len() - 1);
        for &id in &chain[start..] {
            match placement.assignment(id) {
                Assignment::Unassigned => panic!("routing requires a complete placement"),
                Assignment::Replicated => {}
                Assignment::Single(m) => {
                    if visits.last() != Some(&m) {
                        visits.push(m);
                    }
                }
            }
        }
    });
    let target_replicated = placement.assignment(node).is_replicated();
    if visits.is_empty() {
        let any = MdsId(rng.gen_range(0..placement.cluster_size()) as u16);
        visits.push(any);
    }
    AccessPlan {
        visits,
        target_replicated,
    }
}

/// A namespace partitioning scheme: D2-Tree or any of the baselines.
///
/// The lifecycle is `build` once, then interleave metric queries
/// ([`jumps`](Partitioner::jumps), [`locality`](Partitioner::locality)),
/// routing ([`route`](Partitioner::route)) and periodic
/// [`rebalance`](Partitioner::rebalance) rounds as the workload evolves.
pub trait Partitioner {
    /// Scheme name as it appears in the paper's figures.
    fn name(&self) -> &'static str;

    /// Partitions `tree` across `cluster` using rolled-up popularity.
    fn build(&mut self, tree: &NamespaceTree, pop: &Popularity, cluster: &ClusterSpec);

    /// The current placement.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before [`build`](Self::build).
    fn placement(&self) -> &Placement;

    /// Def. 1 jump count for an access to `node`.
    fn jumps(&self, tree: &NamespaceTree, node: NodeId) -> u32 {
        path_jumps(tree, self.placement(), node)
    }

    /// The servers an access to `node` visits.
    fn route(&self, tree: &NamespaceTree, node: NodeId, rng: &mut dyn RngCore) -> AccessPlan {
        chain_route(tree, self.placement(), node, rng)
    }

    /// One dynamic-rebalancing round; returns the migrations performed
    /// (already applied to the scheme's own placement).
    fn rebalance(
        &mut self,
        tree: &NamespaceTree,
        pop: &Popularity,
        cluster: &ClusterSpec,
    ) -> Vec<Migration> {
        let _ = (tree, pop, cluster);
        Vec::new()
    }

    /// Def. 3 system locality under this scheme's jump rule.
    fn locality(&self, tree: &NamespaceTree, pop: &Popularity) -> LocalityReport {
        locality_from_jumps(tree, pop, |n| self.jumps(tree, n))
    }

    /// Per-server loads under this scheme's placement.
    fn loads(&self, tree: &NamespaceTree, pop: &Popularity) -> Vec<f64> {
        self.placement().loads(tree, pop)
    }
}

/// How the global layer is selected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SplitSpec {
    /// Grow until the layer holds this fraction of all nodes (the paper's
    /// experimental setting; 1% by default).
    Proportion(f64),
    /// Run Alg. 1 against explicit `L0`/`U0` bounds.
    Bounds(SplitBounds),
}

/// Configuration of [`D2TreeScheme`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct D2TreeConfig {
    /// Global-layer selection rule.
    pub split: SplitSpec,
    /// Sampled allocation: strategy and per-MDS sample size. `None` uses
    /// full-information mirror division.
    pub sampling: Option<(SampleStrategy, usize)>,
    /// Dynamic-adjustment thresholds.
    pub policy: AdjustPolicy,
    /// Seed for routing/sampling randomness.
    pub seed: u64,
    /// Update-cost model when no measured update popularity is supplied:
    /// `u_j = assumed_update_fraction × p'_j`.
    pub assumed_update_fraction: f64,
    /// Cap on the number of global-layer replicas (Sec. VII's proposed
    /// extension: "setting a threshold to control the number of
    /// replications of global layer"). `None` replicates to every MDS,
    /// the paper's default. With a cap `R < M` the layer lives on the `R`
    /// servers that received the least local-layer load, trading some
    /// load spreading for an `M/R`-fold cut in replicated-update cost.
    pub replication_limit: Option<usize>,
    /// Client local-index staleness per MDS: a local-layer access misses
    /// the client's cached index — and pays one extra forwarding hop
    /// through a random MDS — with probability
    /// `min(index_miss_per_mds × M, 0.75)`.
    ///
    /// Rationale: pending-pool migrations scale with the cluster size, so
    /// the fraction of stale client index entries does too. This is the
    /// mechanism behind the paper's LMBE observation that "many queries in
    /// the local layer need more jumps among MDS's to perform path
    /// traversal as the cluster is scaled" (and Eq. 7 accordingly accounts
    /// one jump for every local-layer access).
    pub index_miss_per_mds: f64,
}

impl D2TreeConfig {
    /// The paper's default: a 1% global layer, full-information
    /// allocation.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::by_proportion(0.01)
    }

    /// Selects the global layer by node proportion.
    #[must_use]
    pub fn by_proportion(proportion: f64) -> Self {
        D2TreeConfig {
            split: SplitSpec::Proportion(proportion),
            sampling: None,
            policy: AdjustPolicy::default(),
            seed: 0,
            assumed_update_fraction: 0.05,
            replication_limit: None,
            index_miss_per_mds: 0.02,
        }
    }

    /// Caps the number of global-layer replicas.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    #[must_use]
    pub fn with_replication_limit(mut self, limit: usize) -> Self {
        assert!(limit > 0, "need at least one replica");
        self.replication_limit = Some(limit);
        self
    }

    /// Selects the global layer by explicit Alg. 1 bounds.
    #[must_use]
    pub fn by_bounds(bounds: SplitBounds) -> Self {
        D2TreeConfig {
            split: SplitSpec::Bounds(bounds),
            ..Self::by_proportion(0.01)
        }
    }

    /// Enables sampled allocation.
    #[must_use]
    pub fn with_sampling(mut self, strategy: SampleStrategy, sample_size: usize) -> Self {
        self.sampling = Some((strategy, sample_size));
        self
    }

    /// Sets the randomness seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The D2-Tree partitioning scheme (Sec. IV).
///
/// # Example
///
/// ```
/// use d2tree_core::{D2TreeConfig, D2TreeScheme, Partitioner};
/// use d2tree_metrics::ClusterSpec;
/// use d2tree_workload::{TraceProfile, WorkloadBuilder};
///
/// let w = WorkloadBuilder::new(TraceProfile::lmbe().with_nodes(1_000).with_operations(10_000))
///     .seed(0)
///     .build();
/// let pop = w.popularity();
/// let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
/// scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(8, 100.0));
///
/// // Every access jumps at most once (Eq. 7).
/// for (id, _) in w.tree.nodes() {
///     assert!(scheme.jumps(&w.tree, id) <= 1);
/// }
/// ```
#[derive(Debug)]
pub struct D2TreeScheme {
    config: D2TreeConfig,
    update_pop: Option<Popularity>,
    state: Option<State>,
    rng: StdRng,
}

#[derive(Debug)]
struct State {
    layer: GlobalLayer,
    subtrees: Vec<Subtree>,
    owners: Vec<MdsId>,
    placement: Placement,
    index: LocalIndex,
    adjuster: DynamicAdjuster,
}

impl D2TreeScheme {
    /// Creates an unbuilt scheme.
    #[must_use]
    pub fn new(config: D2TreeConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        D2TreeScheme {
            config,
            update_pop: None,
            state: None,
            rng,
        }
    }

    /// Supplies measured per-node *update* popularity, used as the Alg. 1
    /// update-cost input `u_j` instead of the configured approximation.
    pub fn set_update_popularity(&mut self, update_pop: Popularity) {
        self.update_pop = Some(update_pop);
    }

    /// Fallible build: Alg. 1 with explicit bounds can fail (Eq. 6
    /// infeasible), proportion-driven splits cannot.
    ///
    /// # Errors
    ///
    /// Propagates [`SplitError::Infeasible`] from [`tree_split`].
    pub fn try_build(
        &mut self,
        tree: &NamespaceTree,
        pop: &Popularity,
        cluster: &ClusterSpec,
    ) -> Result<(), SplitError> {
        let fraction = self.config.assumed_update_fraction;
        let update_pop = self.update_pop.as_ref();
        let update_of = |id: NodeId| match update_pop {
            Some(u) => u.individual(id),
            None => fraction * pop.individual(id),
        };
        let layer = match self.config.split {
            SplitSpec::Proportion(p) => split_to_proportion(tree, pop, update_of, p).0,
            SplitSpec::Bounds(b) => tree_split(tree, pop, update_of, b)?,
        };
        let subtrees = collect_subtrees(tree, &layer, pop);
        let owners = match self.config.sampling {
            None => allocate_full(&subtrees, cluster),
            Some((strategy, k)) => {
                allocate_sampled(&subtrees, cluster, tree, &layer, strategy, k, &mut self.rng)
            }
        };

        let mut placement = Placement::new(tree, cluster.len());
        for &id in layer.members() {
            placement.set(id, Assignment::Replicated);
        }
        if let Some(limit) = self.config.replication_limit {
            if limit < cluster.len() {
                // Host the layer on the servers with the least local-layer
                // load, which evens total load while cutting the
                // replicated-update cost to `limit` applies.
                let mut ll_loads = vec![0.0f64; cluster.len()];
                for (s, &o) in subtrees.iter().zip(&owners) {
                    ll_loads[o.index()] += s.popularity;
                }
                let mut order: Vec<usize> = (0..cluster.len()).collect();
                order.sort_by(|&a, &b| ll_loads[a].total_cmp(&ll_loads[b]).then(a.cmp(&b)));
                let subset: Vec<MdsId> = order
                    .into_iter()
                    .take(limit)
                    .map(|k| MdsId(k as u16))
                    .collect();
                placement.set_replicas(d2tree_metrics::ReplicaSet::Subset(subset));
            }
        }
        let mut index = LocalIndex::new();
        index.replace_all(subtrees.iter().zip(&owners).map(|(s, &o)| (s.root, o)));
        for (s, &o) in subtrees.iter().zip(&owners) {
            placement.assign_subtree(tree, s.root, o);
        }

        self.state = Some(State {
            layer,
            subtrees,
            owners,
            placement,
            index,
            adjuster: DynamicAdjuster::new(self.config.policy),
        });
        Ok(())
    }

    fn state(&self) -> &State {
        self.state.as_ref().expect("D2TreeScheme used before build")
    }

    /// The current global layer.
    #[must_use]
    pub fn global_layer(&self) -> &GlobalLayer {
        &self.state().layer
    }

    /// The local-layer subtrees with their current owners.
    pub fn subtrees(&self) -> impl Iterator<Item = (&Subtree, MdsId)> + '_ {
        let s = self.state();
        s.subtrees.iter().zip(s.owners.iter().copied())
    }

    /// The local index clients cache.
    #[must_use]
    pub fn local_index(&self) -> &LocalIndex {
        &self.state().index
    }

    /// Admits new servers into a running scheme (the Monitor's "new MDS
    /// added" flow): the placement grows, the new servers start empty and
    /// the next [`rebalance`](Partitioner::rebalance) rounds fill them
    /// from the pending pool.
    ///
    /// # Panics
    ///
    /// Panics if called before build, or if `new_cluster` is smaller than
    /// the cluster the scheme was built for.
    pub fn expand_cluster(
        &mut self,
        tree: &NamespaceTree,
        pop: &Popularity,
        new_cluster: &ClusterSpec,
    ) -> Vec<Migration> {
        {
            let state = self.state.as_mut().expect("D2TreeScheme used before build");
            state.placement.grow_cluster(new_cluster.len());
        }
        self.rebalance(tree, pop, new_cluster)
    }

    /// Fraction of trace operations whose target lies in the global layer
    /// — the statistic the paper quotes per trace (83.06% for DTR, …).
    #[must_use]
    pub fn global_hit_fraction<'a, I>(&self, targets: I) -> f64
    where
        I: IntoIterator<Item = &'a NodeId>,
    {
        let layer = &self.state().layer;
        let mut hits = 0usize;
        let mut total = 0usize;
        for id in targets {
            total += 1;
            if layer.contains(*id) {
                hits += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

impl Partitioner for D2TreeScheme {
    fn name(&self) -> &'static str {
        "D2-Tree"
    }

    /// # Panics
    ///
    /// Panics if Alg. 1 bounds are infeasible; use
    /// [`D2TreeScheme::try_build`] to handle that case.
    fn build(&mut self, tree: &NamespaceTree, pop: &Popularity, cluster: &ClusterSpec) {
        self.try_build(tree, pop, cluster)
            .expect("split bounds are infeasible");
    }

    fn placement(&self) -> &Placement {
        &self.state().placement
    }

    /// Eq. 7's convention: global-layer accesses never jump; local-layer
    /// accesses jump exactly once (the query first lands on an arbitrary
    /// MDS, then hops to the subtree owner).
    fn jumps(&self, _tree: &NamespaceTree, node: NodeId) -> u32 {
        u32::from(!self.state().layer.contains(node))
    }

    fn route(&self, tree: &NamespaceTree, node: NodeId, rng: &mut dyn RngCore) -> AccessPlan {
        let s = self.state();
        let m = s.placement.cluster_size();
        if s.layer.contains(node) {
            let any = match s.placement.replicas() {
                d2tree_metrics::ReplicaSet::All => MdsId(rng.gen_range(0..m) as u16),
                d2tree_metrics::ReplicaSet::Subset(set) => set[rng.gen_range(0..set.len())],
            };
            return AccessPlan {
                visits: vec![any],
                target_replicated: true,
            };
        }
        let (_, owner) = s
            .index
            .locate(tree, node)
            .expect("local-layer nodes always have an indexed subtree root");
        // A fresh client index points straight at the owner; a stale entry
        // (probability grows with cluster size, see
        // `D2TreeConfig::index_miss_per_mds`) costs one extra hop through
        // an arbitrary MDS, which — holding the replicated local index —
        // forwards to the owner.
        let miss = (self.config.index_miss_per_mds * m as f64).min(0.75);
        if rng.gen_range(0.0..1.0) < miss {
            let first = MdsId(rng.gen_range(0..m) as u16);
            if first != owner {
                return AccessPlan {
                    visits: vec![first, owner],
                    target_replicated: false,
                };
            }
        }
        AccessPlan {
            visits: vec![owner],
            target_replicated: false,
        }
    }

    fn rebalance(
        &mut self,
        tree: &NamespaceTree,
        pop: &Popularity,
        cluster: &ClusterSpec,
    ) -> Vec<Migration> {
        let state = self.state.as_mut().expect("D2TreeScheme used before build");
        // Refresh subtree popularity from the latest counters.
        for s in &mut state.subtrees {
            s.popularity = pop.total(s.root);
        }
        let owned: Vec<(Subtree, MdsId)> = state
            .subtrees
            .iter()
            .copied()
            .zip(state.owners.iter().copied())
            .collect();
        let migrations = state.adjuster.rebalance(&owned, cluster);
        for m in &migrations {
            if let Some(slot) = state.subtrees.iter().position(|s| s.root == m.node) {
                state.owners[slot] = m.to;
                state.index.insert(m.node, m.to);
                state.placement.assign_subtree(tree, m.node, m.to);
            }
        }
        migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_metrics::balance;
    use d2tree_workload::{TraceProfile, WorkloadBuilder};

    fn built(nodes: usize, m: usize) -> (d2tree_workload::Workload, Popularity, D2TreeScheme) {
        let w = WorkloadBuilder::new(
            TraceProfile::dtr()
                .with_nodes(nodes)
                .with_operations(nodes * 20),
        )
        .seed(7)
        .build();
        let pop = w.popularity();
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default().with_seed(1));
        scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(m, 1_000.0));
        (w, pop, scheme)
    }

    #[test]
    fn placement_is_complete_and_layered() {
        let (w, _pop, scheme) = built(2_000, 4);
        let placement = scheme.placement();
        assert!(placement.is_complete(&w.tree));
        // GL proportion target: 1% of 2000 = 20 nodes.
        assert_eq!(
            placement.replicated_count(&w.tree),
            scheme.global_layer().len()
        );
        assert_eq!(scheme.global_layer().len(), 20);
    }

    #[test]
    fn jumps_follow_eq7() {
        let (w, _pop, scheme) = built(1_000, 3);
        for (id, _) in w.tree.nodes() {
            let expect = u32::from(!scheme.global_layer().contains(id));
            assert_eq!(scheme.jumps(&w.tree, id), expect);
        }
    }

    #[test]
    fn routes_reach_owner_in_at_most_two_visits() {
        let (w, _pop, scheme) = built(1_000, 4);
        let mut rng = StdRng::seed_from_u64(9);
        let mut extra_hops = 0usize;
        let mut total = 0usize;
        for (id, _) in w.tree.nodes().take(400) {
            let plan = scheme.route(&w.tree, id, &mut rng);
            total += 1;
            assert!(plan.hops() <= 1, "Eq. 7: at most one jump");
            if plan.target_replicated {
                assert_eq!(plan.visits.len(), 1, "global-layer hits are direct");
            } else {
                let owner = scheme.placement().assignment(id).owner().unwrap();
                assert_eq!(plan.terminal(), owner, "local-layer ends at the owner");
                extra_hops += plan.hops();
            }
        }
        // Staleness misses are rare at M=4 (miss probability 0.08).
        assert!(
            extra_hops < total / 4,
            "too many stale-index hops: {extra_hops}/{total}"
        );
    }

    #[test]
    fn dtr_queries_mostly_hit_global_layer() {
        let (w, _pop, scheme) = built(4_000, 4);
        let targets: Vec<_> = w.trace.iter().map(|o| o.target).collect();
        let hit = scheme.global_hit_fraction(targets.iter());
        // The paper measures 83.06% for DTR with a 1% layer at production
        // scale; the presets are calibrated to that at 50k nodes (see the
        // `calibrate` bench binary). The scale-free invariant asserted
        // here is concentration: the 1% global layer must capture far more
        // than 1% of the queries.
        assert!(hit > 0.1, "DTR global-layer hit fraction too low: {hit}");
    }

    #[test]
    fn rebalance_improves_degraded_balance() {
        let (w, mut pop, mut scheme) = built(3_000, 4);
        let cluster = ClusterSpec::homogeneous(4, 1_000.0);
        // Drift: make one cold subtree suddenly hot.
        let victim = {
            let mut roots: Vec<_> = scheme.subtrees().map(|(s, _)| s.root).collect();
            roots.sort();
            *roots.last().unwrap()
        };
        pop.record(victim, 200_000.0);
        pop.rollup(&w.tree);

        let before = balance(&scheme.loads(&w.tree, &pop), &cluster);
        let migrations = scheme.rebalance(&w.tree, &pop, &cluster);
        let after = balance(&scheme.loads(&w.tree, &pop), &cluster);
        assert!(!migrations.is_empty(), "drift should trigger migrations");
        assert!(
            after > before,
            "balance should improve: {before} -> {after}"
        );
    }

    #[test]
    fn bounds_build_propagates_infeasibility() {
        let w = WorkloadBuilder::new(TraceProfile::ra().with_nodes(500).with_operations(5_000))
            .seed(2)
            .build();
        let pop = w.popularity();
        let mut scheme = D2TreeScheme::new(D2TreeConfig::by_bounds(SplitBounds {
            min_locality: 1.0, // absurdly strict
            max_update: 1e-12, // no budget
        }));
        let err = scheme.try_build(&w.tree, &pop, &ClusterSpec::homogeneous(2, 10.0));
        assert!(err.is_err());
    }

    #[test]
    fn sampled_build_completes() {
        let w = WorkloadBuilder::new(
            TraceProfile::lmbe()
                .with_nodes(2_000)
                .with_operations(20_000),
        )
        .seed(3)
        .build();
        let pop = w.popularity();
        let mut scheme = D2TreeScheme::new(
            D2TreeConfig::paper_default()
                .with_sampling(SampleStrategy::Uniform, 500)
                .with_seed(4),
        );
        scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(5, 100.0));
        assert!(scheme.placement().is_complete(&w.tree));
    }

    #[test]
    fn replication_limit_confines_the_layer() {
        let w = WorkloadBuilder::new(
            TraceProfile::dtr()
                .with_nodes(2_000)
                .with_operations(40_000),
        )
        .seed(8)
        .build();
        let pop = w.popularity();
        let cluster = ClusterSpec::homogeneous(6, 1.0);
        let mut scheme = D2TreeScheme::new(
            D2TreeConfig::paper_default()
                .with_replication_limit(2)
                .with_seed(8),
        );
        scheme.build(&w.tree, &pop, &cluster);
        let replicas = scheme.placement().replicas().clone();
        assert_eq!(replicas.count(6), 2);
        // Global-layer routes only land on replica servers.
        let mut rng = StdRng::seed_from_u64(5);
        for &id in scheme.global_layer().members() {
            let plan = scheme.route(&w.tree, id, &mut rng);
            assert!(
                replicas.contains(plan.terminal()),
                "routed off the replica set"
            );
        }
        // Replicated load is concentrated on the two replicas but the
        // overall placement stays complete.
        assert!(scheme.placement().is_complete(&w.tree));
        let loads = scheme.loads(&w.tree, &pop);
        let total: f64 = loads.iter().sum();
        assert!((total - pop.sum_individual()).abs() < 1e-6 * total);
    }

    #[test]
    fn expand_cluster_fills_new_servers() {
        let w = WorkloadBuilder::new(
            TraceProfile::lmbe()
                .with_nodes(3_000)
                .with_operations(60_000),
        )
        .seed(9)
        .build();
        let pop = w.popularity();
        let small = ClusterSpec::homogeneous(3, 1.0);
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default().with_seed(9));
        scheme.build(&w.tree, &pop, &small);

        let big = ClusterSpec::homogeneous(6, 1.0);
        let migrations = scheme.expand_cluster(&w.tree, &pop, &big);
        assert!(!migrations.is_empty(), "new servers should claim subtrees");
        assert!(
            migrations.iter().any(|m| m.to.index() >= 3),
            "migrations reach new servers"
        );
        assert!(scheme.placement().is_complete(&w.tree));
        assert_eq!(scheme.placement().cluster_size(), 6);
        // A couple more rounds should keep things stable.
        for _ in 0..3 {
            let _ = scheme.rebalance(&w.tree, &pop, &big);
        }
        let loads = scheme.loads(&w.tree, &pop);
        assert!(
            loads[3..].iter().any(|&l| l > 0.0),
            "new servers carry load"
        );
    }

    #[test]
    fn local_index_matches_owners() {
        let (w, _pop, scheme) = built(1_500, 3);
        for (s, owner) in scheme.subtrees() {
            assert_eq!(scheme.local_index().owner_of(s.root), Some(owner));
            assert_eq!(scheme.placement().assignment(s.root).owner(), Some(owner));
        }
        // Index lookup from a deep node inside a subtree resolves to the
        // same owner.
        let first = scheme.subtrees().next().map(|(s, owner)| (s.root, owner));
        if let Some((root, owner)) = first {
            for id in w.tree.descendants(root).take(10) {
                assert_eq!(
                    scheme.local_index().locate(&w.tree, id),
                    Some((root, owner))
                );
            }
        }
    }
}
