//! The D2-Tree scheme: double-layer namespace partitioning.
//!
//! This crate implements the paper's contribution in three phases plus the
//! glue that makes it a pluggable partitioning scheme:
//!
//! * [`split`] — **Tree-Splitting** (Alg. 1): greedily grow the replicated
//!   *global layer* from the root by descending total popularity, bounded
//!   by a locality constraint `L0` and an update-cost constraint `U0`.
//! * [`allocate`] — **Subtree-Allocation**: place the *local layer*
//!   subtrees onto MDSs by mirror division of the popularity CDF against
//!   the capacity CDF (Fig. 4), either with full information or from a
//!   random-walk sample (Lem. 1 / Thm. 3 govern the sample size).
//! * [`adjust`] — **Dynamic-Adjustment**: heartbeat-driven pending-pool
//!   rebalancing, decaying access counters and periodic global-layer
//!   re-cuts.
//! * [`scheme`] — the [`Partitioner`] trait every scheme (D2-Tree and all
//!   baselines) implements, and [`D2TreeScheme`], the reference
//!   implementation.
//! * [`index`] — the *local index* mapping inter nodes to the owners of
//!   their local-layer subtrees, which clients cache.
//!
//! # Example
//!
//! ```
//! use d2tree_core::{D2TreeConfig, D2TreeScheme, Partitioner};
//! use d2tree_metrics::ClusterSpec;
//! use d2tree_workload::{TraceProfile, WorkloadBuilder};
//!
//! let w = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(2_000).with_operations(20_000))
//!     .seed(1)
//!     .build();
//! let pop = w.popularity();
//! let cluster = ClusterSpec::homogeneous(4, 1_000.0);
//!
//! let mut scheme = D2TreeScheme::new(D2TreeConfig::by_proportion(0.01));
//! scheme.build(&w.tree, &pop, &cluster);
//! assert!(scheme.placement().is_complete(&w.tree));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adjust;
pub mod allocate;
pub mod index;
pub mod scheme;
pub mod split;
pub mod validate;

pub use adjust::{
    plan_recut, AdjustPolicy, DynamicAdjuster, Heartbeat, PendingPool, PoolEntry, RecutPlan,
};
pub use allocate::{allocate_full, allocate_sampled, collect_subtrees, SampleStrategy, Subtree};
pub use index::LocalIndex;
pub use scheme::{
    chain_route, chain_route_from, AccessPlan, D2TreeConfig, D2TreeScheme, Partitioner,
    CLIENT_CACHED_DEPTH,
};
pub use split::{
    split_to_proportion, tree_split, GlobalLayer, ImpliedBounds, SplitBounds, SplitError,
};
pub use validate::{check_d2tree, check_placement, Violation};
