//! Micro-benchmark for span recording paths (dev tool).
//!
//! Run with `cargo run --release -p d2tree-telemetry --example sinkbench`.

use std::sync::Mutex;
use std::time::Instant;

use d2tree_telemetry::trace::{span_names, PackedSpans, Span, SpanCtx, SpanId, TraceId};
use d2tree_telemetry::{ArgKey, SpanSink};

fn mkspan(i: u64) -> Span {
    let ctx = SpanCtx {
        trace: TraceId(i / 3 + 1),
        span: SpanId(i + 1),
    };
    Span::root(ctx, span_names::OP, i * 7, 5)
        .on_mds((i % 8) as u16)
        .with_arg(ArgKey::Target, i % 4000)
        .with_arg(ArgKey::Kind, i % 3)
        .with_arg(ArgKey::Hops, 0)
        .with_arg(ArgKey::Locked, 0)
}

fn main() {
    const N: u64 = 200_000;

    // 1. Span construction alone.
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..N {
        let s = mkspan(i);
        acc = acc.wrapping_add(s.start_us);
    }
    let construct = t0.elapsed();
    println!(
        "construct only:      {:6.1} ns/span (acc {acc})",
        construct.as_nanos() as f64 / N as f64
    );

    // 2. PackedSpans::push directly (no TLS, no atomics).
    let mut packed = PackedSpans::new();
    let t0 = Instant::now();
    for i in 0..N {
        let s = mkspan(i);
        packed.push(&s);
    }
    let enc = t0.elapsed();
    println!(
        "construct + encode:  {:6.1} ns/span ({} spans, {} bytes)",
        enc.as_nanos() as f64 / N as f64,
        packed.len(),
        packed.byte_len()
    );

    // 3. Old-style mutexed Vec<Span> push.
    let sink = Mutex::new(Vec::with_capacity(N as usize));
    let t0 = Instant::now();
    for i in 0..N {
        let s = mkspan(i);
        sink.lock().unwrap().push(s);
    }
    let old = t0.elapsed();
    println!(
        "construct + mutex:   {:6.1} ns/span ({} spans)",
        old.as_nanos() as f64 / N as f64,
        sink.lock().unwrap().len()
    );

    // 4. Full SpanSink::push (atomic + TLS + encode).
    let sink = SpanSink::new(4 << 20);
    let t0 = Instant::now();
    for i in 0..N {
        let s = mkspan(i);
        sink.push(s);
    }
    let full = t0.elapsed();
    println!(
        "construct + sink:    {:6.1} ns/span ({} held)",
        full.as_nanos() as f64 / N as f64,
        sink.len()
    );
    let spans = sink.drain();
    println!("drained {}", spans.len());
}
