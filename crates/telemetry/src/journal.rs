//! Bounded ring-buffer journal of structured cluster events.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What happened. Node/subtree identifiers are raw `u64`s so the crate
/// stays free of workspace dependencies; callers pass `NodeId::0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// An MDS reported in.
    Heartbeat {
        /// Reporting MDS.
        mds: u16,
        /// Its reported load.
        load: f64,
    },
    /// The monitor declared an MDS dead.
    MdsDown {
        /// The failed MDS.
        mds: u16,
    },
    /// A previously-dead MDS resumed heartbeating.
    MdsRecovered {
        /// The recovered MDS.
        mds: u16,
    },
    /// An overloaded MDS gave up a subtree.
    SubtreeShed {
        /// The shedding MDS.
        from: u16,
        /// Root of the shed subtree.
        subtree: u64,
        /// Entries in the subtree.
        size: u64,
        /// Popularity (access weight) of the subtree.
        popularity: f64,
    },
    /// An MDS took ownership of a subtree (rebalance or failover).
    SubtreeClaimed {
        /// The claiming MDS.
        to: u16,
        /// Root of the claimed subtree.
        subtree: u64,
        /// Entries in the subtree.
        size: u64,
        /// Popularity (access weight) of the subtree.
        popularity: f64,
    },
    /// The global layer was re-cut (promotion/demotion pass).
    GlRecut {
        /// Nodes promoted into the global layer.
        promoted: u64,
        /// Nodes demoted out of it.
        demoted: u64,
        /// Total churn of the recut.
        churn: u64,
    },
    /// A client cache miss forced an index fetch.
    CacheMiss {
        /// The client that missed.
        client: u64,
    },
    /// A request was forwarded between servers.
    Forwarded {
        /// MDS that received the misdirected request.
        from: u16,
        /// MDS it was forwarded to.
        to: u16,
    },
    /// The fault-injection layer perturbed a message.
    FaultInjected {
        /// What the injector did to the message.
        fault: FaultKind,
        /// The MDS whose link was perturbed.
        mds: u16,
    },
    /// A restarted MDS completed its rejoin protocol.
    MdsRejoined {
        /// The rejoined MDS.
        mds: u16,
        /// Subtrees it claimed from the pending pool on rejoin.
        claimed: u64,
    },
    /// A restarted MDS recovered its durable state from its local
    /// store (snapshot + WAL replay).
    StoreRecovered {
        /// The recovering MDS.
        mds: u16,
        /// WAL records replayed on top of the snapshot.
        records: u64,
        /// Bytes truncated from a torn WAL tail (0 on a clean open).
        torn_bytes: u64,
        /// Wall-clock recovery time, milliseconds.
        recovery_ms: u64,
    },
    /// A restarted MDS re-synced its GL replica by copying only the
    /// entries a live replica had newer versions of.
    GlDeltaSync {
        /// The syncing MDS.
        mds: u16,
        /// GL entries actually transferred (stale on the rejoiner).
        entries: u64,
    },
    /// A control-plane replica won an election and became leader.
    LeaderElected {
        /// The replica that assumed leadership.
        replica: u16,
        /// The term it leads.
        term: u64,
    },
    /// The replicated lock state machine granted (or renewed) a lease.
    LeaseGranted {
        /// GL node the lease covers.
        node: u64,
        /// Monotonic fencing token attached to the grant.
        fence: u64,
        /// MDS holding the lease.
        holder: u16,
    },
    /// The replicated lock state machine rejected a write carrying a
    /// stale or expired fencing token.
    FenceRejected {
        /// GL node the rejected write targeted.
        node: u64,
        /// The stale fencing token presented.
        fence: u64,
    },
}

/// The kind of perturbation a fault-injection rule applied to a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// The message was silently discarded.
    Drop,
    /// Delivery was postponed by a fixed + jittered delay.
    Delay,
    /// The message was delivered twice.
    Duplicate,
    /// Delivery order was perturbed by a random jitter.
    Reorder,
    /// A WAL write was torn mid-frame at crash time.
    TornWrite,
    /// An fsync persisted only a prefix of the buffered bytes.
    PartialFsync,
    /// Bits of an already-durable record were flipped on disk.
    CorruptRecord,
}

impl FaultKind {
    /// Short label used by the exporters (`drop`, `delay`, …).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::TornWrite => "torn_write",
            FaultKind::PartialFsync => "partial_fsync",
            FaultKind::CorruptRecord => "corrupt_record",
        }
    }
}

impl EventKind {
    /// Short kind label used by the exporters (`mds_down`, …).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Heartbeat { .. } => "heartbeat",
            EventKind::MdsDown { .. } => "mds_down",
            EventKind::MdsRecovered { .. } => "mds_recovered",
            EventKind::SubtreeShed { .. } => "subtree_shed",
            EventKind::SubtreeClaimed { .. } => "subtree_claimed",
            EventKind::GlRecut { .. } => "gl_recut",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::Forwarded { .. } => "forwarded",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::MdsRejoined { .. } => "mds_rejoined",
            EventKind::StoreRecovered { .. } => "store_recovered",
            EventKind::GlDeltaSync { .. } => "gl_delta_sync",
            EventKind::LeaderElected { .. } => "leader_elected",
            EventKind::LeaseGranted { .. } => "lease_granted",
            EventKind::FenceRejected { .. } => "fence_rejected",
        }
    }
}

/// One journal entry: a kind plus ordering metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Global sequence number, strictly increasing across the journal's
    /// lifetime (survives ring-buffer eviction).
    pub seq: u64,
    /// Microseconds since the journal was created. Monotone: derived
    /// from [`Instant`], never wall-clock.
    pub ts_us: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A bounded, thread-safe ring buffer of [`Event`]s. When full, the
/// oldest event is dropped; sequence numbers keep counting so eviction
/// is detectable.
pub struct EventJournal {
    started: Instant,
    seq: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<Event>>,
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl EventJournal {
    /// An empty journal retaining at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventJournal {
            started: Instant::now(),
            seq: AtomicU64::new(0),
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Appends an event, evicting the oldest when full. Returns the
    /// event's sequence number.
    pub fn record(&self, kind: EventKind) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ts_us = self.started.elapsed().as_micros() as u64;
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(Event { seq, ts_us, kind });
        seq
    }

    /// Events currently retained, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .copied()
            .collect()
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the journal holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (including evicted ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Discards all retained events (sequence numbers keep counting).
    pub fn clear(&self) {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_monotone_stamps() {
        let j = EventJournal::new(8);
        for mds in 0..5 {
            j.record(EventKind::MdsDown { mds });
        }
        let events = j.snapshot();
        assert_eq!(events.len(), 5);
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].ts_us <= w[1].ts_us);
        }
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_sequence() {
        let j = EventJournal::new(3);
        for mds in 0..10u16 {
            j.record(EventKind::Heartbeat { mds, load: 1.0 });
        }
        let events = j.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 7);
        assert_eq!(j.recorded(), 10);
        assert_eq!(j.capacity(), 3);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EventKind::MdsDown { mds: 0 }.label(), "mds_down");
        assert_eq!(
            EventKind::SubtreeClaimed {
                to: 0,
                subtree: 0,
                size: 0,
                popularity: 0.0
            }
            .label(),
            "subtree_claimed"
        );
    }
}
