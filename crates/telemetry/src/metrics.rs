//! Lock-free metric primitives and the [`Registry`] that owns them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use crate::journal::{Event, EventJournal};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time level that can move both ways (queue depths,
/// worker occupancy). Saturates at zero on decrement.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the level by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Raises the level to at least `v` (peak tracking). The plain-load
    /// guard keeps the common no-op case free of the `fetch_max` CAS loop
    /// (peaks stabilise fast); racing updates still converge to the true
    /// maximum through the RMW.
    pub fn max(&self, v: u64) {
        if v > self.value.load(Ordering::Relaxed) {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current level.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per power of two,
/// bounding the relative quantile error at 1/16 ≈ 6.25%.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;
/// Values below `SUB` get exact unit buckets; each of the remaining
/// `64 - SUB_BITS` powers of two contributes `SUB` sub-buckets.
const NUM_BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
        ((msb - SUB_BITS) as usize) * SUB as usize + SUB as usize + sub
    }
}

/// Inclusive value range covered by bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB as usize {
        (i as u64, i as u64)
    } else {
        let major = (i - SUB as usize) as u32 / SUB as u32 + SUB_BITS;
        let sub = ((i - SUB as usize) % SUB as usize) as u64;
        let width = 1u64 << (major - SUB_BITS);
        let lo = (1u64 << major) + sub * width;
        // `lo + (width - 1)`, not `lo + width - 1`: the top bucket's
        // upper bound is exactly `u64::MAX`, so summing `lo + width`
        // first would overflow.
        (lo, lo + (width - 1))
    }
}

/// A fixed log-bucketed histogram of `u64` samples (latencies in
/// microseconds, sizes in entries, …).
///
/// Recording is a relaxed atomic increment; quantile extraction walks
/// the bucket array. The value returned for a quantile is the midpoint
/// of the bucket holding that rank, exact for values below 16 and
/// within ~6.25% relative error above.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> =
            buckets.into_boxed_slice().try_into().expect("exact length");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Min/max updates are guarded by a plain load so
    /// the steady state (sample inside the seen range) costs three relaxed
    /// `fetch_add`s and two loads — no CAS loops.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        if v < self.min.load(Ordering::Relaxed) {
            self.min.fetch_min(v, Ordering::Relaxed);
        }
        if v > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The approximate value at quantile `q` (clamped to `[0, 1]`), or
    /// 0 when the histogram is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return lo + (hi - lo) / 2;
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Freezes the histogram into plain numbers for export.
    ///
    /// Safe against concurrent [`record`](Self::record) calls: the
    /// bucket array is copied *once* and every derived statistic
    /// (count, all four quantiles) comes from that one coherent view,
    /// so quantiles are always mutually monotone (p50 ≤ p90 ≤ p99 ≤
    /// p999) even while other threads are recording. Calling
    /// [`quantile`](Self::quantile) four times instead would re-read
    /// the live buckets per call — racing records between calls can
    /// then yield a p90 *below* the p50. Quantile midpoints are
    /// additionally clamped into the observed `[min, max]`, so a
    /// scrape never reports a percentile outside the recorded range
    /// (the min/max cells are updated after the bucket cell, so a
    /// torn read could otherwise surface a p99 above the max).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut frozen = [0u64; NUM_BUCKETS];
        let mut count = 0u64;
        for (slot, b) in frozen.iter_mut().zip(self.buckets.iter()) {
            let v = b.load(Ordering::Relaxed);
            *slot = v;
            count += v;
        }
        if count == 0 {
            return HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0,
                p999: 0,
            };
        }
        let mut min = self.min.load(Ordering::Relaxed);
        let mut max = self.max.load(Ordering::Relaxed);
        if min > max {
            // A racing first record has bumped its bucket but not yet
            // stored min/max. Derive a coherent range from the frozen
            // buckets instead of surfacing the torn sentinel values.
            let first = frozen.iter().position(|&n| n > 0).expect("count > 0");
            let last = frozen.iter().rposition(|&n| n > 0).expect("count > 0");
            min = bucket_bounds(first).0;
            max = bucket_bounds(last).1;
        }
        let quantile_of = |q: f64| -> u64 {
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in frozen.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    let (lo, hi) = bucket_bounds(i);
                    return (lo + (hi - lo) / 2).clamp(min, max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min,
            max,
            p50: quantile_of(0.50),
            p90: quantile_of(0.90),
            p99: quantile_of(0.99),
            p999: quantile_of(0.999),
        }
    }
}

/// A non-atomic, single-owner recorder mirroring [`Histogram`]'s bucket
/// layout, for hot single-threaded loops (e.g. the discrete-event
/// simulator): record with plain arithmetic, then [`flush_into`] the
/// shared histogram once.
///
/// [`flush_into`]: LocalHistogram::flush_into
pub struct LocalHistogram {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram::new()
    }
}

impl std::fmt::Debug for LocalHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .finish_non_exhaustive()
    }
}

impl LocalHistogram {
    /// An empty local recorder.
    #[must_use]
    pub fn new() -> Self {
        let buckets: Box<[u64; NUM_BUCKETS]> = vec![0u64; NUM_BUCKETS]
            .into_boxed_slice()
            .try_into()
            .expect("exact length");
        LocalHistogram {
            buckets,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample (plain arithmetic, no atomics).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds everything recorded so far to a shared [`Histogram`] (one
    /// atomic add per non-empty bucket).
    pub fn flush_into(&self, h: &Histogram) {
        if self.count == 0 {
            return;
        }
        for (i, &n) in self.buckets.iter().enumerate() {
            if n != 0 {
                h.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        h.count.fetch_add(self.count, Ordering::Relaxed);
        h.sum.fetch_add(self.sum, Ordering::Relaxed);
        h.min.fetch_min(self.min, Ordering::Relaxed);
        h.max.fetch_max(self.max, Ordering::Relaxed);
    }
}

/// Plain-number view of a [`Histogram`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistogramSnapshot {
    /// Mean of the snapshot's samples, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Identifies one metric instance: a name, optionally scoped to an MDS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Metric name (see [`crate::names`]).
    pub name: &'static str,
    /// Owning MDS, or `None` for cluster-wide metrics.
    pub mds: Option<u16>,
}

impl MetricKey {
    /// A cluster-wide key.
    #[must_use]
    pub fn global(name: &'static str) -> Self {
        MetricKey { name, mds: None }
    }

    /// A per-MDS key.
    #[must_use]
    pub fn mds(name: &'static str, mds: u16) -> Self {
        MetricKey {
            name,
            mds: Some(mds),
        }
    }
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.mds {
            Some(m) => write!(f, "{}{{mds={m}}}", self.name),
            None => f.write_str(self.name),
        }
    }
}

/// Owns every metric and the event journal for one cluster (simulated
/// or live).
///
/// Lookups take a `RwLock` on the relevant map; hot paths should call
/// [`Registry::counter`]/[`Registry::histogram`] once and cache the
/// returned `Arc`.
pub struct Registry {
    started: Instant,
    counters: RwLock<BTreeMap<MetricKey, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<MetricKey, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<MetricKey, Arc<Histogram>>>,
    journal: Arc<EventJournal>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("uptime_us", &self.uptime_us())
            .field("journal_len", &self.journal.len())
            .finish_non_exhaustive()
    }
}

impl Registry {
    /// Default journal capacity (events retained before the oldest are
    /// overwritten).
    pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

    /// An empty registry with the default journal capacity.
    #[must_use]
    pub fn new() -> Self {
        Registry::with_journal_capacity(Self::DEFAULT_JOURNAL_CAPACITY)
    }

    /// An empty registry retaining at most `capacity` journal events.
    #[must_use]
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Registry {
            started: Instant::now(),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            journal: Arc::new(EventJournal::new(capacity)),
        }
    }

    /// Microseconds since the registry was created (the journal's
    /// timestamp origin).
    #[must_use]
    pub fn uptime_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn get_or_insert<T: Default>(
        map: &RwLock<BTreeMap<MetricKey, Arc<T>>>,
        key: MetricKey,
    ) -> Arc<T> {
        if let Some(v) = map.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
            return Arc::clone(v);
        }
        let mut w = map.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(w.entry(key).or_default())
    }

    /// The counter registered under `key`, created on first use.
    pub fn counter(&self, key: MetricKey) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, key)
    }

    /// The gauge registered under `key`, created on first use.
    pub fn gauge(&self, key: MetricKey) -> Arc<Gauge> {
        Self::get_or_insert(&self.gauges, key)
    }

    /// The histogram registered under `key`, created on first use.
    pub fn histogram(&self, key: MetricKey) -> Arc<Histogram> {
        Self::get_or_insert(&self.histograms, key)
    }

    /// The registry's event journal. Returned as `&Arc` so components
    /// that outlive a borrow of the registry (monitor threads, …) can
    /// clone a shared handle.
    #[must_use]
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.journal
    }

    /// Freezes every metric and the journal into a plain-data
    /// [`Snapshot`] for export.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, c)| (*k, c.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, g)| (*k, g.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, h)| (*k, h.snapshot()))
            .collect();
        Snapshot {
            uptime_us: self.uptime_us(),
            counters,
            gauges,
            histograms,
            events: self.journal.snapshot(),
        }
    }
}

/// Plain-data view of a [`Registry`] at one instant, consumed by the
/// exporters in [`crate::export`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Microseconds since registry creation.
    pub uptime_us: u64,
    /// All counters, sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// All gauges, sorted by key.
    pub gauges: Vec<(MetricKey, u64)>,
    /// All histograms, sorted by key.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
    /// Journal contents, oldest first.
    pub events: Vec<Event>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        for shift in 0..64 {
            let v = 1u64 << shift;
            for probe in [
                v,
                v + (v >> 1),
                v.saturating_mul(2).saturating_sub(1).max(v),
            ] {
                let i = bucket_index(probe);
                assert!(i < NUM_BUCKETS, "index {i} for {probe}");
                assert!(i >= prev || probe < 1 << shift, "non-monotone at {probe}");
                prev = prev.max(i);
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_invert_bucket_index() {
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 12_345, u64::MAX / 3]) {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && v <= hi,
                "value {v} outside bucket {i} [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.count(), 16);
        assert_eq!(h.sum(), 120);
    }

    #[test]
    fn quantiles_of_uniform_distribution_within_error_bound() {
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.07, "q{q}: got {got}, want ~{expect} (rel {rel:.3})");
        }
    }

    #[test]
    fn local_histogram_flushes_exactly() {
        let shared = Histogram::new();
        let mut local = LocalHistogram::new();
        for v in [1u64, 7, 7, 300, 40_000] {
            local.record(v);
        }
        local.flush_into(&shared);
        local.flush_into(&shared); // flushing twice doubles everything
        assert_eq!(shared.count(), 10);
        assert_eq!(shared.sum(), 2 * (1 + 7 + 7 + 300 + 40_000));
        let snap = shared.snapshot();
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 40_000);
        assert_eq!(shared.quantile(0.3), 7);
        // An empty local flush is a no-op (and must not clobber min).
        LocalHistogram::new().flush_into(&shared);
        assert_eq!(shared.snapshot().min, 1);
    }

    #[test]
    fn gauge_saturates_at_zero() {
        let g = Gauge::new();
        g.add(3);
        g.sub(10);
        assert_eq!(g.get(), 0);
        g.max(7);
        g.max(2);
        assert_eq!(g.get(), 7);
    }

    /// Two writer threads hammer a histogram while the main thread
    /// scrapes snapshots in a tight loop. Every snapshot must be
    /// internally coherent: quantiles mutually monotone, quantiles
    /// inside `[min, max]`, and count never moving backwards. This is
    /// the loom-free stress test guarding the frozen-bucket snapshot
    /// path used by the live admin plane's `/metrics` scrape.
    #[test]
    fn snapshot_is_coherent_under_concurrent_recording() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let h = Arc::new(Histogram::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2u64)
            .map(|t| {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    // Deterministic xorshift per thread; spans several
                    // orders of magnitude so bucket walks cross ranges.
                    let mut x = 0x9e37_79b9_7f4a_7c15u64 ^ (t + 1);
                    while !stop.load(Ordering::Relaxed) {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        h.record(1 + (x % 1_000_000));
                    }
                })
            })
            .collect();

        let mut last_count = 0u64;
        let mut scrapes = 0u64;
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(200);
        while std::time::Instant::now() < deadline {
            let s = h.snapshot();
            if s.count == 0 {
                continue;
            }
            scrapes += 1;
            assert!(s.count >= last_count, "count went backwards");
            last_count = s.count;
            assert!(s.min <= s.max, "min {} > max {}", s.min, s.max);
            assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
            for (label, q) in [
                ("p50", s.p50),
                ("p90", s.p90),
                ("p99", s.p99),
                ("p999", s.p999),
            ] {
                assert!(
                    (s.min..=s.max).contains(&q),
                    "{label} {q} outside [{}, {}]",
                    s.min,
                    s.max
                );
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().expect("writer panicked");
        }
        assert!(scrapes > 100, "stress loop barely ran ({scrapes} scrapes)");
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = Registry::new();
        let a = r.counter(MetricKey::mds("x", 1));
        let b = r.counter(MetricKey::mds("x", 1));
        a.add(2);
        b.inc();
        assert_eq!(r.counter(MetricKey::mds("x", 1)).get(), 3);
        assert_eq!(r.counter(MetricKey::mds("x", 2)).get(), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 2);
    }
}
