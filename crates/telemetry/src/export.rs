//! Snapshot exporters: Prometheus text exposition and JSON.
//!
//! Both are hand-rolled string builders so the crate stays free of
//! external dependencies. Metric names are prefixed `d2tree_` and
//! sanitised to `[a-zA-Z0-9_]`.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::journal::{Event, EventKind};
use crate::metrics::{MetricKey, Snapshot};

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn prom_line(
    out: &mut String,
    name: &str,
    key: MetricKey,
    extra: Option<(&str, &str)>,
    value: impl std::fmt::Display,
) {
    out.push_str(name);
    let mut labels = Vec::new();
    if let Some(m) = key.mds {
        labels.push(format!("mds=\"{m}\""));
    }
    if let Some((k, v)) = extra {
        labels.push(format!("{k}=\"{v}\""));
    }
    if !labels.is_empty() {
        let _ = write!(out, "{{{}}}", labels.join(","));
    }
    let _ = writeln!(out, " {value}");
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Counters become `d2tree_<name>` counters, gauges become gauges, and
/// histograms become summary-style families with `_count`, `_sum` and
/// `{quantile="…"}` series. Journal contents are aggregated into
/// `d2tree_journal_events_total{kind="…"}`.
#[must_use]
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# D2-Tree telemetry snapshot (uptime {} us)",
        snap.uptime_us
    );

    let mut last_family = "";
    for &(key, value) in &snap.counters {
        let family = key.name;
        if family != last_family {
            let name = format!("d2tree_{}", sanitize(family));
            let _ = writeln!(out, "# TYPE {name} counter");
            last_family = family;
        }
        prom_line(
            &mut out,
            &format!("d2tree_{}", sanitize(family)),
            key,
            None,
            value,
        );
    }

    let mut last_family = "";
    for &(key, value) in &snap.gauges {
        let family = key.name;
        if family != last_family {
            let name = format!("d2tree_{}", sanitize(family));
            let _ = writeln!(out, "# TYPE {name} gauge");
            last_family = family;
        }
        prom_line(
            &mut out,
            &format!("d2tree_{}", sanitize(family)),
            key,
            None,
            value,
        );
    }

    let mut last_family = "";
    for &(key, h) in &snap.histograms {
        let family = key.name;
        let name = format!("d2tree_{}", sanitize(family));
        if family != last_family {
            let _ = writeln!(out, "# TYPE {name} summary");
            last_family = family;
        }
        for (q, v) in [
            ("0.5", h.p50),
            ("0.9", h.p90),
            ("0.99", h.p99),
            ("0.999", h.p999),
        ] {
            prom_line(&mut out, &name, key, Some(("quantile", q)), v);
        }
        prom_line(&mut out, &format!("{name}_count"), key, None, h.count);
        prom_line(&mut out, &format!("{name}_sum"), key, None, h.sum);
    }

    if !snap.events.is_empty() {
        let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        for e in &snap.events {
            *by_kind.entry(e.kind.label()).or_default() += 1;
        }
        let _ = writeln!(out, "# TYPE d2tree_journal_events_total counter");
        for (kind, n) in by_kind {
            let _ = writeln!(out, "d2tree_journal_events_total{{kind=\"{kind}\"}} {n}");
        }
    }

    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Trim to a compact fixed representation; metrics are loads and
        // popularities where 6 decimals is plenty.
        let s = format!("{v:.6}");
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    } else {
        "null".to_owned()
    }
}

fn json_key(out: &mut String, key: MetricKey) {
    let _ = write!(out, "\"name\":\"{}\",", sanitize(key.name));
    match key.mds {
        Some(m) => {
            let _ = write!(out, "\"mds\":{m},");
        }
        None => out.push_str("\"mds\":null,"),
    }
}

fn json_event(out: &mut String, e: &Event) {
    let _ = write!(
        out,
        "{{\"seq\":{},\"ts_us\":{},\"kind\":\"{}\"",
        e.seq,
        e.ts_us,
        e.kind.label()
    );
    match e.kind {
        EventKind::Heartbeat { mds, load } => {
            let _ = write!(out, ",\"mds\":{mds},\"load\":{}", json_f64(load));
        }
        EventKind::MdsDown { mds } | EventKind::MdsRecovered { mds } => {
            let _ = write!(out, ",\"mds\":{mds}");
        }
        EventKind::SubtreeShed {
            from,
            subtree,
            size,
            popularity,
        } => {
            let _ = write!(
                out,
                ",\"from\":{from},\"subtree\":{subtree},\"size\":{size},\"popularity\":{}",
                json_f64(popularity)
            );
        }
        EventKind::SubtreeClaimed {
            to,
            subtree,
            size,
            popularity,
        } => {
            let _ = write!(
                out,
                ",\"to\":{to},\"subtree\":{subtree},\"size\":{size},\"popularity\":{}",
                json_f64(popularity)
            );
        }
        EventKind::GlRecut {
            promoted,
            demoted,
            churn,
        } => {
            let _ = write!(
                out,
                ",\"promoted\":{promoted},\"demoted\":{demoted},\"churn\":{churn}"
            );
        }
        EventKind::CacheMiss { client } => {
            let _ = write!(out, ",\"client\":{client}");
        }
        EventKind::Forwarded { from, to } => {
            let _ = write!(out, ",\"from\":{from},\"to\":{to}");
        }
        EventKind::FaultInjected { fault, mds } => {
            let _ = write!(out, ",\"fault\":\"{}\",\"mds\":{mds}", fault.label());
        }
        EventKind::MdsRejoined { mds, claimed } => {
            let _ = write!(out, ",\"mds\":{mds},\"claimed\":{claimed}");
        }
        EventKind::StoreRecovered {
            mds,
            records,
            torn_bytes,
            recovery_ms,
        } => {
            let _ = write!(
                out,
                ",\"mds\":{mds},\"records\":{records},\"torn_bytes\":{torn_bytes},\"recovery_ms\":{recovery_ms}"
            );
        }
        EventKind::GlDeltaSync { mds, entries } => {
            let _ = write!(out, ",\"mds\":{mds},\"entries\":{entries}");
        }
        EventKind::LeaderElected { replica, term } => {
            let _ = write!(out, ",\"replica\":{replica},\"term\":{term}");
        }
        EventKind::LeaseGranted {
            node,
            fence,
            holder,
        } => {
            let _ = write!(
                out,
                ",\"node\":{node},\"fence\":{fence},\"holder\":{holder}"
            );
        }
        EventKind::FenceRejected { node, fence } => {
            let _ = write!(out, ",\"node\":{node},\"fence\":{fence}");
        }
    }
    out.push('}');
}

/// Renders the journal portion of a snapshot as JSON Lines: one event
/// object per line, in sequence order, so the journal can be dumped to
/// a file (`d2tree report --events-out`) and grepped or streamed.
#[must_use]
pub fn events_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for e in &snap.events {
        json_event(&mut out, e);
        out.push('\n');
    }
    out
}

/// Renders a snapshot as a self-contained JSON document.
#[must_use]
pub fn json(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"uptime_us\":{},", snap.uptime_us);

    out.push_str("\"counters\":[");
    for (i, &(key, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        json_key(&mut out, key);
        let _ = write!(out, "\"value\":{value}}}");
    }
    out.push_str("],\"gauges\":[");
    for (i, &(key, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        json_key(&mut out, key);
        let _ = write!(out, "\"value\":{value}}}");
    }
    out.push_str("],\"histograms\":[");
    for (i, &(key, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        json_key(&mut out, key);
        let _ = write!(
            out,
            "\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
            h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99, h.p999
        );
    }
    out.push_str("],\"events\":[");
    for (i, e) in snap.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_event(&mut out, e);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use crate::metrics::{MetricKey, Registry};
    use crate::names;
    use crate::EventKind;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter(MetricKey::mds(names::MDS_OPS_TOTAL, 0)).add(10);
        r.counter(MetricKey::mds(names::MDS_OPS_TOTAL, 1)).add(20);
        r.gauge(MetricKey::mds(names::MDS_QUEUE_DEPTH_PEAK, 0))
            .set(4);
        let h = r.histogram(MetricKey::global(names::OP_LATENCY_US));
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        r.journal().record(EventKind::MdsDown { mds: 1 });
        r.journal().record(EventKind::SubtreeClaimed {
            to: 0,
            subtree: 42,
            size: 7,
            popularity: 0.25,
        });
        r
    }

    #[test]
    fn prometheus_text_contains_families_labels_and_quantiles() {
        let text = super::prometheus_text(&sample_registry().snapshot());
        assert!(
            text.contains("# TYPE d2tree_mds_ops_total counter"),
            "{text}"
        );
        assert!(
            text.contains("d2tree_mds_ops_total{mds=\"1\"} 20"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE d2tree_op_latency_us summary"),
            "{text}"
        );
        assert!(text.contains("quantile=\"0.99\""), "{text}");
        assert!(text.contains("d2tree_op_latency_us_count 5"), "{text}");
        assert!(
            text.contains("d2tree_journal_events_total{kind=\"mds_down\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn events_jsonl_is_one_object_per_line_in_seq_order() {
        let snap = sample_registry().snapshot();
        let doc = super::events_jsonl(&snap);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), snap.events.len());
        assert!(lines[0].contains("\"kind\":\"mds_down\""), "{doc}");
        assert!(lines[1].contains("\"kind\":\"subtree_claimed\""), "{doc}");
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        }
    }

    #[test]
    fn registered_export_names_are_stable() {
        // The exported metric vocabulary is an external interface:
        // dashboards, the health CLI and the CI gates all key on these
        // exact strings. Renaming one must fail here first.
        const EXPECTED: &[&str] = &[
            "route_extra_hops",
            "lock_busy_ns",
            "client_cache_hits",
            "client_cache_misses",
            "forwarded_total",
            "migrations_total",
            "mds_failures_total",
            "faults_dropped_total",
            "faults_delayed_total",
            "faults_duplicated_total",
            "faults_storage_total",
            "rejoins_total",
            "wal_bytes_total",
            "wal_records_total",
            "snapshots_total",
            "gl_delta_sync_entries_total",
            "trace_spans_recorded_total",
            "trace_spans_dropped_total",
            "health_ticks_total",
            "health_violations_total",
            "elections_total",
            "leader_changes_total",
            "log_commits_total",
            "monitor_retries_total",
            "net_conns_total",
            "net_frames_total",
            "net_decode_errors_total",
            "net_conn_resets_total",
            "net_batches_total",
            "wal_group_commits_total",
            "net_active_conns",
            "net_batch_depth",
            "admin_scrapes_total",
            "admin_errors_total",
            "op_latency_us",
            "op_latency_us_read",
            "op_latency_us_write",
            "op_latency_us_update",
            "srv_latency_us_read_ok",
            "srv_latency_us_read_redirect",
            "srv_latency_us_read_error",
            "srv_latency_us_write_ok",
            "srv_latency_us_write_redirect",
            "srv_latency_us_write_error",
            "srv_latency_us_update_ok",
            "srv_latency_us_update_redirect",
            "srv_latency_us_update_error",
            "rejoin_first_claim_ms",
            "wal_append_us",
            "wal_fsync_us",
            "recovery_ms",
            "monitor_failover_ms",
        ];

        let r = Registry::new();
        names::register_all(&r);
        let snap = r.snapshot();
        // Every canonical name is pre-registered: exports carry the
        // full vocabulary as zero-valued series even on a run that
        // never touches a code path. 52 names as of the batched serving
        // path (net_batches_total, net_batch_depth,
        // wal_group_commits_total) — the CI net-smoke scrape gate keys
        // on this count too.
        assert_eq!(
            snap.counters.len() + snap.gauges.len() + snap.histograms.len(),
            EXPECTED.len()
        );
        assert_eq!(EXPECTED.len(), 52, "export vocabulary changed size");
        let prom = super::prometheus_text(&snap);
        let json = super::json(&snap);
        for name in EXPECTED {
            assert!(
                prom.contains(&format!("d2tree_{name}")),
                "{name} missing from Prometheus export"
            );
            assert!(
                json.contains(&format!("\"name\":\"{name}\"")),
                "{name} missing from JSON export"
            );
        }
    }

    #[test]
    fn json_is_structurally_sound() {
        let doc = super::json(&sample_registry().snapshot());
        assert!(doc.starts_with('{') && doc.ends_with('}'), "{doc}");
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "unbalanced braces: {doc}"
        );
        assert!(
            doc.contains("\"name\":\"mds_ops_total\",\"mds\":1,\"value\":20"),
            "{doc}"
        );
        assert!(doc.contains("\"kind\":\"subtree_claimed\""), "{doc}");
        assert!(doc.contains("\"popularity\":0.25"), "{doc}");
    }
}
