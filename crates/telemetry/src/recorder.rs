//! Flight recorder: a fixed-capacity ring of periodic cluster health
//! ticks.
//!
//! Spans (the [`crate::trace`] pipeline) answer "what did this one
//! operation do"; the flight recorder answers "how is the cluster doing
//! *over time*". Each [`HealthTick`] snapshots the paper's two global
//! quality measures — Def. 3 locality and Def. 5 balance — next to the
//! operational signals that explain them: per-tick op/retry/fault/
//! migration counts, trace-shed pressure, and the WAL group-commit
//! fsync p99 fed by the store layer. Sim replays sample once per
//! rebalance round (virtual time); the live cluster's monitor samples
//! once per heartbeat tick (wall time).
//!
//! The ring keeps the newest `capacity` ticks: a bounded black box, not
//! an unbounded log. [`HealthRules`] then turns a trajectory into a
//! verdict — `d2tree health --check` exits non-zero when any tick after
//! warm-up violates a rule.

use std::collections::VecDeque;

#[cfg(test)]
use crate::metrics::MetricKey;
use crate::metrics::Registry;
use crate::names;

/// One periodic health sample.
///
/// Counter-style fields (`ops`, `retries`, `faults`, `migrations`,
/// `spans_dropped`) are **per-tick deltas**, not cumulative totals;
/// `locality`, `balance`, `wal_fsync_p99_us` and `loads` are the state
/// at the instant of sampling. `locality` and `balance` are `+∞` for
/// perfect scores (Def. 3 / Def. 5 are reciprocals of a penalty term)
/// and `locality` is NaN where the sampler has no popularity model to
/// evaluate it (the live monitor); both serialize as `null` in JSONL.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthTick {
    /// Monotone tick number, counted from 0 over the recorder's life
    /// (keeps numbering even after the ring evicts old ticks).
    pub tick: u64,
    /// Sample time in microseconds (virtual for sim, wall for live).
    pub t_us: u64,
    /// Sample time in whole milliseconds (`t_us / 1000`). Redundant
    /// with `t_us` but stamped into every export so a live `/health`
    /// scrape and a post-hoc `d2tree health` dump can be joined on
    /// (`tick`, `t_ms`) without consumers re-deriving the unit.
    pub t_ms: u64,
    /// Def. 3 system locality at this tick (NaN when unavailable).
    pub locality: f64,
    /// Def. 5 load-balance degree at this tick.
    pub balance: f64,
    /// Operations completed since the previous tick.
    pub ops: u64,
    /// Retries/forwards (extra routing hops) since the previous tick.
    pub retries: u64,
    /// Fault injections observed since the previous tick.
    pub faults: u64,
    /// Subtree migrations since the previous tick.
    pub migrations: u64,
    /// Trace spans shed by the sink since the previous tick.
    pub spans_dropped: u64,
    /// Worst per-MDS WAL fsync p99 (µs) at this tick; 0 without a store.
    pub wal_fsync_p99_us: u64,
    /// Per-MDS load (served ops or popularity mass) at this tick.
    pub loads: Vec<f64>,
}

/// Cumulative inputs for one tick; the recorder differences them
/// against the previous sample itself.
///
/// Callers pass running totals (which is what simulators and registries
/// naturally hold); [`FlightRecorder::sample`] turns them into the
/// per-tick deltas stored in [`HealthTick`].
#[derive(Debug, Clone, Default)]
pub struct TickSample {
    /// Sample time in microseconds.
    pub t_us: u64,
    /// Def. 3 locality right now (NaN if unknown).
    pub locality: f64,
    /// Def. 5 balance right now.
    pub balance: f64,
    /// Cumulative operations completed.
    pub ops_total: u64,
    /// Cumulative retries/forwards/extra hops.
    pub retries_total: u64,
    /// Cumulative subtree migrations.
    pub migrations_total: u64,
    /// Per-MDS load right now.
    pub loads: Vec<f64>,
}

/// Fixed-capacity ring of [`HealthTick`]s, newest last.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ticks: VecDeque<HealthTick>,
    total: u64,
    prev_ops: u64,
    prev_retries: u64,
    prev_migrations: u64,
    prev_faults: u64,
    prev_dropped: u64,
}

impl FlightRecorder {
    /// A recorder keeping the newest `capacity` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "recorder needs room for at least one tick");
        FlightRecorder {
            capacity,
            ticks: VecDeque::with_capacity(capacity),
            total: 0,
            prev_ops: 0,
            prev_retries: 0,
            prev_migrations: 0,
            prev_faults: 0,
            prev_dropped: 0,
        }
    }

    /// Ring capacity in ticks.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ticks currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// Whether no tick has been kept.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Ticks recorded over the recorder's lifetime, including evicted
    /// ones.
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// The held ticks, oldest first.
    pub fn ticks(&self) -> impl Iterator<Item = &HealthTick> {
        self.ticks.iter()
    }

    /// The newest tick, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&HealthTick> {
        self.ticks.back()
    }

    /// Records one sample: differences the cumulative counters in `s`
    /// against the previous sample, pulls fault/shed/fsync signals from
    /// `registry` (when attached), and appends the tick — evicting the
    /// oldest when the ring is full.
    pub fn sample(&mut self, s: TickSample, registry: Option<&Registry>) -> &HealthTick {
        let (faults_total, dropped_total, fsync_p99) = registry.map_or((0, 0, 0), registry_signals);
        let tick = HealthTick {
            tick: self.total,
            t_us: s.t_us,
            t_ms: s.t_us / 1000,
            locality: s.locality,
            balance: s.balance,
            ops: s.ops_total.saturating_sub(self.prev_ops),
            retries: s.retries_total.saturating_sub(self.prev_retries),
            faults: faults_total.saturating_sub(self.prev_faults),
            migrations: s.migrations_total.saturating_sub(self.prev_migrations),
            spans_dropped: dropped_total.saturating_sub(self.prev_dropped),
            wal_fsync_p99_us: fsync_p99,
            loads: s.loads,
        };
        self.prev_ops = s.ops_total;
        self.prev_retries = s.retries_total;
        self.prev_migrations = s.migrations_total;
        self.prev_faults = faults_total;
        self.prev_dropped = dropped_total;
        self.total += 1;
        if self.ticks.len() == self.capacity {
            self.ticks.pop_front();
        }
        self.ticks.push_back(tick);
        self.ticks.back().expect("just pushed")
    }

    /// The trajectory as JSON Lines: one object per held tick, oldest
    /// first. Non-finite locality/balance serialize as `null`.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for t in &self.ticks {
            out.push_str(&format!(
                "{{\"tick\":{},\"t_us\":{},\"t_ms\":{},\"locality\":{},\"balance\":{},\"ops\":{},\
                 \"retries\":{},\"faults\":{},\"migrations\":{},\"spans_dropped\":{},\
                 \"wal_fsync_p99_us\":{},\"loads\":[",
                t.tick,
                t.t_us,
                t.t_ms,
                json_f64(t.locality),
                json_f64(t.balance),
                t.ops,
                t.retries,
                t.faults,
                t.migrations,
                t.spans_dropped,
                t.wal_fsync_p99_us,
            ));
            for (i, l) in t.loads.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_f64(*l));
            }
            out.push_str("]}\n");
        }
        out
    }

    /// The trajectory as CSV with a header row (loads joined by `;` in
    /// one column, so the column set is fixed regardless of cluster
    /// size). Non-finite locality/balance render as `inf`/`nan`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "tick,t_us,t_ms,locality,balance,ops,retries,faults,migrations,\
             spans_dropped,wal_fsync_p99_us,loads\n",
        );
        for t in &self.ticks {
            let loads: Vec<String> = t.loads.iter().map(|l| format!("{l}")).collect();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{}\n",
                t.tick,
                t.t_us,
                t.t_ms,
                t.locality,
                t.balance,
                t.ops,
                t.retries,
                t.faults,
                t.migrations,
                t.spans_dropped,
                t.wal_fsync_p99_us,
                loads.join(";"),
            ));
        }
        out
    }
}

/// Renders an `f64` as a JSON value; infinities and NaN become `null`
/// (JSON has no representation for them).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Cumulative fault count, cumulative trace sheds, and the worst WAL
/// fsync p99 across every MDS lane, read from a registry snapshot.
fn registry_signals(registry: &Registry) -> (u64, u64, u64) {
    let snap = registry.snapshot();
    let mut faults = 0u64;
    let mut dropped = 0u64;
    for (key, v) in &snap.counters {
        match key.name {
            names::FAULTS_DROPPED
            | names::FAULTS_DELAYED
            | names::FAULTS_DUPLICATED
            | names::FAULTS_STORAGE => faults += v,
            names::TRACE_SPANS_DROPPED => dropped += v,
            _ => {}
        }
    }
    let fsync_p99 = snap
        .histograms
        .iter()
        .filter(|(key, _)| key.name == names::WAL_FSYNC_US)
        .map(|(_, h)| h.p99)
        .max()
        .unwrap_or(0);
    (faults, dropped, fsync_p99)
}

/// Thresholds a health trajectory must respect.
///
/// Remember Def. 3 / Def. 5 are "bigger is better" (reciprocals of a
/// penalty): the balance rule is a floor, the others ceilings. Ticks
/// with index `< warmup_ticks` are exempt — the first rounds of a
/// drift run start from a placement built for no popularity at all.
#[derive(Debug, Clone)]
pub struct HealthRules {
    /// Floor on Def. 5 balance after warm-up.
    pub min_balance: f64,
    /// Ceiling on retries per completed op in any tick.
    pub max_retry_rate: f64,
    /// Ceiling on the per-tick WAL fsync p99, microseconds
    /// (0 disables the rule — e.g. runs without a durable store).
    pub max_fsync_p99_us: u64,
    /// Ticks at the start of the trajectory exempt from the rules.
    pub warmup_ticks: u64,
}

impl Default for HealthRules {
    fn default() -> Self {
        HealthRules {
            min_balance: 1.0,
            max_retry_rate: 1.0,
            max_fsync_p99_us: 0,
            warmup_ticks: 1,
        }
    }
}

/// One rule broken at one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The offending tick number.
    pub tick: u64,
    /// Which rule broke (stable machine-readable label).
    pub rule: &'static str,
    /// The observed value.
    pub value: f64,
    /// The configured limit it crossed.
    pub limit: f64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tick {}: {} ({:.4} vs limit {:.4})",
            self.tick, self.rule, self.value, self.limit
        )
    }
}

/// Rule label: Def. 5 balance under the floor.
pub const RULE_BALANCE: &str = "balance_below_min";
/// Rule label: retry rate over the ceiling.
pub const RULE_RETRY_RATE: &str = "retry_rate_above_max";
/// Rule label: WAL fsync p99 over the ceiling.
pub const RULE_FSYNC_P99: &str = "fsync_p99_above_max";

impl HealthRules {
    /// Checks every tick after warm-up; returns all violations in tick
    /// order (empty means healthy).
    #[must_use]
    pub fn check<'a>(&self, ticks: impl IntoIterator<Item = &'a HealthTick>) -> Vec<Violation> {
        let mut out = Vec::new();
        for t in ticks {
            if t.tick < self.warmup_ticks {
                continue;
            }
            // NaN balance never fires (no data is not imbalance);
            // comparisons with NaN are false, which is what we want.
            if t.balance < self.min_balance {
                out.push(Violation {
                    tick: t.tick,
                    rule: RULE_BALANCE,
                    value: t.balance,
                    limit: self.min_balance,
                });
            }
            if t.ops > 0 {
                let rate = t.retries as f64 / t.ops as f64;
                if rate > self.max_retry_rate {
                    out.push(Violation {
                        tick: t.tick,
                        rule: RULE_RETRY_RATE,
                        value: rate,
                        limit: self.max_retry_rate,
                    });
                }
            }
            if self.max_fsync_p99_us > 0 && t.wal_fsync_p99_us > self.max_fsync_p99_us {
                out.push(Violation {
                    tick: t.tick,
                    rule: RULE_FSYNC_P99,
                    value: t.wal_fsync_p99_us as f64,
                    limit: self.max_fsync_p99_us as f64,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: u64, balance: f64) -> TickSample {
        TickSample {
            t_us: t * 1000,
            locality: 2.5,
            balance,
            ops_total: t * 100,
            retries_total: t * 3,
            migrations_total: t,
            loads: vec![1.0, 2.0],
        }
    }

    #[test]
    fn deltas_are_differenced_and_numbering_survives_eviction() {
        let mut rec = FlightRecorder::new(3);
        for t in 1..=5 {
            rec.sample(sample(t, 10.0), None);
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.total_recorded(), 5);
        let ticks: Vec<_> = rec.ticks().collect();
        // Oldest held tick is #2 (0 and 1 evicted), deltas are per-tick.
        assert_eq!(ticks[0].tick, 2);
        assert_eq!(ticks[2].tick, 4);
        assert!(ticks.iter().all(|t| t.ops == 100 && t.retries == 3));
        assert_eq!(rec.latest().expect("non-empty").t_us, 5000);
    }

    #[test]
    fn jsonl_and_csv_render_every_held_tick() {
        let mut rec = FlightRecorder::new(4);
        rec.sample(sample(1, f64::INFINITY), None);
        rec.sample(sample(2, 7.25), None);
        let jsonl = rec.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"balance\":null"), "inf → null: {jsonl}");
        assert!(jsonl.contains("\"balance\":7.25"));
        assert!(jsonl.contains("\"loads\":[1,2]"));
        let csv = rec.to_csv();
        assert_eq!(csv.lines().count(), 3, "header + 2 rows");
        assert!(csv.starts_with("tick,t_us,t_ms,locality,balance"));
        assert!(csv.contains("1;2"), "loads joined by ';': {csv}");
    }

    /// Pins the export schema: the exact CSV header and the exact JSONL
    /// key set, in order. Live `/health` consumers and post-hoc
    /// `d2tree health` tooling join rows on (`tick`, `t_ms`), so a
    /// renamed or reordered column is a breaking change this test must
    /// catch before it ships.
    #[test]
    fn export_schema_is_pinned() {
        let mut rec = FlightRecorder::new(2);
        rec.sample(sample(3, 4.5), None);
        let csv = rec.to_csv();
        assert_eq!(
            csv.lines().next().expect("header"),
            "tick,t_us,t_ms,locality,balance,ops,retries,faults,migrations,\
             spans_dropped,wal_fsync_p99_us,loads"
        );
        let row = csv.lines().nth(1).expect("one data row");
        assert_eq!(row.split(',').count(), 12, "column count: {row}");

        let jsonl = rec.to_jsonl();
        let line = jsonl.lines().next().expect("one JSONL row");
        let keys: Vec<&str> = line
            .match_indices('"')
            .collect::<Vec<_>>()
            .chunks(2)
            .map(|pair| &line[pair[0].0 + 1..pair[1].0])
            .collect();
        assert_eq!(
            keys,
            [
                "tick",
                "t_us",
                "t_ms",
                "locality",
                "balance",
                "ops",
                "retries",
                "faults",
                "migrations",
                "spans_dropped",
                "wal_fsync_p99_us",
                "loads"
            ]
        );
        // t_ms is derived from t_us by integer division; tick numbering
        // is monotone from 0 — the join key is stable across exports.
        assert!(line.contains("\"t_us\":3000") && line.contains("\"t_ms\":3"));
        assert!(line.starts_with("{\"tick\":0,"));
    }

    #[test]
    fn registry_signals_feed_faults_sheds_and_fsync() {
        let registry = Registry::new();
        registry
            .counter(MetricKey::global(names::FAULTS_DROPPED))
            .add(4);
        registry
            .counter(MetricKey::global(names::FAULTS_STORAGE))
            .add(1);
        registry
            .counter(MetricKey::global(names::TRACE_SPANS_DROPPED))
            .add(9);
        registry
            .histogram(MetricKey::mds(names::WAL_FSYNC_US, 0))
            .record(100);
        registry
            .histogram(MetricKey::mds(names::WAL_FSYNC_US, 1))
            .record(900);
        let mut rec = FlightRecorder::new(2);
        let tick = rec.sample(sample(1, 5.0), Some(&registry)).clone();
        assert_eq!(tick.faults, 5);
        assert_eq!(tick.spans_dropped, 9);
        assert!(tick.wal_fsync_p99_us >= 900, "worst lane p99 wins");
        // Second sample with no counter movement: deltas collapse to 0.
        let tick2 = rec.sample(sample(2, 5.0), Some(&registry)).clone();
        assert_eq!((tick2.faults, tick2.spans_dropped), (0, 0));
    }

    #[test]
    fn rules_flag_imbalance_retry_spikes_and_fsync_regressions() {
        let mut rec = FlightRecorder::new(8);
        rec.sample(sample(1, 0.1), None); // warm-up: exempt
        rec.sample(sample(2, 0.1), None); // imbalance
        rec.sample(
            TickSample {
                t_us: 3000,
                locality: 2.0,
                balance: 50.0,
                ops_total: 210,
                retries_total: 200, // 194 retries / 10 ops this tick
                migrations_total: 3,
                loads: vec![1.0],
            },
            None,
        );
        let rules = HealthRules {
            min_balance: 1.0,
            max_retry_rate: 0.5,
            max_fsync_p99_us: 0,
            warmup_ticks: 1,
        };
        let violations = rules.check(rec.ticks());
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert_eq!(violations[0].rule, RULE_BALANCE);
        assert_eq!(violations[0].tick, 1);
        assert_eq!(violations[1].rule, RULE_RETRY_RATE);
        // Fsync rule fires only when enabled and exceeded.
        let mut rec2 = FlightRecorder::new(2);
        let registry = Registry::new();
        registry
            .histogram(MetricKey::mds(names::WAL_FSYNC_US, 0))
            .record(10_000);
        rec2.sample(sample(1, 100.0), Some(&registry));
        rec2.sample(sample(2, 100.0), Some(&registry));
        let fsync_rules = HealthRules {
            max_fsync_p99_us: 5_000,
            warmup_ticks: 0,
            ..HealthRules::default()
        };
        let v = fsync_rules.check(rec2.ticks());
        assert!(
            v.iter().all(|v| v.rule == RULE_FSYNC_P99) && !v.is_empty(),
            "{v:?}"
        );
        assert!(
            HealthRules::default().max_fsync_p99_us == 0,
            "off by default"
        );
    }

    #[test]
    #[should_panic(expected = "at least one tick")]
    fn zero_capacity_panics() {
        let _ = FlightRecorder::new(0);
    }
}
