//! Observability substrate for the D2-Tree reproduction.
//!
//! The paper's dynamic-adjustment loop (Sec. IV) is driven entirely by
//! measurement: per-MDS load, heartbeat liveness, and subtree-migration
//! activity. This crate provides the measurement primitives the rest of
//! the workspace instruments itself with:
//!
//! * [`Counter`] / [`Gauge`] — lock-free `AtomicU64`-backed scalars.
//! * [`Histogram`] — fixed log-bucketed latency histogram with
//!   p50/p90/p99/p999 extraction and a bounded relative error.
//! * [`Registry`] — owns all metrics, keyed by metric name plus an
//!   optional MDS id, and an embedded [`EventJournal`].
//! * [`EventJournal`] — a bounded ring buffer of structured
//!   [`Event`]s ([`EventKind::MdsDown`], [`EventKind::SubtreeShed`],
//!   …) with monotone timestamps and global sequence numbers.
//! * [`export`] — Prometheus text exposition and JSON snapshot
//!   rendering, both hand-rolled so the crate stays dependency-free.
//!
//! Everything is `Sync`; instrumented code shares an `Arc<Registry>`
//! and caches `Arc<Counter>` handles outside hot loops. When no
//! registry is attached, call sites skip instrumentation entirely, so
//! the disabled-telemetry cost is a branch on an `Option`.

#![warn(missing_docs)]

mod journal;
mod metrics;

pub mod export;
pub mod recorder;
pub mod sink;
pub mod trace;

pub use journal::{Event, EventJournal, EventKind, FaultKind};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, LocalHistogram, MetricKey, Registry, Snapshot,
};
pub use recorder::{FlightRecorder, HealthRules, HealthTick, TickSample, Violation};
pub use sink::{flush_thread_local, PackedSpans, SinkRegistry, SpanSink};
pub use trace::{ArgKey, Sampler, Span, SpanArgs, SpanCtx, SpanId, SpanName, TraceId, Tracer};

/// Canonical metric names used across the workspace, so call sites,
/// exporters and docs agree on spelling.
pub mod names {
    /// Per-MDS count of metadata operations served (simulator).
    pub const MDS_OPS_TOTAL: &str = "mds_ops_total";
    /// Per-MDS nanoseconds spent busy serving (simulator).
    pub const MDS_BUSY_NS: &str = "mds_busy_ns";
    /// Per-MDS peak queue depth observed (simulator).
    pub const MDS_QUEUE_DEPTH_PEAK: &str = "mds_queue_depth_peak";
    /// Per-MDS instantaneous queue depth (simulator).
    pub const MDS_QUEUE_DEPTH: &str = "mds_queue_depth";
    /// End-to-end op latency in microseconds, all op types (simulator).
    pub const OP_LATENCY_US: &str = "op_latency_us";
    /// End-to-end latency of metadata reads, microseconds (simulator).
    pub const OP_LATENCY_US_READ: &str = "op_latency_us_read";
    /// End-to-end latency of metadata writes, microseconds (simulator).
    pub const OP_LATENCY_US_WRITE: &str = "op_latency_us_write";
    /// End-to-end latency of metadata updates, microseconds (simulator).
    pub const OP_LATENCY_US_UPDATE: &str = "op_latency_us_update";
    /// Global-layer lock-service busy nanoseconds (simulator).
    pub const LOCK_BUSY_NS: &str = "lock_busy_ns";
    /// Extra routing hops taken beyond the first (simulator).
    pub const ROUTE_EXTRA_HOPS: &str = "route_extra_hops";
    /// Client cache hits (live cluster).
    pub const CLIENT_CACHE_HITS: &str = "client_cache_hits";
    /// Client cache misses (live cluster).
    pub const CLIENT_CACHE_MISSES: &str = "client_cache_misses";
    /// Requests forwarded/redirected between servers (live cluster).
    pub const FORWARDED_TOTAL: &str = "forwarded_total";
    /// Per-MDS requests served (live cluster).
    pub const SERVER_SERVED_TOTAL: &str = "server_served_total";
    /// Subtree migrations executed (live cluster + adjuster).
    pub const MIGRATIONS_TOTAL: &str = "migrations_total";
    /// MDS failures declared by the monitor.
    pub const MDS_FAILURES_TOTAL: &str = "mds_failures_total";
    /// Messages dropped by the fault-injection layer.
    pub const FAULTS_DROPPED: &str = "faults_dropped_total";
    /// Messages delayed (or reordered) by the fault-injection layer.
    pub const FAULTS_DELAYED: &str = "faults_delayed_total";
    /// Messages duplicated by the fault-injection layer.
    pub const FAULTS_DUPLICATED: &str = "faults_duplicated_total";
    /// Crash-restart rejoins completed by the monitor.
    pub const REJOINS_TOTAL: &str = "rejoins_total";
    /// Milliseconds from restart to the rejoiner's first subtree claim.
    pub const REJOIN_FIRST_CLAIM_MS: &str = "rejoin_first_claim_ms";
    /// Per-MDS time to buffer one WAL record, microseconds (store).
    pub const WAL_APPEND_US: &str = "wal_append_us";
    /// Per-MDS group-commit fsync latency, microseconds (store).
    pub const WAL_FSYNC_US: &str = "wal_fsync_us";
    /// Per-MDS bytes appended to the WAL (store).
    pub const WAL_BYTES_TOTAL: &str = "wal_bytes_total";
    /// Per-MDS records appended to the WAL (store).
    pub const WAL_RECORDS_TOTAL: &str = "wal_records_total";
    /// Per-MDS snapshots written (store).
    pub const SNAPSHOTS_TOTAL: &str = "snapshots_total";
    /// Per-MDS local crash-recovery time, milliseconds (store).
    pub const RECOVERY_MS: &str = "recovery_ms";
    /// GL replica entries copied during delta re-sync at restart.
    pub const GL_DELTA_SYNC_ENTRIES: &str = "gl_delta_sync_entries_total";
    /// Storage faults injected (torn writes, partial fsyncs, corruption).
    pub const FAULTS_STORAGE: &str = "faults_storage_total";
    /// Spans accepted by the trace sink.
    pub const TRACE_SPANS_RECORDED: &str = "trace_spans_recorded_total";
    /// Spans shed because the trace sink was full.
    pub const TRACE_SPANS_DROPPED: &str = "trace_spans_dropped_total";
    /// Flight-recorder health ticks sampled.
    pub const HEALTH_TICKS_TOTAL: &str = "health_ticks_total";
    /// Health-rule violations observed across checked trajectories.
    pub const HEALTH_VIOLATIONS_TOTAL: &str = "health_violations_total";
    /// Elections started by control-plane replicas (candidate steps).
    pub const ELECTIONS_TOTAL: &str = "elections_total";
    /// Distinct leadership hand-offs observed by the control plane.
    pub const LEADER_CHANGES_TOTAL: &str = "leader_changes_total";
    /// Entries committed through the replicated control-plane log.
    pub const LOG_COMMITS_TOTAL: &str = "log_commits_total";
    /// Monitor/control-plane RPC retries taken under the retry policy.
    pub const MONITOR_RETRIES_TOTAL: &str = "monitor_retries_total";
    /// Leader-loss to next-commit gap across failovers, milliseconds.
    pub const MONITOR_FAILOVER_MS: &str = "monitor_failover_ms";
    /// TCP connections accepted (server) or opened (load client).
    pub const NET_CONNS_TOTAL: &str = "net_conns_total";
    /// Request/response frames carried over TCP connections.
    pub const NET_FRAMES_TOTAL: &str = "net_frames_total";
    /// Frames that failed to decode off a TCP stream (connection is
    /// then closed — a byte stream cannot re-synchronise past garbage).
    pub const NET_DECODE_ERRORS_TOTAL: &str = "net_decode_errors_total";
    /// TCP connections that ended in an I/O error or mid-frame EOF
    /// rather than a clean frame-boundary close.
    pub const NET_CONN_RESETS_TOTAL: &str = "net_conn_resets_total";
    /// TCP connections currently open against a serving daemon (gauge).
    pub const NET_ACTIVE_CONNS: &str = "net_active_conns";
    /// Request batches served off TCP connections (one batch = every
    /// complete frame drained from one read, served together).
    pub const NET_BATCHES_TOTAL: &str = "net_batches_total";
    /// Frames per served batch (histogram; mean > 1 means pipelined
    /// clients are actually exercising the batch path).
    pub const NET_BATCH_DEPTH: &str = "net_batch_depth";
    /// Per-MDS WAL group commits on the serving path: batches whose
    /// journalled mutations were made durable by one shared fsync before
    /// their responses were written back.
    pub const WAL_GROUP_COMMITS_TOTAL: &str = "wal_group_commits_total";
    /// Admin-plane requests answered (any endpoint, any status).
    pub const ADMIN_SCRAPES_TOTAL: &str = "admin_scrapes_total";
    /// Admin-plane requests rejected (garbled line, oversized path,
    /// unknown endpoint, unsupported method).
    pub const ADMIN_ERRORS_TOTAL: &str = "admin_errors_total";
    /// Server-observed serve latency, reads answered locally (µs).
    pub const SRV_LATENCY_US_READ_OK: &str = "srv_latency_us_read_ok";
    /// Server-observed serve latency, reads answered with a redirect.
    pub const SRV_LATENCY_US_READ_REDIRECT: &str = "srv_latency_us_read_redirect";
    /// Server-observed serve latency, reads answered not-found/error.
    pub const SRV_LATENCY_US_READ_ERROR: &str = "srv_latency_us_read_error";
    /// Server-observed serve latency, writes answered locally (µs).
    pub const SRV_LATENCY_US_WRITE_OK: &str = "srv_latency_us_write_ok";
    /// Server-observed serve latency, writes answered with a redirect.
    pub const SRV_LATENCY_US_WRITE_REDIRECT: &str = "srv_latency_us_write_redirect";
    /// Server-observed serve latency, writes answered not-found/error.
    pub const SRV_LATENCY_US_WRITE_ERROR: &str = "srv_latency_us_write_error";
    /// Server-observed serve latency, updates committed locally (µs).
    pub const SRV_LATENCY_US_UPDATE_OK: &str = "srv_latency_us_update_ok";
    /// Server-observed serve latency, updates answered with a redirect.
    pub const SRV_LATENCY_US_UPDATE_REDIRECT: &str = "srv_latency_us_update_redirect";
    /// Server-observed serve latency, updates answered not-found/error.
    pub const SRV_LATENCY_US_UPDATE_ERROR: &str = "srv_latency_us_update_error";

    /// Pre-registers every globally-scoped metric on `registry` so
    /// exported metric sets are identical regardless of which code
    /// paths a run happened to exercise (zero-valued series instead of
    /// absent ones). Per-MDS series still appear on first touch, since
    /// the MDS population is not known up front.
    pub fn register_all(registry: &crate::Registry) {
        use crate::MetricKey;
        const COUNTERS: &[&str] = &[
            ROUTE_EXTRA_HOPS,
            LOCK_BUSY_NS,
            CLIENT_CACHE_HITS,
            CLIENT_CACHE_MISSES,
            FORWARDED_TOTAL,
            MIGRATIONS_TOTAL,
            MDS_FAILURES_TOTAL,
            FAULTS_DROPPED,
            FAULTS_DELAYED,
            FAULTS_DUPLICATED,
            FAULTS_STORAGE,
            REJOINS_TOTAL,
            WAL_BYTES_TOTAL,
            WAL_RECORDS_TOTAL,
            SNAPSHOTS_TOTAL,
            GL_DELTA_SYNC_ENTRIES,
            TRACE_SPANS_RECORDED,
            TRACE_SPANS_DROPPED,
            HEALTH_TICKS_TOTAL,
            HEALTH_VIOLATIONS_TOTAL,
            ELECTIONS_TOTAL,
            LEADER_CHANGES_TOTAL,
            LOG_COMMITS_TOTAL,
            MONITOR_RETRIES_TOTAL,
            NET_CONNS_TOTAL,
            NET_FRAMES_TOTAL,
            NET_DECODE_ERRORS_TOTAL,
            NET_CONN_RESETS_TOTAL,
            NET_BATCHES_TOTAL,
            WAL_GROUP_COMMITS_TOTAL,
            ADMIN_SCRAPES_TOTAL,
            ADMIN_ERRORS_TOTAL,
        ];
        const GAUGES: &[&str] = &[NET_ACTIVE_CONNS];
        const HISTOGRAMS: &[&str] = &[
            OP_LATENCY_US,
            OP_LATENCY_US_READ,
            OP_LATENCY_US_WRITE,
            OP_LATENCY_US_UPDATE,
            SRV_LATENCY_US_READ_OK,
            SRV_LATENCY_US_READ_REDIRECT,
            SRV_LATENCY_US_READ_ERROR,
            SRV_LATENCY_US_WRITE_OK,
            SRV_LATENCY_US_WRITE_REDIRECT,
            SRV_LATENCY_US_WRITE_ERROR,
            SRV_LATENCY_US_UPDATE_OK,
            SRV_LATENCY_US_UPDATE_REDIRECT,
            SRV_LATENCY_US_UPDATE_ERROR,
            NET_BATCH_DEPTH,
            REJOIN_FIRST_CLAIM_MS,
            WAL_APPEND_US,
            WAL_FSYNC_US,
            RECOVERY_MS,
            MONITOR_FAILOVER_MS,
        ];
        for name in COUNTERS {
            let _ = registry.counter(MetricKey::global(name));
        }
        for name in GAUGES {
            let _ = registry.gauge(MetricKey::global(name));
        }
        for name in HISTOGRAMS {
            let _ = registry.histogram(MetricKey::global(name));
        }
    }
}
