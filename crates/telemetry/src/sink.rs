//! Sharded span storage: thread-local packed buffers behind the
//! [`SpanSink`] façade.
//!
//! The previous sink was one `Mutex<Vec<Span>>`. Correct, but every
//! recorded span paid the lock plus a 144-byte memcpy, which ROADMAP
//! tracked as the ~+36 %/op ceiling at 100 % sampling. This module
//! removes both costs from the hot path:
//!
//! * **Thread-local shards.** Each recording thread encodes spans into
//!   its own buffer, found through a thread-local table keyed by sink
//!   id — no lock, no sharing. Full buffers are *sealed*: moved, as a
//!   unit, into the sink's central [`SinkRegistry`], so the registry
//!   mutex is taken once per 1024 spans instead of once per span.
//! * **Packed records.** Buffers store spans in a delta encoding
//!   ([`PackedSpans`]) at 44 bytes per narrow record instead of the
//!   104-byte [`Span`]: interned one-byte name and arg keys, `u32`
//!   deltas for ids and timestamps. Encoding eagerly, at record time,
//!   keeps the per-span memory traffic at 44 bytes — staging raw spans
//!   and packing at seal time measures strictly worse, since it writes
//!   104 bytes per span and re-reads them cache-cold. The encoding is
//!   lossless — [`PackedSpans::decode`] reconstructs the exact [`Span`]
//!   values — so the Chrome export and the FNV digest downstream are
//!   byte-identical to the unsharded sink's.
//!
//! Draining decodes every sealed segment in seal order. A
//! single-threaded producer (the simulator, the trace bench) therefore
//! sees spans come back in exact push order, which is what keeps
//! same-seed digests stable. Multi-threaded producers interleave at
//! segment granularity; their cross-thread order was never
//! deterministic and still is not.
//!
//! Buffers left unsealed when a thread exits are flushed by the
//! thread-local destructor; worker pools that want the flush at a
//! deterministic point (before results are observed, not at thread
//! teardown) call [`flush_thread_local`] as their scope ends.

use std::cell::RefCell;
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use crate::journal::FaultKind;
use crate::trace::{ArgKey, Span, SpanId, SpanName, TraceId};

/// Seal a thread-local buffer into the central registry once it holds
/// this many spans (~45 KiB of narrow records).
const SEAL_SPANS: usize = 1024;

/// Capacity-admission tokens a thread reserves from its sink at a time,
/// so the hot path decrements a thread-local counter instead of hitting
/// the shared occupancy atomic per span.
const QUOTA_BATCH: u64 = 1024;

/// Upper bound on recycled segment buffers kept in the global pool
/// (each holds [`SEAL_SPANS`] records, ~45 KiB).
const POOL_SEGMENTS: usize = 64;

/// Encodes `b` as a 32-bit signed delta against `a`, or `None` if the
/// difference does not fit (`wide` record territory). The hot path in
/// [`PackedSpans::push`] inlines the same rule branch-free; this
/// reference form exists for the tests that pin the two together.
#[cfg(test)]
#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss
)]
#[inline]
fn narrow(a: u64, b: u64) -> Option<u32> {
    let d = b.wrapping_sub(a) as i64;
    let t = d as i32;
    (i64::from(t) == d).then_some(t as u32)
}

/// The inverse of [`narrow`]: sign-extends the delta back onto `a`.
#[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss)]
#[inline]
fn widen(a: u64, d: u32) -> u64 {
    a.wrapping_add(i64::from(d as i32) as u64)
}

#[cfg(test)]
fn fits_u32(v: u64) -> Option<u32> {
    u32::try_from(v).ok()
}

fn fault_code(f: Option<FaultKind>) -> u8 {
    match f {
        None => 0,
        Some(FaultKind::Drop) => 1,
        Some(FaultKind::Delay) => 2,
        Some(FaultKind::Duplicate) => 3,
        Some(FaultKind::Reorder) => 4,
        Some(FaultKind::TornWrite) => 5,
        Some(FaultKind::PartialFsync) => 6,
        Some(FaultKind::CorruptRecord) => 7,
    }
}

fn fault_from_code(code: u8) -> Option<FaultKind> {
    match code {
        1 => Some(FaultKind::Drop),
        2 => Some(FaultKind::Delay),
        3 => Some(FaultKind::Duplicate),
        4 => Some(FaultKind::Reorder),
        5 => Some(FaultKind::TornWrite),
        6 => Some(FaultKind::PartialFsync),
        7 => Some(FaultKind::CorruptRecord),
        _ => None,
    }
}

/// Marker in [`PackedSpan::name`] for a record stored verbatim in the
/// wide side table (a field delta did not fit 32 bits).
const WIDE_NAME: u8 = 0xff;

/// One span in compact fixed-width form: interned one-byte name and arg
/// keys, `u32` deltas for ids and timestamps (against the previous span
/// in the batch; the parent against the span's own id), `u32` argument
/// values. 44 bytes instead of the 144-byte [`Span`].
#[derive(Debug, Clone, Copy, Default)]
struct PackedSpan {
    /// [`SpanName`] code, or [`WIDE_NAME`].
    name: u8,
    /// Bit 0 parent present, bit 1 MDS present, bits 2–4 fault code,
    /// bits 5–7 arg count.
    flags: u8,
    mds: u16,
    /// Trace-id delta — or, for a wide record, the side-table index.
    trace_d: u32,
    id_d: u32,
    parent_d: u32,
    start_d: u32,
    dur: u32,
    arg_keys: [u8; crate::trace::MAX_SPAN_ARGS],
    arg_vals: [u32; crate::trace::MAX_SPAN_ARGS],
}

/// A batch of spans in a compact, lossless form.
///
/// The common case packs into the fixed 44-byte [`PackedSpan`]; the
/// rare span whose deltas or argument values overflow 32 bits is kept
/// verbatim in a side table and referenced by index, so the encoding
/// loses nothing: [`PackedSpans::decode`] reproduces the exact pushed
/// [`Span`] values and digests/exports computed from a decoded batch
/// match the unpacked original byte for byte.
#[derive(Debug, Default)]
pub struct PackedSpans {
    records: Vec<PackedSpan>,
    /// Spans that did not fit the narrow record, verbatim.
    wide: Vec<Span>,
    prev_trace: u64,
    prev_id: u64,
    prev_start: u64,
}

/// Recycled, already-faulted segment buffers. Freshly mapped pages cost
/// a minor fault per 4 KiB on first touch, which lands in the recording
/// hot path; recycling drained segments moves that cost to the first
/// run, the way the old sink's pre-faulted buffer did at creation.
static SEGMENT_POOL: Mutex<Vec<Vec<PackedSpan>>> = Mutex::new(Vec::new());

fn pooled_records() -> Vec<PackedSpan> {
    let recycled = SEGMENT_POOL.lock().ok().and_then(|mut p| p.pop());
    recycled.unwrap_or_else(|| {
        let mut v = Vec::with_capacity(SEAL_SPANS);
        // Touch every page now, outside the per-span path.
        v.resize(SEAL_SPANS, PackedSpan::default());
        v.clear();
        v
    })
}

fn recycle_records(mut v: Vec<PackedSpan>) {
    v.clear();
    if v.capacity() >= SEAL_SPANS {
        if let Ok(mut pool) = SEGMENT_POOL.lock() {
            if pool.len() < POOL_SEGMENTS {
                pool.push(v);
            }
        }
    }
}

impl PackedSpans {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        PackedSpans::default()
    }

    /// A batch backed by a recycled (pre-faulted) segment buffer.
    fn pooled() -> Self {
        PackedSpans {
            records: pooled_records(),
            ..PackedSpans::default()
        }
    }

    /// Appends one span to the batch.
    ///
    /// The fit test is branch-free: every delta is computed with
    /// wrapping arithmetic, the would-be-truncated high bits of all
    /// seven fields are OR-folded into one word, and a single
    /// (overwhelmingly predictable) branch picks narrow vs wide.
    #[allow(clippy::cast_possible_truncation)]
    #[inline]
    pub fn push(&mut self, s: &Span) {
        // A wrapped delta `d` fits a sign-extended u32 iff
        // `d + 2^31 < 2^32`; biasing makes that a high-bits-zero test
        // that folds into the shared misfit accumulator below.
        const BIAS: u64 = 1 << 31;
        let (items, argc) = s.args.raw();
        let mut arg_keys = [0u8; crate::trace::MAX_SPAN_ARGS];
        let mut arg_vals = [0u32; crate::trace::MAX_SPAN_ARGS];
        let mut args_hi = 0u64;
        // Fixed trip count over the whole backing array (unused slots
        // are zero) — no data-dependent bound, no per-element early out.
        for i in 0..crate::trace::MAX_SPAN_ARGS {
            let (k, v) = items[i];
            arg_keys[i] = k as u8;
            arg_vals[i] = v as u32;
            args_hi |= v >> 32;
        }
        let trace_d = s.trace.0.wrapping_sub(self.prev_trace);
        let id_d = s.id.0.wrapping_sub(self.prev_id);
        let parent_d = s.parent.map_or(0, |p| p.0.wrapping_sub(s.id.0));
        let start_d = s.start_us.wrapping_sub(self.prev_start);
        let misfit = (trace_d.wrapping_add(BIAS)
            | id_d.wrapping_add(BIAS)
            | parent_d.wrapping_add(BIAS)
            | start_d.wrapping_add(BIAS))
            >> 32
            | s.dur_us >> 32
            | args_hi;
        self.prev_trace = s.trace.0;
        self.prev_id = s.id.0;
        self.prev_start = s.start_us;
        if misfit == 0 {
            self.records.push(PackedSpan {
                name: s.name as u8,
                flags: u8::from(s.parent.is_some())
                    | (u8::from(s.mds.is_some()) << 1)
                    | (fault_code(s.fault) << 2)
                    | (argc << 5),
                mds: s.mds.unwrap_or(0),
                trace_d: trace_d as u32,
                id_d: id_d as u32,
                parent_d: parent_d as u32,
                start_d: start_d as u32,
                dur: s.dur_us as u32,
                arg_keys,
                arg_vals,
            });
        } else {
            let idx = self.wide.len() as u32;
            self.wide.push(s.clone());
            self.records.push(PackedSpan {
                name: WIDE_NAME,
                trace_d: idx,
                ..PackedSpan::default()
            });
        }
    }

    /// Number of spans in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the batch holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Encoded size in bytes (narrow records plus the wide side table).
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.records.len() * std::mem::size_of::<PackedSpan>()
            + self.wide.len() * std::mem::size_of::<Span>()
    }

    /// Decodes the batch back into spans, in push order.
    #[must_use]
    pub fn decode(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.records.len());
        self.decode_into(&mut out);
        out
    }

    /// Decodes the batch, appending to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the batch was not produced by [`push`](Self::push)
    /// (the encoding is internal; corruption is a bug, not an input).
    pub fn decode_into(&self, out: &mut Vec<Span>) {
        let (mut prev_trace, mut prev_id, mut prev_start) = (0u64, 0u64, 0u64);
        for rec in &self.records {
            let span = if rec.name == WIDE_NAME {
                self.wide[rec.trace_d as usize].clone()
            } else {
                let id = widen(prev_id, rec.id_d);
                let mut span = Span {
                    trace: TraceId(widen(prev_trace, rec.trace_d)),
                    id: SpanId(id),
                    parent: (rec.flags & 1 != 0).then(|| SpanId(widen(id, rec.parent_d))),
                    name: SpanName::from_code(rec.name).expect("corrupt span name code"),
                    mds: (rec.flags & 2 != 0).then_some(rec.mds),
                    start_us: widen(prev_start, rec.start_d),
                    dur_us: u64::from(rec.dur),
                    fault: fault_from_code((rec.flags >> 2) & 0x7),
                    args: crate::trace::SpanArgs::new(),
                };
                for i in 0..usize::from(rec.flags >> 5) {
                    let key = ArgKey::from_code(rec.arg_keys[i]).expect("corrupt arg key code");
                    span.args.push(key, u64::from(rec.arg_vals[i]));
                }
                span
            };
            prev_trace = span.trace.0;
            prev_id = span.id.0;
            prev_start = span.start_us;
            out.push(span);
        }
    }
}

static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(1);

/// The central, shared half of a sink: sealed packed segments plus the
/// accounting counters every thread agrees on.
///
/// Recording threads never touch the segment mutex per span — they
/// encode into thread-local buffers and push whole buffers here when
/// full (or when flushed). The only per-span shared state is the
/// `buffered` occupancy counter enforcing the sink's capacity bound.
#[derive(Debug)]
pub struct SinkRegistry {
    id: u64,
    capacity: usize,
    segments: Mutex<Vec<PackedSpans>>,
    /// Admission slots currently reserved (sealed spans, thread-local
    /// spans, plus each thread's unused quota). Threads reserve
    /// [`QUOTA_BATCH`] slots at a time and return leftovers on flush,
    /// so the capacity bound never over-admits, and the count is exact
    /// whenever buffers are flushed (always true after a local drain).
    buffered: AtomicU64,
    drained: AtomicU64,
    dropped: AtomicU64,
}

impl SinkRegistry {
    fn seal(&self, seg: PackedSpans) {
        if !seg.is_empty() {
            self.segments
                .lock()
                .expect("sink registry poisoned")
                .push(seg);
        }
    }

    /// Reserves up to `want` admission slots; returns the number granted
    /// (zero once `capacity` is reached).
    fn try_reserve(&self, want: u64) -> u64 {
        let mut cur = self.buffered.load(Ordering::Relaxed);
        loop {
            let granted = want.min((self.capacity as u64).saturating_sub(cur));
            if granted == 0 {
                return 0;
            }
            match self.buffered.compare_exchange_weak(
                cur,
                cur + granted,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return granted,
                Err(now) => cur = now,
            }
        }
    }

    fn release(&self, n: u64) {
        if n > 0 {
            self.buffered.fetch_sub(n, Ordering::Relaxed);
        }
    }
}

struct LocalEntry {
    sink_id: u64,
    registry: Weak<SinkRegistry>,
    buf: PackedSpans,
    /// Admission slots reserved from the sink but not yet used by a
    /// recorded span; returned on flush.
    quota: u64,
}

impl LocalEntry {
    /// Seals the buffered spans (if any) and returns unused quota, so
    /// the sink's occupancy count reflects exactly what is drainable.
    fn flush_into(&mut self, registry: &SinkRegistry) {
        registry.release(self.quota);
        self.quota = 0;
        if !self.buf.is_empty() {
            registry.seal(mem::take(&mut self.buf));
        }
    }
}

/// Per-thread buffer table. Deliberately `Drop`-free: a destructor on
/// the table itself would put a teardown-state check on every hot-path
/// TLS access. Exit flushing is [`FlushOnExit`]'s job instead.
#[derive(Default)]
struct LocalBufs {
    entries: Vec<LocalEntry>,
}

impl LocalBufs {
    fn entry(&mut self, registry: &Arc<SinkRegistry>) -> &mut LocalEntry {
        let id = registry.id;
        if let Some(pos) = self.entries.iter().position(|e| e.sink_id == id) {
            // Keep the active sink's entry at the table head so the
            // next push takes the first-slot fast path.
            self.entries.swap(0, pos);
            return &mut self.entries[0];
        }
        // New sink on this thread: drop table entries whose sink died so
        // tests churning tracers do not grow the table without bound.
        self.entries.retain(|e| e.registry.strong_count() > 0);
        self.entries.insert(
            0,
            LocalEntry {
                sink_id: id,
                registry: Arc::downgrade(registry),
                buf: PackedSpans::new(),
                quota: 0,
            },
        );
        &mut self.entries[0]
    }
}

/// Zero-sized thread-local whose destructor seals the thread's span
/// buffers at exit. The destructor lives here, on a separate key,
/// precisely so [`LOCALS`] itself stays destructor-free: a `Drop` type
/// behind a `const`-init `thread_local!` still pays a
/// destructor-registration check on every access, and `LOCALS` is
/// accessed once per span. This key is only touched from the cold
/// refill path, where the check is free.
struct FlushOnExit;

impl Drop for FlushOnExit {
    fn drop(&mut self) {
        flush_thread_local();
    }
}

thread_local! {
    // `const` init and no `Drop` impl: access compiles to a plain
    // TLS-offset load with neither a lazy-initialisation check nor a
    // destructor-registration check, which matters at one access per
    // span. Exit flushing is FLUSH_GUARD's job.
    static LOCALS: RefCell<LocalBufs> = const {
        RefCell::new(LocalBufs {
            entries: Vec::new(),
        })
    };
    static FLUSH_GUARD: FlushOnExit = const { FlushOnExit };
}

/// What the cold refill path handed back to [`SpanSink::push`].
enum Refill<'a> {
    /// A table entry with admission quota in hand: buffer the span.
    Entry(&'a mut LocalEntry),
    /// The sink is at capacity: shed the span.
    Shed,
    /// Thread-local destructors are already running, so a buffered span
    /// might never be sealed: bypass the buffer entirely.
    Teardown,
}

/// Seals every span buffer the current thread holds into its owning
/// sink, making those spans visible to a subsequent drain from any
/// thread.
///
/// Thread exit does this implicitly; call it explicitly where the flush
/// must happen at a deterministic point — worker pools call it as each
/// worker's scope ends, so parallel sweeps never lose tail spans to
/// thread-teardown timing.
pub fn flush_thread_local() {
    let _ = LOCALS.try_with(|cell| {
        let mut locals = cell.borrow_mut();
        locals.entries.retain_mut(|e| match e.registry.upgrade() {
            Some(reg) => {
                e.flush_into(&reg);
                true
            }
            None => false,
        });
    });
}

/// Bounded span store, sharded per recording thread.
///
/// The public surface matches the old single-mutex sink — `push`,
/// `drain`, occupancy and shed accounting — but `push` now costs one
/// relaxed atomic plus a thread-local varint encode, and `drain`
/// decodes sealed per-thread segments. Once `capacity` spans are held,
/// further pushes are counted in `dropped` and discarded.
#[derive(Debug)]
pub struct SpanSink {
    registry: Arc<SinkRegistry>,
}

impl SpanSink {
    /// A sink holding at most `capacity` spans.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SpanSink {
            registry: Arc::new(SinkRegistry {
                id: NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed),
                capacity,
                segments: Mutex::new(Vec::new()),
                buffered: AtomicU64::new(0),
                drained: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Stores a span, or sheds it (counted) if the sink is full.
    #[inline]
    pub fn push(&self, span: Span) {
        let reg = &self.registry;
        let ok = LOCALS.try_with(|cell| {
            let locals = &mut *cell.borrow_mut();
            // Fast path: this sink's entry sits at the table head with
            // admission quota in hand — one id compare, no scan.
            let entry = match locals.entries.first_mut() {
                Some(e) if e.sink_id == reg.id && e.quota > 0 => e,
                _ => match Self::refill(locals, reg) {
                    Refill::Entry(e) => e,
                    Refill::Shed => {
                        reg.dropped.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Refill::Teardown => {
                        Self::seal_single(reg, &span);
                        return;
                    }
                },
            };
            entry.quota -= 1;
            entry.buf.push(&span);
        });
        if ok.is_err() {
            // LOCALS itself was unreachable (should not happen for a
            // destructor-free key, but stay lossless if it ever does).
            Self::seal_single(reg, &span);
        }
    }

    /// Out-of-line remainder of [`SpanSink::push`]: locates (or creates)
    /// this sink's table entry, seals the finished segment, and reserves
    /// a fresh admission batch. Because [`QUOTA_BATCH`] equals
    /// [`SEAL_SPANS`] and a flush empties buffer and quota together,
    /// quota exhaustion *is* the segment boundary — the fast path needs
    /// no per-span seal check. Runs once per batch.
    #[cold]
    fn refill<'a>(locals: &'a mut LocalBufs, reg: &Arc<SinkRegistry>) -> Refill<'a> {
        // Registering a buffer is only safe while the exit guard can
        // still flush it. If thread-local destructors are already
        // running (a span recorded from another destructor), the guard
        // is gone or about to be, and buffered spans could be lost.
        if FLUSH_GUARD.try_with(|_| ()).is_err() {
            return Refill::Teardown;
        }
        let entry = locals.entry(reg);
        if entry.quota == 0 {
            if entry.buf.is_empty() {
                if entry.buf.records.capacity() == 0 {
                    entry.buf = PackedSpans::pooled();
                }
            } else {
                reg.seal(mem::replace(&mut entry.buf, PackedSpans::pooled()));
            }
            entry.quota = reg.try_reserve(QUOTA_BATCH);
            if entry.quota == 0 {
                return Refill::Shed;
            }
        }
        Refill::Entry(entry)
    }

    /// Seals `span` as its own one-record segment, bypassing the
    /// thread-local buffer — the lossless fallback for spans recorded
    /// while thread-local state is being torn down.
    #[cold]
    fn seal_single(reg: &SinkRegistry, span: &Span) {
        if reg.try_reserve(1) == 0 {
            reg.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut seg = PackedSpans::new();
        seg.push(span);
        reg.seal(seg);
    }

    /// Seals the calling thread's buffer for this sink and returns its
    /// unused admission quota, without draining. Other threads' buffers
    /// are untouched.
    pub fn flush_local(&self) {
        let _ = LOCALS.try_with(|cell| {
            let mut locals = cell.borrow_mut();
            if let Some(e) = locals
                .entries
                .iter_mut()
                .find(|e| e.sink_id == self.registry.id)
            {
                e.flush_into(&self.registry);
            }
        });
    }

    /// Removes and returns all sealed spans, in seal order (exact push
    /// order for a single-threaded producer).
    ///
    /// The calling thread's own buffer is sealed first, so the common
    /// record-then-drain-on-one-thread flow loses nothing. Buffers still
    /// held by *other live* threads are not visible until those threads
    /// seal (scope-exit flush, thread exit, or a full buffer).
    #[must_use]
    pub fn drain(&self) -> Vec<Span> {
        self.flush_local();
        let segments: Vec<PackedSpans> = {
            let mut guard = self
                .registry
                .segments
                .lock()
                .expect("sink registry poisoned");
            mem::take(&mut *guard)
        };
        let mut out = Vec::with_capacity(segments.iter().map(PackedSpans::len).sum());
        for seg in &segments {
            seg.decode_into(&mut out);
        }
        for seg in segments {
            recycle_records(seg.records);
        }
        self.registry
            .drained
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        self.registry.release(out.len() as u64);
        out
    }

    /// Returns up to the last `k` sealed spans in seal order *without*
    /// removing them — the sink's occupancy, drained count, and segment
    /// list are untouched, so a subsequent [`drain`](Self::drain) still
    /// sees everything.
    ///
    /// This backs live inspection (the admin plane's `/trace?n=K`
    /// endpoint) where a scrape must not steal spans from the export
    /// that runs at shutdown. The calling thread's own buffer is sealed
    /// first so a single-threaded producer sees its freshest spans;
    /// buffers held by other live threads stay invisible until those
    /// threads seal, exactly as for `drain`.
    #[must_use]
    pub fn peek_recent(&self, k: usize) -> Vec<Span> {
        if k == 0 {
            return Vec::new();
        }
        self.flush_local();
        let guard = self
            .registry
            .segments
            .lock()
            .expect("sink registry poisoned");
        // Decode only the suffix of segments needed to cover `k` spans.
        let mut take = 0usize;
        let mut covered = 0usize;
        for seg in guard.iter().rev() {
            take += 1;
            covered += seg.len();
            if covered >= k {
                break;
            }
        }
        let mut out = Vec::with_capacity(covered);
        for seg in &guard[guard.len() - take..] {
            seg.decode_into(&mut out);
        }
        drop(guard);
        if out.len() > k {
            out.drain(..out.len() - k);
        }
        out
    }

    /// Number of spans currently held (sealed plus every thread's
    /// unsealed buffer).
    ///
    /// Seals the calling thread's own buffer first, so the count is
    /// exact for single-threaded recording. While *other* threads are
    /// actively recording, it includes their reserved-but-unused
    /// admission quota and can over-report by up to a batch per thread
    /// until they flush.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn len(&self) -> usize {
        self.flush_local();
        self.registry.buffered.load(Ordering::Relaxed) as usize
    }

    /// Whether the sink holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans accepted over the sink's lifetime (already-drained plus
    /// currently held). Exactness caveats as for [`len`](Self::len).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.flush_local();
        self.registry.drained.load(Ordering::Relaxed)
            + self.registry.buffered.load(Ordering::Relaxed)
    }

    /// Spans shed because the sink was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.registry.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{span_names, SpanCtx};

    fn ctx(trace: u64, span: u64) -> SpanCtx {
        SpanCtx {
            trace: TraceId(trace),
            span: SpanId(span),
        }
    }

    #[test]
    fn narrow_widen_round_trips_and_rejects_big_deltas() {
        for (a, b) in [
            (0u64, 0u64),
            (5, 3),
            (3, 5),
            (1 << 40, (1 << 40) + 7),
            (u64::MAX, u64::MAX - 1),
            (0, u64::MAX), // delta is -1 in wrapping terms: narrow
        ] {
            let d = narrow(a, b).expect("fits");
            assert_eq!(widen(a, d), b, "a={a} b={b}");
        }
        assert!(narrow(0, 1 << 32).is_none());
        assert!(narrow(1 << 40, 0).is_none());
        assert_eq!(fits_u32(u64::from(u32::MAX)), Some(u32::MAX));
        assert_eq!(fits_u32(u64::from(u32::MAX) + 1), None);
    }

    #[test]
    fn overflowing_spans_take_the_wide_path_losslessly() {
        let mut packed = PackedSpans::new();
        let spans = vec![
            Span::root(ctx(1, 1), span_names::OP, 0, 1),
            // Trace-id jump beyond i32 range and a u64 arg value: wide.
            Span::root(ctx(1 << 40, 2), span_names::SERVE, 5, 2).with_arg(ArgKey::Bytes, u64::MAX),
            // Back near the wide span's values: narrow again, proving
            // the delta base tracks through wide records.
            Span::root(ctx((1 << 40) + 1, 3), span_names::NET, 6, 3),
        ];
        for s in &spans {
            packed.push(s);
        }
        assert_eq!(packed.decode(), spans);
    }

    #[test]
    fn packed_round_trip_preserves_every_field() {
        let mut packed = PackedSpans::new();
        let spans = vec![
            Span::root(ctx(1, 1), span_names::OP, 10, 100)
                .with_arg(ArgKey::Target, 42)
                .with_arg(ArgKey::Hops, 2),
            Span::child(ctx(1, 1), SpanId(2), span_names::SERVE, 20, 30)
                .on_mds(3)
                .with_fault(FaultKind::Delay),
            Span::child(
                ctx(1, 1),
                SpanId(3),
                span_names::WAL_FSYNC,
                u64::MAX - 5,
                u64::MAX,
            )
            .on_mds(u16::MAX)
            .with_arg(ArgKey::Bytes, u64::MAX),
        ];
        for s in &spans {
            packed.push(s);
        }
        assert_eq!(packed.len(), 3);
        assert!(packed.byte_len() < 3 * 144, "packing should shrink spans");
        assert_eq!(packed.decode(), spans);
    }

    #[test]
    fn every_fault_code_round_trips() {
        for f in [
            None,
            Some(FaultKind::Drop),
            Some(FaultKind::Delay),
            Some(FaultKind::Duplicate),
            Some(FaultKind::Reorder),
            Some(FaultKind::TornWrite),
            Some(FaultKind::PartialFsync),
            Some(FaultKind::CorruptRecord),
        ] {
            assert_eq!(fault_from_code(fault_code(f)), f);
        }
    }

    #[test]
    fn sink_seals_across_threads_and_drains_everything_after_flush() {
        let tracer =
            std::sync::Arc::new(crate::trace::Tracer::new(crate::trace::Sampler::always(0)));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tr = std::sync::Arc::clone(&tracer);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let c = tr.begin().expect("sampled");
                    tr.record(Span::root(c, span_names::OP, t * 1000 + i, 1));
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        // Thread exit sealed each worker's buffer; everything is visible.
        let spans = tracer.drain();
        assert_eq!(spans.len(), 400);
        assert_eq!(tracer.sink().recorded(), 400);
        assert_eq!(tracer.sink().dropped(), 0);
    }

    #[test]
    fn peek_recent_returns_the_tail_without_consuming() {
        let sink = SpanSink::new(16 * 1024);
        let total = 3 * SEAL_SPANS + 10; // several sealed segments + a partial
        for i in 0..total as u64 {
            sink.push(Span::root(ctx(1, i + 1), span_names::OP, i, 1));
        }
        let tail = sink.peek_recent(5);
        assert_eq!(tail.len(), 5);
        assert_eq!(tail.last().expect("non-empty").start_us, total as u64 - 1);
        assert_eq!(tail[0].start_us, total as u64 - 5);
        // Peeking more than is held returns everything, once each.
        assert_eq!(sink.peek_recent(usize::MAX).len(), total);
        assert!(sink.peek_recent(0).is_empty());
        // Nothing was consumed: a full drain still sees every span.
        assert_eq!(sink.drain().len(), total);
        assert_eq!(sink.recorded(), total as u64);
    }

    #[test]
    fn flush_thread_local_makes_spans_drainable_mid_thread() {
        let sink = SpanSink::new(1024);
        sink.push(Span::root(ctx(9, 9), span_names::NET, 0, 1));
        assert_eq!(sink.len(), 1);
        flush_thread_local();
        // The buffer is sealed into the registry now, not just counted.
        assert_eq!(sink.drain().len(), 1);
        assert!(sink.is_empty());
    }
}
