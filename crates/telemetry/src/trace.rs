//! Per-operation causal tracing: spans, deterministic sampling, a
//! bounded sink, Chrome trace-event export, and a stable digest.
//!
//! The paper's metrics (Def. 1 jump count, Def. 3 system locality) are
//! *per-operation* quantities; aggregate counters cannot show whether a
//! specific request took the hops the analysis predicts. This module
//! records one root span per traced operation plus child spans for each
//! hop (server visit, network leg, lock hold, replica apply, WAL I/O),
//! linked by `(TraceId, SpanId, parent)` so an analyzer can reconstruct
//! the exact path an operation took and cross-check it against
//! `metrics::measures::path_jumps`.
//!
//! Design constraints, in priority order:
//!
//! 1. **Off means off.** An untraced call site costs one branch on an
//!    `Option<&Tracer>`; an unsampled operation costs one atomic
//!    fetch-add and one multiply. No allocation happens until a span is
//!    actually recorded.
//! 2. **Deterministic.** Trace/span ids come from plain counters and
//!    the [`Sampler`] hashes a seed with the trace id, so the same
//!    seeded replay produces byte-identical spans (the simulator stamps
//!    spans with virtual time; see `cluster::sim`). CI asserts the
//!    [`digest`] of two same-seed runs is identical.
//! 3. **Bounded.** The [`SpanSink`] holds at most `capacity` spans and
//!    counts what it sheds, so a pathological workload cannot OOM the
//!    host through its own observability layer.
//! 4. **Cheap at 100 % sampling.** Recording goes through per-thread
//!    packed buffers (see [`crate::sink`]) — no lock and ~12 bytes
//!    moved per span instead of a mutexed 144-byte copy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::journal::FaultKind;

/// Interned span name: the closed set of names any instrumented
/// component gives a span.
///
/// One byte instead of a 16-byte `&'static str` is what lets the packed
/// sink encoding (see [`crate::sink::PackedSpans`]) store a span's name
/// in a single code byte. Exports and digests spell the name back out
/// via [`SpanName::as_str`], so serialized output is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SpanName {
    /// Root span: one whole client operation, issue to completion.
    Op,
    /// One MDS serving (or forwarding) the request: queue + service.
    Serve,
    /// One network leg between two parties.
    Net,
    /// Client-side wait for a resend after a dropped message.
    ResendWait,
    /// Duplicate delivery burning wasted service time on a server.
    Waste,
    /// Global-layer lock held for a replicated update.
    Lock,
    /// A replica applying a propagated global-layer update.
    Apply,
    /// One client attempt in the live retry loop.
    Attempt,
    /// Monitor processing one heartbeat.
    Heartbeat,
    /// Monitor declaring MDS failures.
    Detect,
    /// Monitor planning a rebalance (dynamic adjustment, Sec. IV).
    Rebalance,
    /// Monitor planning a failover after an MDS death.
    Failover,
    /// Store buffering one WAL record.
    WalAppend,
    /// Store group-commit fsync.
    WalFsync,
    /// A control-plane replica campaigning for leadership.
    Election,
    /// A leader replicating one committed batch to its followers.
    Replicate,
}

impl SpanName {
    /// The string this name prints as in exports and digests.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            SpanName::Op => "op",
            SpanName::Serve => "serve",
            SpanName::Net => "net",
            SpanName::ResendWait => "resend_wait",
            SpanName::Waste => "waste",
            SpanName::Lock => "gl_lock",
            SpanName::Apply => "gl_apply",
            SpanName::Attempt => "attempt",
            SpanName::Heartbeat => "heartbeat",
            SpanName::Detect => "detect_failures",
            SpanName::Rebalance => "rebalance",
            SpanName::Failover => "failover",
            SpanName::WalAppend => "wal_append",
            SpanName::WalFsync => "wal_fsync",
            SpanName::Election => "election",
            SpanName::Replicate => "replicate",
        }
    }

    /// The inverse of `self as u8`, for decoding packed spans.
    #[must_use]
    pub const fn from_code(code: u8) -> Option<SpanName> {
        Some(match code {
            0 => SpanName::Op,
            1 => SpanName::Serve,
            2 => SpanName::Net,
            3 => SpanName::ResendWait,
            4 => SpanName::Waste,
            5 => SpanName::Lock,
            6 => SpanName::Apply,
            7 => SpanName::Attempt,
            8 => SpanName::Heartbeat,
            9 => SpanName::Detect,
            10 => SpanName::Rebalance,
            11 => SpanName::Failover,
            12 => SpanName::WalAppend,
            13 => SpanName::WalFsync,
            14 => SpanName::Election,
            15 => SpanName::Replicate,
            _ => return None,
        })
    }
}

/// Canonical span names, so emitters, the analyzer and docs agree on
/// spelling. Kept as constants (now of type [`SpanName`]) so call sites
/// read the same as when names were strings.
pub mod span_names {
    use super::SpanName;

    /// Root span: one whole client operation, issue to completion.
    pub const OP: SpanName = SpanName::Op;
    /// One MDS serving (or forwarding) the request: queue + service.
    pub const SERVE: SpanName = SpanName::Serve;
    /// One network leg between two parties.
    pub const NET: SpanName = SpanName::Net;
    /// Client-side wait for a resend after a dropped message.
    pub const RESEND_WAIT: SpanName = SpanName::ResendWait;
    /// Duplicate delivery burning wasted service time on a server.
    pub const WASTE: SpanName = SpanName::Waste;
    /// Global-layer lock held for a replicated update.
    pub const LOCK: SpanName = SpanName::Lock;
    /// A replica applying a propagated global-layer update.
    pub const APPLY: SpanName = SpanName::Apply;
    /// One client attempt in the live retry loop.
    pub const ATTEMPT: SpanName = SpanName::Attempt;
    /// Monitor processing one heartbeat.
    pub const HEARTBEAT: SpanName = SpanName::Heartbeat;
    /// Monitor declaring MDS failures.
    pub const DETECT: SpanName = SpanName::Detect;
    /// Monitor planning a rebalance (dynamic adjustment, Sec. IV).
    pub const REBALANCE: SpanName = SpanName::Rebalance;
    /// Monitor planning a failover after an MDS death.
    pub const FAILOVER: SpanName = SpanName::Failover;
    /// Store buffering one WAL record.
    pub const WAL_APPEND: SpanName = SpanName::WalAppend;
    /// Store group-commit fsync.
    pub const WAL_FSYNC: SpanName = SpanName::WalFsync;
    /// A control-plane replica campaigning for leadership.
    pub const ELECTION: SpanName = SpanName::Election;
    /// A leader replicating one committed batch to its followers.
    pub const REPLICATE: SpanName = SpanName::Replicate;
}

/// Identifies one traced operation end to end across every hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// The context a hop needs to attach child spans: which trace it is in
/// and which span is the parent. Sixteen bytes, `Copy`, and encodable
/// on the wire (see `cluster::message`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanCtx {
    /// The trace this context belongs to.
    pub trace: TraceId,
    /// The span that children created from this context hang off.
    pub span: SpanId,
}

/// Maximum numeric annotations per span. The widest emitter (the
/// simulator's root `op` span) attaches four: target, kind, hops,
/// locked.
pub const MAX_SPAN_ARGS: usize = 4;

/// Interned span-annotation key: the full closed set of labels any
/// instrumented component attaches to a span.
///
/// One byte instead of a 16-byte `&'static str` keeps each stored
/// `(key, value)` pair at 16 bytes and shrinks [`Span`] itself, which
/// matters because recording cost at 100 % sampling is dominated by
/// moving spans into the sink. Exports spell the label back out via
/// [`ArgKey::name`], so JSON output and the trace digest are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(u8)]
pub enum ArgKey {
    /// Target node of an operation.
    #[default]
    Target,
    /// Operation kind code (see `op_kind_code`).
    Kind,
    /// Extra hops taken after the first routing step.
    Hops,
    /// Whether the op hit a write-locked subtree (0/1).
    Locked,
    /// Bytes written or synced by the store.
    Bytes,
    /// Node id a hop or cache event refers to.
    Node,
    /// Retry spins before a request went through.
    Spins,
    /// MDS id a recovery event refers to.
    Mds,
    /// Subtrees claimed during failover.
    Claimed,
    /// Failures observed in one monitor sweep.
    Failures,
    /// Subtrees rehomed off a dead MDS.
    Rehomed,
    /// Subtree root involved in a migration.
    Subtree,
    /// Migration source MDS.
    From,
    /// Migration destination MDS.
    To,
    /// Whether the hop ended in an error (0/1).
    Error,
    /// Route taken by a request (code).
    Route,
    /// Outcome code of a request.
    Outcome,
    /// Response body kind (served/redirect/not-found code).
    Body,
    /// Consensus term an election or replication batch ran in.
    Term,
    /// Fencing token carried by a lease grant or rejected write.
    Fence,
}

impl ArgKey {
    /// The label this key prints as in exports and digests.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            ArgKey::Target => "target",
            ArgKey::Kind => "kind",
            ArgKey::Hops => "hops",
            ArgKey::Locked => "locked",
            ArgKey::Bytes => "bytes",
            ArgKey::Node => "node",
            ArgKey::Spins => "spins",
            ArgKey::Mds => "mds",
            ArgKey::Claimed => "claimed",
            ArgKey::Failures => "failures",
            ArgKey::Rehomed => "rehomed",
            ArgKey::Subtree => "subtree",
            ArgKey::From => "from",
            ArgKey::To => "to",
            ArgKey::Error => "error",
            ArgKey::Route => "route",
            ArgKey::Outcome => "outcome",
            ArgKey::Body => "body",
            ArgKey::Term => "term",
            ArgKey::Fence => "fence",
        }
    }

    /// The inverse of `self as u8`, for decoding packed spans.
    #[must_use]
    pub const fn from_code(code: u8) -> Option<ArgKey> {
        Some(match code {
            0 => ArgKey::Target,
            1 => ArgKey::Kind,
            2 => ArgKey::Hops,
            3 => ArgKey::Locked,
            4 => ArgKey::Bytes,
            5 => ArgKey::Node,
            6 => ArgKey::Spins,
            7 => ArgKey::Mds,
            8 => ArgKey::Claimed,
            9 => ArgKey::Failures,
            10 => ArgKey::Rehomed,
            11 => ArgKey::Subtree,
            12 => ArgKey::From,
            13 => ArgKey::To,
            14 => ArgKey::Error,
            15 => ArgKey::Route,
            16 => ArgKey::Outcome,
            17 => ArgKey::Body,
            18 => ArgKey::Term,
            19 => ArgKey::Fence,
            _ => return None,
        })
    }
}

/// Inline, fixed-capacity annotation list: up to [`MAX_SPAN_ARGS`]
/// `(ArgKey, u64)` pairs stored inside the span itself.
///
/// The previous `Vec`-backed representation heap-allocated per annotated
/// span, which at 100 % sampling dominated tracing overhead (+57 % per
/// op); this one makes span construction allocation-free. Pushing beyond
/// capacity drops the extra pair (debug builds assert instead) — the
/// digest and exports only ever see what was stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanArgs {
    len: u8,
    items: [(ArgKey, u64); MAX_SPAN_ARGS],
}

impl SpanArgs {
    /// No annotations.
    #[must_use]
    pub fn new() -> Self {
        SpanArgs {
            len: 0,
            items: [(ArgKey::Target, 0); MAX_SPAN_ARGS],
        }
    }

    /// Appends an annotation; silently saturating at capacity (asserts
    /// in debug builds, where a new call site exceeding the limit should
    /// fail loudly).
    pub fn push(&mut self, key: ArgKey, value: u64) {
        debug_assert!(
            (self.len as usize) < MAX_SPAN_ARGS,
            "span carries more than {MAX_SPAN_ARGS} args"
        );
        if (self.len as usize) < MAX_SPAN_ARGS {
            self.items[self.len as usize] = (key, value);
            self.len += 1;
        }
    }

    /// Number of stored annotations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no annotation is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The annotations as a slice, in push order.
    #[must_use]
    pub fn as_slice(&self) -> &[(ArgKey, u64)] {
        &self.items[..self.len as usize]
    }

    /// Iterates over the stored `(key, value)` pairs.
    pub fn iter(&self) -> std::slice::Iter<'_, (ArgKey, u64)> {
        self.as_slice().iter()
    }

    /// The full backing array plus the live count, for encoders that
    /// want a fixed-trip-count loop (unused slots are `(Target, 0)`).
    #[inline]
    pub(crate) fn raw(&self) -> (&[(ArgKey, u64); MAX_SPAN_ARGS], u8) {
        (&self.items, self.len)
    }
}

impl<'a> IntoIterator for &'a SpanArgs {
    type Item = &'a (ArgKey, u64);
    type IntoIter = std::slice::Iter<'a, (ArgKey, u64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// One completed span: a named, timed interval attributed to a trace,
/// optionally to an MDS, and optionally tagged with the fault that hit
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// This span's id, unique within the tracer's lifetime.
    pub id: SpanId,
    /// Parent span, `None` for a root.
    pub parent: Option<SpanId>,
    /// Name from [`span_names`].
    pub name: SpanName,
    /// MDS the work ran on, `None` for client/monitor-side spans.
    pub mds: Option<u16>,
    /// Start timestamp in microseconds. The simulator stamps virtual
    /// time; live components stamp wall time from [`Tracer::now_us`].
    pub start_us: u64,
    /// Duration in microseconds (0 for instant events).
    pub dur_us: u64,
    /// Fault that was injected into this hop, if any.
    pub fault: Option<FaultKind>,
    /// Small numeric annotations (`("target", 42)`, `("hops", 2)`, …),
    /// stored inline — recording an annotated span never allocates.
    pub args: SpanArgs,
}

impl Span {
    /// A span inside an existing trace, parented on `ctx.span`.
    #[must_use]
    pub fn child(ctx: SpanCtx, id: SpanId, name: SpanName, start_us: u64, dur_us: u64) -> Self {
        Span {
            trace: ctx.trace,
            id,
            parent: Some(ctx.span),
            name,
            mds: None,
            start_us,
            dur_us,
            fault: None,
            args: SpanArgs::new(),
        }
    }

    /// The root span of a trace (no parent).
    #[must_use]
    pub fn root(ctx: SpanCtx, name: SpanName, start_us: u64, dur_us: u64) -> Self {
        Span {
            trace: ctx.trace,
            id: ctx.span,
            parent: None,
            name,
            mds: None,
            start_us,
            dur_us,
            fault: None,
            args: SpanArgs::new(),
        }
    }

    /// Attributes the span to an MDS.
    #[must_use]
    pub fn on_mds(mut self, mds: u16) -> Self {
        self.mds = Some(mds);
        self
    }

    /// Tags the span with an injected fault.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultKind) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Adds a numeric annotation (at most [`MAX_SPAN_ARGS`] per span).
    #[must_use]
    pub fn with_arg(mut self, key: ArgKey, value: u64) -> Self {
        self.args.push(key, value);
        self
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Seeded deterministic head sampler.
///
/// The decision is a pure function of `(seed, trace_id)`: the trace id
/// is hashed with the seed and compared against a fixed threshold, so
/// re-running the same seeded workload samples exactly the same
/// operations — no RNG state threads through call sites.
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    seed: u64,
    /// Sample iff `hash < threshold`; `u64::MAX` means "always" so a
    /// rate of 1.0 cannot lose traces to rounding.
    threshold: u64,
}

impl Sampler {
    /// A sampler keeping roughly `rate` (clamped to `[0, 1]`) of traces.
    #[must_use]
    pub fn new(seed: u64, rate: f64) -> Self {
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else if rate <= 0.0 {
            0
        } else {
            // Cast is exact enough for sampling purposes; rate < 1.0
            // keeps the product below 2^64.
            (rate * u64::MAX as f64) as u64
        };
        Sampler { seed, threshold }
    }

    /// Sampler that records every trace.
    #[must_use]
    pub fn always(seed: u64) -> Self {
        Sampler::new(seed, 1.0)
    }

    /// Sampler that records nothing (ids are still allocated, so
    /// enabling sampling later does not shift the id sequence).
    #[must_use]
    pub fn never(seed: u64) -> Self {
        Sampler::new(seed, 0.0)
    }

    /// Whether this trace should be recorded.
    #[must_use]
    pub fn sample(&self, trace: TraceId) -> bool {
        if self.threshold == u64::MAX {
            return true;
        }
        if self.threshold == 0 {
            return false;
        }
        splitmix64(self.seed ^ trace.0) < self.threshold
    }

    /// The configured sampling rate, reconstructed from the threshold.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.threshold == u64::MAX {
            1.0
        } else {
            self.threshold as f64 / u64::MAX as f64
        }
    }
}

pub use crate::sink::{flush_thread_local, PackedSpans, SinkRegistry, SpanSink};

/// Default bound on buffered spans (enough for ~100k-op replays at
/// 100% sampling with several spans per op).
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 20;

/// The tracing façade instrumented code holds (as `Option<Arc<Tracer>>`).
///
/// Owns the id counters, the [`Sampler`] and the [`SpanSink`]. Call
/// sites decide timestamps: the simulator passes virtual microseconds,
/// live components use [`Tracer::now_us`]. Id allocation is atomic, so
/// the live threaded cluster can share one tracer; the deterministic
/// digest guarantee only applies to single-threaded (simulator) use.
#[derive(Debug)]
pub struct Tracer {
    sampler: Sampler,
    sink: SpanSink,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    epoch: Instant,
}

impl Tracer {
    /// A tracer with the default sink capacity.
    #[must_use]
    pub fn new(sampler: Sampler) -> Self {
        Tracer::with_capacity(sampler, DEFAULT_SPAN_CAPACITY)
    }

    /// A tracer bounding the sink to `capacity` spans.
    #[must_use]
    pub fn with_capacity(sampler: Sampler, capacity: usize) -> Self {
        Tracer {
            sampler,
            sink: SpanSink::new(capacity),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            epoch: Instant::now(),
        }
    }

    /// Starts a new trace: allocates the trace id (always, so sampling
    /// rate does not shift the id sequence) and, if sampled, a root
    /// span id. `None` means "not sampled — skip all span work".
    pub fn begin(&self) -> Option<SpanCtx> {
        let trace = TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed));
        if !self.sampler.sample(trace) {
            return None;
        }
        Some(SpanCtx {
            trace,
            span: self.next_span(trace),
        })
    }

    /// Allocates a fresh span id within `ctx`'s trace.
    pub fn next_span(&self, _trace: TraceId) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// Derives a child context: same trace, fresh span id.
    pub fn child(&self, ctx: SpanCtx) -> SpanCtx {
        SpanCtx {
            trace: ctx.trace,
            span: self.next_span(ctx.trace),
        }
    }

    /// Records a completed span.
    pub fn record(&self, span: Span) {
        self.sink.push(span);
    }

    /// Wall-clock microseconds since the tracer was created, for call
    /// sites without a virtual clock (live cluster, store).
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// The sampler in force.
    #[must_use]
    pub fn sampler(&self) -> Sampler {
        self.sampler
    }

    /// The underlying sink (for capacity/shed accounting).
    #[must_use]
    pub fn sink(&self) -> &SpanSink {
        &self.sink
    }

    /// Removes and returns all buffered spans.
    #[must_use]
    pub fn drain(&self) -> Vec<Span> {
        self.sink.drain()
    }
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders spans as a Chrome trace-event JSON document (the
/// `{"traceEvents": […]}` object form) loadable in `chrome://tracing`
/// and Perfetto.
///
/// Each span becomes a complete (`"ph":"X"`) event; the thread id is
/// `mds + 1` for server-side spans and 0 for client/monitor spans, so
/// the viewer groups work by MDS lane.
#[must_use]
pub fn chrome_trace_json(spans: &[Span]) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(128 * spans.len() + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tid = s.mds.map_or(0u32, |m| u32::from(m) + 1);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{\"trace\":{},\"span\":{}",
            s.name.as_str(),
            s.start_us,
            s.dur_us,
            s.trace.0,
            s.id.0
        );
        if let Some(p) = s.parent {
            let _ = write!(out, ",\"parent\":{}", p.0);
        }
        if let Some(m) = s.mds {
            let _ = write!(out, ",\"mds\":{m}");
        }
        if let Some(f) = s.fault {
            out.push_str(",\"fault\":\"");
            push_json_escaped(&mut out, f.label());
            out.push('"');
        }
        for (k, v) in &s.args {
            out.push_str(",\"");
            push_json_escaped(&mut out, k.name());
            let _ = write!(out, "\":{v}");
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// A stable FNV-1a digest over every field of every span, in order.
///
/// Two replays with the same seed must produce the same digest; CI's
/// `trace-determinism` job asserts exactly that.
#[must_use]
pub fn digest(spans: &[Span]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for s in spans {
        eat(&s.trace.0.to_le_bytes());
        eat(&s.id.0.to_le_bytes());
        eat(&s.parent.map_or(0, |p| p.0).to_le_bytes());
        eat(s.name.as_str().as_bytes());
        eat(&[0]);
        eat(&[s.mds.is_some() as u8]);
        eat(&s.mds.unwrap_or(0).to_le_bytes());
        eat(&s.start_us.to_le_bytes());
        eat(&s.dur_us.to_le_bytes());
        eat(s.fault.map_or("", |f| f.label()).as_bytes());
        eat(&[0]);
        for (k, v) in &s.args {
            eat(k.name().as_bytes());
            eat(&[0]);
            eat(&v.to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_rates_are_exact_at_the_extremes() {
        let always = Sampler::always(7);
        let never = Sampler::never(7);
        for t in 0..1000 {
            assert!(always.sample(TraceId(t)));
            assert!(!never.sample(TraceId(t)));
        }
        assert_eq!(always.rate(), 1.0);
        assert_eq!(never.rate(), 0.0);
    }

    #[test]
    fn sampler_is_deterministic_and_roughly_calibrated() {
        let s = Sampler::new(42, 0.01);
        let picks: Vec<bool> = (0..100_000).map(|t| s.sample(TraceId(t))).collect();
        let again: Vec<bool> = (0..100_000).map(|t| s.sample(TraceId(t))).collect();
        assert_eq!(picks, again, "sampling must be a pure function");
        let kept = picks.iter().filter(|&&b| b).count();
        // 1% of 100k = 1000 expected; allow generous slack.
        assert!((500..1500).contains(&kept), "kept {kept} of 100000");
    }

    #[test]
    fn different_seeds_pick_different_traces() {
        let a = Sampler::new(1, 0.01);
        let b = Sampler::new(2, 0.01);
        let same = (0..100_000)
            .filter(|&t| a.sample(TraceId(t)) == b.sample(TraceId(t)))
            .count();
        assert!(same < 100_000, "seed must influence the sample set");
    }

    #[test]
    fn sink_bounds_and_counts_shedding() {
        let sink = SpanSink::new(2);
        let ctx = SpanCtx {
            trace: TraceId(1),
            span: SpanId(1),
        };
        for i in 0..5 {
            sink.push(Span::root(ctx, span_names::OP, i, 1));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.recorded(), 2);
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.drain().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn tracer_ids_are_unique_and_sampling_none_skips_spans() {
        let t = Tracer::new(Sampler::always(0));
        let a = t.begin().expect("sampled");
        let b = t.begin().expect("sampled");
        assert_ne!(a.trace, b.trace);
        assert_ne!(a.span, b.span);
        let child = t.child(a);
        assert_eq!(child.trace, a.trace);
        assert_ne!(child.span, a.span);

        let off = Tracer::new(Sampler::never(0));
        assert!(off.begin().is_none());
        assert_eq!(off.sink().recorded(), 0);
    }

    #[test]
    fn chrome_export_is_balanced_json_with_expected_fields() {
        let t = Tracer::new(Sampler::always(0));
        let ctx = t.begin().unwrap();
        t.record(
            Span::root(ctx, span_names::OP, 10, 100)
                .with_arg(ArgKey::Target, 42)
                .with_arg(ArgKey::Hops, 2),
        );
        let sctx = t.child(ctx);
        t.record(
            Span::child(ctx, sctx.span, span_names::SERVE, 20, 30)
                .on_mds(3)
                .with_fault(FaultKind::Delay),
        );
        let doc = chrome_trace_json(&t.drain());
        assert!(doc.starts_with('{') && doc.ends_with('}'), "{doc}");
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "unbalanced: {doc}"
        );
        assert!(doc.contains("\"traceEvents\":["), "{doc}");
        assert!(doc.contains("\"ph\":\"X\""), "{doc}");
        assert!(doc.contains("\"tid\":4"), "{doc}");
        assert!(doc.contains("\"fault\":\"delay\""), "{doc}");
        assert!(doc.contains("\"target\":42"), "{doc}");
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let ctx = SpanCtx {
            trace: TraceId(1),
            span: SpanId(1),
        };
        let a = vec![Span::root(ctx, span_names::OP, 0, 5).with_arg(ArgKey::Target, 1)];
        let mut b = a.clone();
        assert_eq!(digest(&a), digest(&b));
        b[0].dur_us = 6;
        assert_ne!(digest(&a), digest(&b));
        let mut c = a.clone();
        c[0].fault = Some(FaultKind::Drop);
        assert_ne!(digest(&a), digest(&c));
    }
}
