//! Node-to-server placement with replication support.

use d2tree_namespace::{NamespaceTree, NodeId, Popularity};
use serde::{Deserialize, Serialize};

use crate::cluster_spec::{ClusterSpec, MdsId};

/// Where one namespace node lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Assignment {
    /// Not yet placed (placements under construction only).
    Unassigned,
    /// Replicated to every MDS — the paper's global layer.
    Replicated,
    /// Hosted by exactly one MDS — the paper's local layer and all
    /// single-copy baselines.
    Single(MdsId),
}

impl Assignment {
    /// Whether the node is replicated to the whole cluster.
    #[must_use]
    pub fn is_replicated(self) -> bool {
        matches!(self, Assignment::Replicated)
    }

    /// The single owner, if any.
    #[must_use]
    pub fn owner(self) -> Option<MdsId> {
        match self {
            Assignment::Single(m) => Some(m),
            _ => None,
        }
    }
}

/// A planned subtree/node migration between servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Migration {
    /// Root of the moved subtree.
    pub node: NodeId,
    /// Source server.
    pub from: MdsId,
    /// Destination server.
    pub to: MdsId,
}

/// Which servers hold the replicated ([`Assignment::Replicated`]) nodes.
///
/// The paper replicates the global layer to *every* MDS; its Sec. VII
/// future work proposes "setting a threshold to control the number of
/// replications of global layer" — [`ReplicaSet::Subset`] implements that
/// extension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicaSet {
    /// Every server in the cluster holds a replica (the paper's default).
    All,
    /// Only these servers hold replicas.
    Subset(Vec<MdsId>),
}

impl ReplicaSet {
    /// Number of replicas under a cluster of `m` servers.
    #[must_use]
    pub fn count(&self, m: usize) -> usize {
        match self {
            ReplicaSet::All => m,
            ReplicaSet::Subset(s) => s.len(),
        }
    }

    /// Whether `mds` holds a replica.
    #[must_use]
    pub fn contains(&self, mds: MdsId) -> bool {
        match self {
            ReplicaSet::All => true,
            ReplicaSet::Subset(s) => s.contains(&mds),
        }
    }
}

/// Dense per-node assignment table for one cluster size.
///
/// Indexed by [`NodeId::index`]; size it with
/// [`NamespaceTree::arena_size`].
///
/// # Example
///
/// ```
/// use d2tree_metrics::{Assignment, MdsId, Placement};
/// use d2tree_namespace::{NamespaceTree, NodeKind};
///
/// # fn main() -> Result<(), d2tree_namespace::TreeError> {
/// let mut tree = NamespaceTree::new();
/// let a = tree.create(tree.root(), "a", NodeKind::Directory)?;
/// let mut p = Placement::new(&tree, 2);
/// p.set(tree.root(), Assignment::Replicated);
/// p.set(a, Assignment::Single(MdsId(1)));
/// assert!(p.is_complete(&tree));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    assignments: Vec<Assignment>,
    cluster_size: usize,
    replicas: ReplicaSet,
}

impl Placement {
    /// Creates an all-[`Unassigned`](Assignment::Unassigned) placement for
    /// `tree` on a cluster of `cluster_size` servers.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_size == 0`.
    #[must_use]
    pub fn new(tree: &NamespaceTree, cluster_size: usize) -> Self {
        assert!(cluster_size > 0, "cluster must have at least one MDS");
        Placement {
            assignments: vec![Assignment::Unassigned; tree.arena_size()],
            cluster_size,
            replicas: ReplicaSet::All,
        }
    }

    /// Number of servers this placement targets.
    #[must_use]
    pub fn cluster_size(&self) -> usize {
        self.cluster_size
    }

    /// The servers holding the [`Assignment::Replicated`] nodes.
    #[must_use]
    pub fn replicas(&self) -> &ReplicaSet {
        &self.replicas
    }

    /// Restricts replication to a subset of the cluster (the Sec. VII
    /// replication-threshold extension).
    ///
    /// # Panics
    ///
    /// Panics if the subset is empty or any member is outside the cluster.
    pub fn set_replicas(&mut self, replicas: ReplicaSet) {
        if let ReplicaSet::Subset(s) = &replicas {
            assert!(!s.is_empty(), "replica subset must be non-empty");
            assert!(
                s.iter().all(|m| m.index() < self.cluster_size),
                "replica subset outside cluster"
            );
        }
        self.replicas = replicas;
    }

    /// Grows the placement to a larger cluster (servers join with no
    /// assignments; use a rebalancing round to fill them).
    ///
    /// # Panics
    ///
    /// Panics if `new_size` is smaller than the current cluster size.
    pub fn grow_cluster(&mut self, new_size: usize) {
        assert!(
            new_size >= self.cluster_size,
            "cannot shrink a placement ({} -> {new_size}); re-partition instead",
            self.cluster_size
        );
        self.cluster_size = new_size;
    }

    /// The assignment of a node.
    ///
    /// Nodes created after the placement was built read as
    /// [`Assignment::Unassigned`].
    #[must_use]
    pub fn assignment(&self, id: NodeId) -> Assignment {
        self.assignments
            .get(id.index())
            .copied()
            .unwrap_or(Assignment::Unassigned)
    }

    /// Sets the assignment of one node.
    ///
    /// # Panics
    ///
    /// Panics if a [`Assignment::Single`] id is outside the cluster.
    pub fn set(&mut self, id: NodeId, assignment: Assignment) {
        if let Assignment::Single(m) = assignment {
            assert!(
                m.index() < self.cluster_size,
                "{m} outside cluster of {}",
                self.cluster_size
            );
        }
        if id.index() >= self.assignments.len() {
            self.assignments
                .resize(id.index() + 1, Assignment::Unassigned);
        }
        self.assignments[id.index()] = assignment;
    }

    /// Assigns the whole subtree rooted at `root` to one server.
    pub fn assign_subtree(&mut self, tree: &NamespaceTree, root: NodeId, mds: MdsId) {
        for id in tree.descendants(root) {
            self.set(id, Assignment::Single(mds));
        }
    }

    /// Whether every live node has an assignment (the paper's Eq. 4).
    #[must_use]
    pub fn is_complete(&self, tree: &NamespaceTree) -> bool {
        tree.nodes()
            .all(|(id, _)| self.assignment(id) != Assignment::Unassigned)
    }

    /// Count of replicated (global-layer) nodes.
    #[must_use]
    pub fn replicated_count(&self, tree: &NamespaceTree) -> usize {
        tree.nodes()
            .filter(|(id, _)| self.assignment(*id).is_replicated())
            .count()
    }

    /// Per-server loads `L_k`: the requests each server serves.
    ///
    /// A node contributes its *individual* popularity `p'_j` (how often it
    /// is the target of an operation) to its hosting server; a replicated
    /// node spreads `p'_j / M` over every server, because any MDS can (and
    /// in D2-Tree does, uniformly at random) serve a global-layer access.
    ///
    /// Using individual rather than rolled-up popularity matches the
    /// paper's balance results: pass-through ancestor "touches" are not
    /// server work in their accounting (otherwise the root's owner would
    /// carry the whole trace under every single-copy scheme and no
    /// hash-based scheme could ever balance). Forwarding costs do exist —
    /// the discrete-event simulator charges them as service time — but the
    /// Def. 5 balance metric is over served requests.
    #[must_use]
    pub fn loads(&self, tree: &NamespaceTree, pop: &Popularity) -> Vec<f64> {
        let mut loads = vec![0.0; self.cluster_size];
        let replica_count = self.replicas.count(self.cluster_size);
        let share = 1.0 / replica_count as f64;
        for (id, _) in tree.nodes() {
            let p = pop.individual(id);
            match self.assignment(id) {
                Assignment::Unassigned => {}
                Assignment::Replicated => match &self.replicas {
                    ReplicaSet::All => {
                        for l in &mut loads {
                            *l += p * share;
                        }
                    }
                    ReplicaSet::Subset(s) => {
                        for m in s {
                            loads[m.index()] += p * share;
                        }
                    }
                },
                Assignment::Single(m) => loads[m.index()] += p,
            }
        }
        loads
    }

    /// Applies a batch of migrations: each moves the whole subtree rooted at
    /// `migration.node` to `migration.to`.
    pub fn apply_migrations(&mut self, tree: &NamespaceTree, migrations: &[Migration]) {
        for m in migrations {
            self.assign_subtree(tree, m.node, m.to);
        }
    }

    /// Iterates over `(node, assignment)` for all live nodes of `tree`.
    pub fn iter<'a>(
        &'a self,
        tree: &'a NamespaceTree,
    ) -> impl Iterator<Item = (NodeId, Assignment)> + 'a {
        tree.nodes().map(move |(id, _)| (id, self.assignment(id)))
    }

    /// Validates the placement against a cluster spec (sizes must agree).
    ///
    /// # Panics
    ///
    /// Panics if the cluster size differs.
    pub fn check_cluster(&self, cluster: &ClusterSpec) {
        assert_eq!(
            self.cluster_size,
            cluster.len(),
            "placement built for a different cluster size"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_namespace::NodeKind;

    fn tree3() -> (NamespaceTree, NodeId, NodeId) {
        let mut t = NamespaceTree::new();
        let a = t.create(t.root(), "a", NodeKind::Directory).unwrap();
        let f = t.create(a, "f", NodeKind::File).unwrap();
        (t, a, f)
    }

    #[test]
    fn unassigned_until_set() {
        let (t, a, _) = tree3();
        let mut p = Placement::new(&t, 2);
        assert_eq!(p.assignment(a), Assignment::Unassigned);
        assert!(!p.is_complete(&t));
        p.set(t.root(), Assignment::Replicated);
        p.assign_subtree(&t, a, MdsId(0));
        assert!(p.is_complete(&t));
        assert_eq!(p.replicated_count(&t), 1);
    }

    #[test]
    fn loads_split_replicated_evenly() {
        let (t, a, f) = tree3();
        let mut pop = Popularity::new(&t);
        pop.record(f, 8.0);
        pop.record(t.root(), 6.0);
        pop.rollup(&t);

        let mut p = Placement::new(&t, 2);
        p.set(t.root(), Assignment::Replicated);
        p.set(a, Assignment::Single(MdsId(0)));
        p.set(f, Assignment::Single(MdsId(0)));
        let loads = p.loads(&t, &pop);
        // The replicated root's 6 requests split 3/3; f's 8 requests land
        // on its owner mds0; pass-through traversal is not load.
        assert_eq!(loads, vec![11.0, 3.0]);
    }

    #[test]
    fn migrations_move_whole_subtrees() {
        let (t, a, f) = tree3();
        let mut p = Placement::new(&t, 2);
        p.set(t.root(), Assignment::Replicated);
        p.assign_subtree(&t, a, MdsId(0));
        p.apply_migrations(
            &t,
            &[Migration {
                node: a,
                from: MdsId(0),
                to: MdsId(1),
            }],
        );
        assert_eq!(p.assignment(a), Assignment::Single(MdsId(1)));
        assert_eq!(p.assignment(f), Assignment::Single(MdsId(1)));
    }

    #[test]
    #[should_panic(expected = "outside cluster")]
    fn set_outside_cluster_panics() {
        let (t, a, _) = tree3();
        let mut p = Placement::new(&t, 2);
        p.set(a, Assignment::Single(MdsId(5)));
    }

    #[test]
    fn assignment_accessors() {
        assert!(Assignment::Replicated.is_replicated());
        assert_eq!(Assignment::Single(MdsId(3)).owner(), Some(MdsId(3)));
        assert_eq!(Assignment::Replicated.owner(), None);
    }

    #[test]
    fn limited_replication_concentrates_gl_load() {
        let (t, a, f) = tree3();
        let mut pop = Popularity::new(&t);
        pop.record(t.root(), 12.0);
        pop.rollup(&t);
        let mut p = Placement::new(&t, 3);
        p.set(t.root(), Assignment::Replicated);
        p.set(a, Assignment::Single(MdsId(2)));
        p.set(f, Assignment::Single(MdsId(2)));
        p.set_replicas(ReplicaSet::Subset(vec![MdsId(0), MdsId(1)]));
        let loads = p.loads(&t, &pop);
        // The root's 12 requests split 6/6 over the two replicas only.
        assert_eq!(loads, vec![6.0, 6.0, 0.0]);
        assert!(p.replicas().contains(MdsId(0)));
        assert!(!p.replicas().contains(MdsId(2)));
        assert_eq!(p.replicas().count(3), 2);
    }

    #[test]
    #[should_panic(expected = "outside cluster")]
    fn replica_subset_must_be_in_cluster() {
        let (t, _, _) = tree3();
        let mut p = Placement::new(&t, 2);
        p.set_replicas(ReplicaSet::Subset(vec![MdsId(7)]));
    }

    #[test]
    fn grow_cluster_admits_new_servers() {
        let (t, a, _) = tree3();
        let mut p = Placement::new(&t, 2);
        p.grow_cluster(4);
        assert_eq!(p.cluster_size(), 4);
        p.set(a, Assignment::Single(MdsId(3))); // now valid
        assert_eq!(p.assignment(a).owner(), Some(MdsId(3)));
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_cluster_rejects_shrinking() {
        let (t, _, _) = tree3();
        let mut p = Placement::new(&t, 3);
        p.grow_cluster(2);
    }

    #[test]
    fn set_grows_table_for_new_nodes() {
        let (mut t, a, _) = tree3();
        let mut p = Placement::new(&t, 2);
        let n = t.create(a, "new", NodeKind::File).unwrap();
        p.set(n, Assignment::Single(MdsId(1)));
        assert_eq!(p.assignment(n), Assignment::Single(MdsId(1)));
    }
}
