//! Empirical CDFs and equi-probability histograms (Def. 6).

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over `f64` samples.
///
/// Backing store is the sorted sample vector; evaluation is a binary
/// search. This is the `F_k(·)` of Theorem 2 and the workhorse behind
/// mirror division.
///
/// # Example
///
/// ```
/// use d2tree_metrics::Ecdf;
///
/// let e = Ecdf::from_samples(vec![1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(e.eval(0.5), 0.0);
/// assert_eq!(e.eval(2.0), 0.75);
/// assert_eq!(e.eval(9.0), 1.0);
/// assert_eq!(e.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF, sorting the samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    #[must_use]
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "ECDF needs at least one sample");
        assert!(
            samples.iter().all(|v| v.is_finite()),
            "ECDF samples must be finite"
        );
        samples.sort_by(f64::total_cmp);
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF has no samples (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of samples `≤ x`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let below = self.sorted.partition_point(|&s| s <= x);
        below as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`): smallest sample `v` with
    /// `F(v) ≥ q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be within [0, 1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// The Kolmogorov–Smirnov statistic `sup |F(x) − G(x)|` against another
    /// ECDF, the quantity the DKW inequality (Thm. 2) bounds.
    #[must_use]
    pub fn sup_distance(&self, other: &Ecdf) -> f64 {
        let mut sup: f64 = 0.0;
        for &x in self.sorted.iter().chain(&other.sorted) {
            sup = sup.max((self.eval(x) - other.eval(x)).abs());
            // Also check just below each jump point.
            let eps = x.abs().max(1.0) * 1e-12;
            sup = sup.max((self.eval(x - eps) - other.eval(x - eps)).abs());
        }
        sup
    }

    /// Minimum sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }
}

/// The equi-probability histogram of Def. 6: boundaries
/// `{x_i, i = 1..k; Δx}` such that every interval `[x_i, x_i+1]` carries the
/// same probability mass `Δx = 1/(k−1)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    boundaries: Vec<f64>,
}

impl Histogram {
    /// Builds a `k`-boundary (`k−1`-bin) equi-probability histogram from an
    /// ECDF.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    #[must_use]
    pub fn equi_probability(ecdf: &Ecdf, k: usize) -> Self {
        assert!(k >= 2, "a histogram needs at least two boundaries");
        let boundaries = (0..k)
            .map(|i| ecdf.quantile(i as f64 / (k - 1) as f64))
            .collect();
        Histogram { boundaries }
    }

    /// The boundary values `x_1 ≤ x_2 ≤ … ≤ x_k`.
    #[must_use]
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// The per-bin probability mass `Δx = 1/(k−1)` (Eq. 8–9).
    #[must_use]
    pub fn delta(&self) -> f64 {
        1.0 / (self.boundaries.len() as f64 - 1.0)
    }

    /// Index of the bin containing `x` (clamped to the outermost bins).
    #[must_use]
    pub fn bin_of(&self, x: f64) -> usize {
        let k = self.boundaries.len();
        let idx = self.boundaries.partition_point(|&b| b <= x);
        idx.saturating_sub(1).min(k - 2)
    }

    /// Number of bins (`k − 1`).
    #[must_use]
    pub fn bin_count(&self) -> usize {
        self.boundaries.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_a_step_function() {
        let e = Ecdf::from_samples(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.eval(0.9), 0.0);
        assert!((e.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 3.0);
    }

    #[test]
    fn quantiles_invert_eval() {
        let e = Ecdf::from_samples((1..=100).map(f64::from).collect());
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(1.0), 100.0);
    }

    #[test]
    fn sup_distance_of_identical_is_zero() {
        let e = Ecdf::from_samples(vec![1.0, 2.0, 3.0]);
        assert_eq!(e.sup_distance(&e.clone()), 0.0);
    }

    #[test]
    fn sup_distance_detects_shift() {
        let a = Ecdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        let b = Ecdf::from_samples(vec![101.0, 102.0, 103.0, 104.0]);
        assert_eq!(a.sup_distance(&b), 1.0);
        assert_eq!(b.sup_distance(&a), 1.0);
    }

    #[test]
    fn sup_distance_shrinks_with_sample_size() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let full: Vec<f64> = (0..20_000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let small = Ecdf::from_samples(full[..100].to_vec());
        let big = Ecdf::from_samples(full[..10_000].to_vec());
        let reference = Ecdf::from_samples(full.clone());
        assert!(big.sup_distance(&reference) < small.sup_distance(&reference));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_ecdf_panics() {
        let _ = Ecdf::from_samples(vec![]);
    }

    #[test]
    fn histogram_bins_have_equal_mass() {
        let e = Ecdf::from_samples((1..=1000).map(f64::from).collect());
        let h = Histogram::equi_probability(&e, 6);
        assert_eq!(h.bin_count(), 5);
        assert!((h.delta() - 0.2).abs() < 1e-12);
        // Each bin should hold ~200 of the 1000 uniform samples.
        let b = h.boundaries();
        for w in b.windows(2) {
            let mass = e.eval(w[1]) - e.eval(w[0]);
            assert!((0.15..=0.21).contains(&mass), "bin mass {mass}");
        }
    }

    #[test]
    fn bin_of_clamps_to_edges() {
        let e = Ecdf::from_samples((1..=10).map(f64::from).collect());
        let h = Histogram::equi_probability(&e, 3);
        assert_eq!(h.bin_of(-5.0), 0);
        assert_eq!(h.bin_of(1e9), h.bin_count() - 1);
    }
}
