//! Mirror division (Fig. 4): match the cumulative-popularity CDF of
//! subtrees against the cumulative-capacity CDF of servers.
//!
//! Each item (subtree) occupies an interval of the cumulative popularity
//! axis; each server occupies an interval of the cumulative capacity axis.
//! An item goes to the server whose interval contains the item's upper
//! cumulative index — so servers receive popularity proportional to their
//! (remaining) capacity, which is exactly Eq. 10's
//! `{t ∈ P : F_Δ(R_{i−1}) < F_Δ(s_t) ≤ F_Δ(R_i)}`.

/// Assigns weighted items to buckets proportionally to bucket capacity.
///
/// Items are processed in descending weight order (as in the paper's Fig. 4
/// where `Δ1`, the heaviest subtree, anchors the axis); the returned vector
/// gives, per input item (in the *original* input order), the index of the
/// bucket it landed in.
///
/// Buckets with zero capacity receive nothing; items with zero weight
/// follow their position on the cumulative axis like any other. If all
/// capacities are zero the items are spread round-robin.
///
/// # Panics
///
/// Panics if `capacities` is empty or any weight/capacity is negative.
///
/// # Example
///
/// ```
/// use d2tree_metrics::mirror::mirror_divide;
///
/// // Fig. 4 of the paper: five subtrees with popularity shares
/// // .5/.2/.1/.1/.1 onto three MDSs with capacity shares .5/.3/.2.
/// let buckets = mirror_divide(&[0.5, 0.2, 0.1, 0.1, 0.1], &[0.5, 0.3, 0.2]);
/// assert_eq!(buckets, vec![0, 1, 1, 2, 2]);
/// ```
#[must_use]
pub fn mirror_divide(weights: &[f64], capacities: &[f64]) -> Vec<usize> {
    assert!(!capacities.is_empty(), "need at least one bucket");
    assert!(
        weights.iter().all(|&w| w >= 0.0),
        "weights must be non-negative"
    );
    assert!(
        capacities.iter().all(|&c| c >= 0.0),
        "capacities must be non-negative"
    );

    let total_cap: f64 = capacities.iter().sum();
    let mut result = vec![0usize; weights.len()];
    if weights.is_empty() {
        return result;
    }
    if total_cap <= 0.0 {
        for (i, slot) in result.iter_mut().enumerate() {
            *slot = i % capacities.len();
        }
        return result;
    }

    // Cumulative capacity boundaries Y_1..Y_M on a [0, 1] axis.
    let mut cap_bounds = Vec::with_capacity(capacities.len());
    let mut acc = 0.0;
    for &c in capacities {
        acc += c / total_cap;
        cap_bounds.push(acc);
    }
    // Guard against rounding: the last boundary is exactly 1.
    *cap_bounds.last_mut().expect("non-empty") = 1.0;

    // Items sorted by descending weight, ties broken by original index for
    // determinism.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));

    let total_weight: f64 = weights.iter().sum();
    let mut cum = 0.0;
    let mut bucket = 0usize;
    for &item in &order {
        let share = if total_weight > 0.0 {
            weights[item] / total_weight
        } else {
            1.0 / weights.len() as f64
        };
        // The item occupies [cum, cum + share) on the popularity axis; it
        // goes to the bucket containing the interval's midpoint, i.e. the
        // bucket with the largest overlap. (Assigning by the interval's
        // *endpoint* would strand every item after an over-sized head in
        // the last bucket.) Midpoints are monotonic, so a forward-only
        // pointer suffices; zero-capacity buckets have empty intervals and
        // are skipped automatically.
        let mid = cum + share / 2.0;
        cum += share;
        while bucket + 1 < cap_bounds.len() && mid > cap_bounds[bucket] + 1e-12 {
            bucket += 1;
        }
        result[item] = bucket;
    }
    result
}

/// Computes per-bucket weight totals for an assignment produced by
/// [`mirror_divide`].
#[must_use]
pub fn bucket_loads(weights: &[f64], assignment: &[usize], buckets: usize) -> Vec<f64> {
    let mut loads = vec![0.0; buckets];
    for (&w, &b) in weights.iter().zip(assignment) {
        loads[b] += w;
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig4_example() {
        let buckets = mirror_divide(&[0.5, 0.2, 0.1, 0.1, 0.1], &[0.5, 0.3, 0.2]);
        assert_eq!(buckets, vec![0, 1, 1, 2, 2]);
        let loads = bucket_loads(&[0.5, 0.2, 0.1, 0.1, 0.1], &buckets, 3);
        assert!((loads[0] - 0.5).abs() < 1e-12);
        assert!((loads[1] - 0.3).abs() < 1e-12);
        assert!((loads[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn proportional_to_heterogeneous_capacity() {
        let weights = vec![1.0; 100];
        let caps = [10.0, 30.0, 60.0];
        let assignment = mirror_divide(&weights, &caps);
        let loads = bucket_loads(&weights, &assignment, 3);
        assert!((loads[0] - 10.0).abs() <= 1.0);
        assert!((loads[1] - 30.0).abs() <= 1.0);
        assert!((loads[2] - 60.0).abs() <= 1.0);
    }

    #[test]
    fn zero_capacity_bucket_gets_nothing() {
        let weights = vec![1.0; 50];
        let assignment = mirror_divide(&weights, &[1.0, 0.0, 1.0]);
        assert!(assignment.iter().all(|&b| b != 1));
    }

    #[test]
    fn all_zero_capacity_falls_back_to_round_robin() {
        let weights = vec![1.0; 6];
        let assignment = mirror_divide(&weights, &[0.0, 0.0, 0.0]);
        let loads = bucket_loads(&weights, &assignment, 3);
        assert_eq!(loads, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn empty_items_ok() {
        assert!(mirror_divide(&[], &[1.0]).is_empty());
    }

    #[test]
    fn single_bucket_takes_everything() {
        let assignment = mirror_divide(&[3.0, 1.0, 2.0], &[7.0]);
        assert_eq!(assignment, vec![0, 0, 0]);
    }

    #[test]
    fn deterministic_on_ties() {
        let a = mirror_divide(&[1.0, 1.0, 1.0, 1.0], &[1.0, 1.0]);
        let b = mirror_divide(&[1.0, 1.0, 1.0, 1.0], &[1.0, 1.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn no_buckets_panics() {
        let _ = mirror_divide(&[1.0], &[]);
    }
}
