//! Formal metrics and statistical tools of the D2-Tree paper.
//!
//! This crate is the "measurement currency" of the reproduction:
//!
//! * [`ClusterSpec`] / [`MdsId`] — the MDS cluster model with per-server
//!   capacities, the ideal load factor `μ` (Sec. III-B) and ideal loads.
//! * [`Placement`] — which MDS hosts each namespace node, with the paper's
//!   replication-aware load accounting.
//! * [`measures`] — jump counting (Def. 1), system locality (Def. 3 /
//!   Eq. 7), update cost (Def. 4) and the load-balance degree (Def. 5).
//! * [`Ecdf`] / [`Histogram`] — empirical CDFs and equi-probability
//!   histograms (Def. 6) used by mirror division.
//! * [`dkw`] — the Dvoretzky–Kiefer–Wolfowitz bound (Thm. 2) and the
//!   paper's sample-size formulas (Lem. 1, Thm. 3).
//! * [`mirror`] — the mirror-division interval assignment of Fig. 4.
//!
//! # Example
//!
//! ```
//! use d2tree_metrics::{balance, ClusterSpec};
//!
//! let cluster = ClusterSpec::homogeneous(4, 100.0);
//! // Perfectly even loads → tiny variance → huge balance degree.
//! let even = balance(&[25.0, 25.0, 25.0, 25.0], &cluster);
//! let skew = balance(&[70.0, 10.0, 10.0, 10.0], &cluster);
//! assert!(even > skew);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster_spec;
pub mod dkw;
mod ecdf;
pub mod measures;
pub mod mirror;
mod placement;

pub use cluster_spec::{ClusterSpec, MdsId};
pub use ecdf::{Ecdf, Histogram};
pub use measures::{balance, locality_from_jumps, path_jumps, update_cost, LocalityReport};
pub use placement::{Assignment, Migration, Placement, ReplicaSet};
