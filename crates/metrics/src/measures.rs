//! The paper's formal metrics: jumps (Def. 1), locality (Def. 3),
//! update cost (Def. 4) and balance degree (Def. 5).

use d2tree_namespace::{NamespaceTree, NodeId, Popularity};
use serde::{Deserialize, Serialize};

use crate::cluster_spec::ClusterSpec;
use crate::placement::{Assignment, Placement};

/// Counts the jumps a pathname traversal to `node` performs (Def. 1).
///
/// The traversal walks the root-to-node chain. A *jump* happens whenever the
/// next chain node cannot be served by the server currently holding the
/// traversal. Replicated nodes are served by every server, so they never
/// force a jump and never constrain the follow-up server — this generalises
/// the paper's definition to the replicated global layer (a chain that is
/// entirely replicated has zero jumps, matching Eq. 7's `jp_j = 0` for
/// global-layer nodes).
///
/// Note that D2-Tree itself accounts one jump for every local-layer node
/// (Eq. 7's conservative convention that a query first lands on a random
/// MDS); its scheme implementation counts jumps that way rather than through
/// this chain walk. Baselines with single-copy placements get exactly
/// Def. 1 from this function.
///
/// # Panics
///
/// Panics if a chain node is [`Assignment::Unassigned`].
#[must_use]
pub fn path_jumps(tree: &NamespaceTree, placement: &Placement, node: NodeId) -> u32 {
    #[derive(Clone, Copy, PartialEq)]
    enum Holder {
        Any,
        One(usize),
    }
    // Jump counting is direction-symmetric: the number of adjacent
    // single-holder changes along the chain is the same walked up or
    // down, and the upward parent-pointer walk needs no allocation.
    let mut jumps = 0;
    let mut holder = Holder::Any;
    for id in tree.chain_up(node) {
        match placement.assignment(id) {
            Assignment::Unassigned => panic!("jump counting requires a complete placement"),
            Assignment::Replicated => {}
            Assignment::Single(m) => match holder {
                Holder::Any => holder = Holder::One(m.index()),
                Holder::One(k) if k == m.index() => {}
                Holder::One(_) => {
                    jumps += 1;
                    holder = Holder::One(m.index());
                }
            },
        }
    }
    jumps
}

/// The system-locality computation of Def. 3: `locality = 1 / Σ jp_j · p_j`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityReport {
    /// The weighted jump sum `Σ jp_j · p_j` (the denominator).
    pub weighted_jumps: f64,
    /// `1 / weighted_jumps`; infinite when no access ever jumps.
    pub locality: f64,
}

/// Computes Def. 3 locality over all live nodes, with per-node jumps
/// supplied by `jumps_of` and weights taken from rolled-up total
/// popularity.
///
/// Schemes plug in their own jump rule: baselines use
/// [`path_jumps`], D2-Tree uses its Eq. 7 layer rule.
///
/// # Example
///
/// ```
/// use d2tree_metrics::{locality_from_jumps, Assignment, MdsId, Placement, path_jumps};
/// use d2tree_namespace::{NamespaceTree, NodeKind, Popularity};
///
/// # fn main() -> Result<(), d2tree_namespace::TreeError> {
/// let mut tree = NamespaceTree::new();
/// let a = tree.create(tree.root(), "a", NodeKind::File)?;
/// let mut pop = Popularity::new(&tree);
/// pop.record(a, 4.0);
/// pop.rollup(&tree);
///
/// let mut p = Placement::new(&tree, 2);
/// p.set(tree.root(), Assignment::Single(MdsId(0)));
/// p.set(a, Assignment::Single(MdsId(1)));
/// let report = locality_from_jumps(&tree, &pop, |n| path_jumps(&tree, &p, n));
/// // Accessing `a` jumps once, weighted by its popularity 4; the root's
/// // own traversal never jumps.
/// assert_eq!(report.weighted_jumps, 4.0);
/// assert_eq!(report.locality, 0.25);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn locality_from_jumps<F>(
    tree: &NamespaceTree,
    pop: &Popularity,
    mut jumps_of: F,
) -> LocalityReport
where
    F: FnMut(NodeId) -> u32,
{
    let mut weighted = 0.0;
    for (id, _) in tree.nodes() {
        let j = jumps_of(id);
        if j > 0 {
            weighted += f64::from(j) * pop.total(id);
        }
    }
    let locality = if weighted > 0.0 {
        1.0 / weighted
    } else {
        f64::INFINITY
    };
    LocalityReport {
        weighted_jumps: weighted,
        locality,
    }
}

/// Total update cost over the global layer (Def. 4): `Σ_{n_j ∈ GL} u_j`.
///
/// `cost_of` supplies the per-node update cost `u_j`; the common model is
/// `u_j = update_rate_j × replication_factor`, since every replica of a
/// global-layer node must apply the mutation.
#[must_use]
pub fn update_cost<I, F>(global_layer: I, cost_of: F) -> f64
where
    I: IntoIterator<Item = NodeId>,
    F: FnMut(NodeId) -> f64,
{
    global_layer.into_iter().map(cost_of).sum()
}

/// The load-balance degree of Def. 5:
/// `balance = 1 / ( (1/(M−1)) Σ_k (L_k/C_k − μ)² )`.
///
/// Returns `+∞` for a perfectly balanced cluster and for `M = 1` (a single
/// server is trivially balanced).
///
/// # Panics
///
/// Panics if `loads.len()` differs from the cluster size.
#[must_use]
pub fn balance(loads: &[f64], cluster: &ClusterSpec) -> f64 {
    assert_eq!(loads.len(), cluster.len(), "one load per MDS");
    let m = cluster.len();
    if m == 1 {
        return f64::INFINITY;
    }
    let total: f64 = loads.iter().sum();
    let mu = cluster.ideal_load_factor(total);
    let sum_sq: f64 = loads
        .iter()
        .zip(cluster.capacities())
        .map(|(&l, &c)| {
            let d = l / c - mu;
            d * d
        })
        .sum();
    let variance = sum_sq / (m as f64 - 1.0);
    if variance > 0.0 {
        1.0 / variance
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_spec::MdsId;
    use d2tree_namespace::NodeKind;

    fn chain_tree(n: usize) -> (NamespaceTree, Vec<NodeId>) {
        let mut t = NamespaceTree::new();
        let mut ids = vec![t.root()];
        for i in 0..n {
            let id = t
                .create(*ids.last().unwrap(), &format!("c{i}"), NodeKind::Directory)
                .unwrap();
            ids.push(id);
        }
        (t, ids)
    }

    #[test]
    fn jumps_count_server_changes_on_chain() {
        let (t, ids) = chain_tree(3);
        let mut p = Placement::new(&t, 3);
        p.set(ids[0], Assignment::Single(MdsId(0)));
        p.set(ids[1], Assignment::Single(MdsId(0)));
        p.set(ids[2], Assignment::Single(MdsId(1)));
        p.set(ids[3], Assignment::Single(MdsId(2)));
        assert_eq!(path_jumps(&t, &p, ids[0]), 0);
        assert_eq!(path_jumps(&t, &p, ids[1]), 0);
        assert_eq!(path_jumps(&t, &p, ids[2]), 1);
        assert_eq!(path_jumps(&t, &p, ids[3]), 2);
    }

    #[test]
    fn replicated_nodes_never_jump() {
        let (t, ids) = chain_tree(3);
        let mut p = Placement::new(&t, 3);
        p.set(ids[0], Assignment::Replicated);
        p.set(ids[1], Assignment::Replicated);
        p.set(ids[2], Assignment::Single(MdsId(1)));
        p.set(ids[3], Assignment::Single(MdsId(1)));
        assert_eq!(path_jumps(&t, &p, ids[1]), 0);
        // Replicated prefix narrows onto mds1 without a jump; the whole
        // subtree is co-located.
        assert_eq!(path_jumps(&t, &p, ids[3]), 0);
    }

    #[test]
    fn replication_between_singles_does_not_mask_a_change() {
        let (t, ids) = chain_tree(2);
        let mut p = Placement::new(&t, 2);
        p.set(ids[0], Assignment::Single(MdsId(0)));
        p.set(ids[1], Assignment::Replicated);
        p.set(ids[2], Assignment::Single(MdsId(1)));
        // mds0 cannot serve ids[2]; the replica of ids[1] exists on mds1
        // but the holder was pinned to mds0 → one jump.
        assert_eq!(path_jumps(&t, &p, ids[2]), 1);
    }

    #[test]
    #[should_panic(expected = "complete placement")]
    fn unassigned_chain_panics() {
        let (t, ids) = chain_tree(1);
        let p = Placement::new(&t, 2);
        let _ = path_jumps(&t, &p, ids[1]);
    }

    #[test]
    fn locality_is_infinite_on_single_server() {
        let (t, ids) = chain_tree(2);
        let mut pop = Popularity::new(&t);
        pop.record(ids[2], 5.0);
        pop.rollup(&t);
        let mut p = Placement::new(&t, 1);
        for &id in &ids {
            p.set(id, Assignment::Single(MdsId(0)));
        }
        let r = locality_from_jumps(&t, &pop, |n| path_jumps(&t, &p, n));
        assert!(r.locality.is_infinite());
        assert_eq!(r.weighted_jumps, 0.0);
    }

    #[test]
    fn update_cost_sums_over_global_layer() {
        let (_, ids) = chain_tree(2);
        let cost = update_cost(ids.iter().copied().take(2), |_| 3.0);
        assert_eq!(cost, 6.0);
    }

    #[test]
    fn balance_orders_configurations() {
        let c = ClusterSpec::homogeneous(4, 100.0);
        let perfect = balance(&[10.0; 4], &c);
        let slight = balance(&[11.0, 10.0, 10.0, 9.0], &c);
        let bad = balance(&[40.0, 0.0, 0.0, 0.0], &c);
        assert!(perfect.is_infinite());
        assert!(slight > bad);
    }

    #[test]
    fn balance_respects_heterogeneous_capacity() {
        // Loads proportional to capacity are perfectly balanced.
        let c = ClusterSpec::new(vec![10.0, 30.0]);
        assert!(balance(&[5.0, 15.0], &c).is_infinite());
        assert!(balance(&[15.0, 5.0], &c).is_finite());
    }

    #[test]
    fn single_server_balance_is_infinite() {
        let c = ClusterSpec::homogeneous(1, 10.0);
        assert!(balance(&[123.0], &c).is_infinite());
    }
}
