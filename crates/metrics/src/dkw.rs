//! Dvoretzky–Kiefer–Wolfowitz machinery (Thm. 2) and the paper's
//! sample-size prescriptions (Lem. 1, Thm. 3, Thm. 4).

/// Upper bound on `Pr(sup |F_k − F| > ε)` for `k` i.i.d. samples
/// (Thm. 2): `2·e^(−2kε²)`.
///
/// # Panics
///
/// Panics if `eps` is not positive.
#[must_use]
pub fn violation_probability(k: usize, eps: f64) -> f64 {
    assert!(eps > 0.0, "epsilon must be positive");
    (2.0 * (-2.0 * k as f64 * eps * eps).exp()).min(1.0)
}

/// The smallest `ε` guaranteed with probability at least `confidence` for
/// `k` samples: `ε = sqrt(ln(2 / (1 − confidence)) / (2k))`.
///
/// # Panics
///
/// Panics if `confidence` is outside `(0, 1)` or `k == 0`.
#[must_use]
pub fn epsilon_for_confidence(k: usize, confidence: f64) -> f64 {
    assert!(k > 0, "need at least one sample");
    assert!(
        (0.0..1.0).contains(&confidence) && confidence > 0.0,
        "confidence must be in (0,1)"
    );
    ((2.0 / (1.0 - confidence)).ln() / (2.0 * k as f64)).sqrt()
}

/// Lemma 1's sample count: with `ln(t·H)/2 · ((U−L)/δ)²` uniform samples
/// from a pool of `h` subtrees whose popularities span `[l, u]`, the
/// expected index-matching error satisfies `E[|s_i − s_j|] < δ` with
/// probability at least `1 − 2/(t·H)`.
///
/// Returns at least 1.
///
/// # Panics
///
/// Panics if `delta <= 0`, `u < l`, or `t·h ≤ 1` (the logarithm must be
/// positive for the bound to be meaningful).
#[must_use]
pub fn lemma1_sample_count(t: f64, h: usize, l: f64, u: f64, delta: f64) -> usize {
    assert!(delta > 0.0, "delta must be positive");
    assert!(u >= l, "span must be non-negative");
    let th = t * h as f64;
    assert!(th > 1.0, "t*H must exceed 1 for a meaningful bound");
    let span = (u - l) / delta;
    ((th.ln() / 2.0) * span * span).ceil().max(1.0) as usize
}

/// Theorem 3's per-MDS sample count:
/// `ln(t·H²)/2 · (H·p_k·(U−L) / (δ·μ·C_k))²` samples give
/// `E[|L_k/C_k − μ|] < δμ` with probability at least `1 − 2/(t·H)`.
///
/// `p_k` is the MDS's capacity share `C_k / ΣC_i`.
///
/// # Panics
///
/// Panics on non-positive `delta`, `mu` or `c_k`, or if `t·h² ≤ 1`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn theorem3_sample_count(
    t: f64,
    h: usize,
    p_k: f64,
    l: f64,
    u: f64,
    delta: f64,
    mu: f64,
    c_k: f64,
) -> usize {
    assert!(
        delta > 0.0 && mu > 0.0 && c_k > 0.0,
        "delta, mu, c_k must be positive"
    );
    assert!(u >= l, "span must be non-negative");
    let th2 = t * (h as f64) * (h as f64);
    assert!(th2 > 1.0, "t*H^2 must exceed 1 for a meaningful bound");
    let ratio = (h as f64) * p_k * (u - l) / (delta * mu * c_k);
    ((th2.ln() / 2.0) * ratio * ratio).ceil().max(1.0) as usize
}

/// Theorem 4's bound on the expected balance *variance*: when every MDS
/// samples per [`theorem3_sample_count`], the expected value of the
/// balance denominator `(1/(M−1))·Σ(L_k/C_k − μ)²` is below
/// `M/(M−1) · δ²μ²`, i.e. `E[1/balance] < M/(M−1)·δ²μ²`.
///
/// # Panics
///
/// Panics if `m < 2`.
#[must_use]
pub fn theorem4_variance_bound(m: usize, delta: f64, mu: f64) -> f64 {
    assert!(m >= 2, "theorem 4 needs at least two MDSs");
    (m as f64 / (m as f64 - 1.0)) * delta * delta * mu * mu
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_probability_decays_with_samples() {
        let a = violation_probability(10, 0.1);
        let b = violation_probability(1_000, 0.1);
        assert!(b < a);
        assert!(b < 1e-8);
        assert!(a <= 1.0);
    }

    #[test]
    fn epsilon_inverts_violation_probability() {
        let k = 500;
        let conf = 0.95;
        let eps = epsilon_for_confidence(k, conf);
        let p = violation_probability(k, eps);
        assert!((p - (1.0 - conf)).abs() < 1e-9);
    }

    #[test]
    fn lemma1_count_grows_with_precision() {
        let loose = lemma1_sample_count(0.5, 10_000, 0.0, 100.0, 10.0);
        let tight = lemma1_sample_count(0.5, 10_000, 0.0, 100.0, 1.0);
        assert!(tight > loose);
        assert!(tight >= 100 * loose / 2, "quadratic in 1/delta");
    }

    #[test]
    fn theorem3_count_positive_and_monotone() {
        let base = theorem3_sample_count(0.5, 1_000, 0.1, 0.0, 50.0, 0.1, 2.0, 100.0);
        let tighter = theorem3_sample_count(0.5, 1_000, 0.1, 0.0, 50.0, 0.05, 2.0, 100.0);
        assert!(base >= 1);
        assert!(tighter > base);
    }

    #[test]
    fn theorem4_bound_shrinks_with_cluster_size() {
        let small = theorem4_variance_bound(2, 0.1, 1.0);
        let large = theorem4_variance_bound(32, 0.1, 1.0);
        assert!(large < small);
        assert!((small - 2.0 * 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "t*H must exceed 1")]
    fn lemma1_rejects_tiny_pools() {
        let _ = lemma1_sample_count(0.5, 1, 0.0, 1.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn theorem4_needs_two_servers() {
        let _ = theorem4_variance_bound(1, 0.1, 1.0);
    }
}
