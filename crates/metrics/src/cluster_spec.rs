//! The MDS cluster model: server identities and capacities.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a metadata server within a cluster.
///
/// Ids are dense indices `0..cluster_size`, matching the paper's
/// `m_1..m_M` (zero-based here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MdsId(pub u16);

impl MdsId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MdsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mds{}", self.0)
    }
}

/// Cluster description: one capacity `C_k` per MDS (Sec. III-B).
///
/// Capacity is the paper's abstract throughput limit; all load/balance
/// computations normalise by it, so heterogeneous clusters are supported
/// throughout.
///
/// # Example
///
/// ```
/// use d2tree_metrics::ClusterSpec;
///
/// let c = ClusterSpec::new(vec![100.0, 100.0, 200.0]);
/// assert_eq!(c.len(), 3);
/// // μ = ΣL/ΣC; with total load 200 over capacity 400, μ = 0.5 and the
/// // big server's ideal load is 100.
/// assert_eq!(c.ideal_load_factor(200.0), 0.5);
/// assert_eq!(c.ideal_loads(200.0)[2], 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    capacities: Vec<f64>,
}

impl ClusterSpec {
    /// Builds a cluster from explicit capacities.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is empty or any capacity is not positive.
    #[must_use]
    pub fn new(capacities: Vec<f64>) -> Self {
        assert!(!capacities.is_empty(), "a cluster needs at least one MDS");
        assert!(
            capacities.iter().all(|&c| c.is_finite() && c > 0.0),
            "capacities must be positive and finite"
        );
        ClusterSpec { capacities }
    }

    /// Builds a cluster of `m` identical servers with capacity `c` each.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `c <= 0`.
    #[must_use]
    pub fn homogeneous(m: usize, c: f64) -> Self {
        Self::new(vec![c; m])
    }

    /// Number of MDSs (`M`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.capacities.len()
    }

    /// Whether the cluster has no servers (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.capacities.is_empty()
    }

    /// Iterates over all server ids.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = MdsId> {
        (0..self.capacities.len() as u16).map(MdsId)
    }

    /// Capacity `C_k` of one server.
    #[must_use]
    pub fn capacity(&self, id: MdsId) -> f64 {
        self.capacities[id.index()]
    }

    /// All capacities, indexed by [`MdsId::index`].
    #[must_use]
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Total capacity `ΣC_i`.
    #[must_use]
    pub fn total_capacity(&self) -> f64 {
        self.capacities.iter().sum()
    }

    /// The ideal load factor `μ = ΣL_i / ΣC_i` for a given total load.
    #[must_use]
    pub fn ideal_load_factor(&self, total_load: f64) -> f64 {
        total_load / self.total_capacity()
    }

    /// Ideal per-server loads `I_k = μ·C_k`.
    #[must_use]
    pub fn ideal_loads(&self, total_load: f64) -> Vec<f64> {
        let mu = self.ideal_load_factor(total_load);
        self.capacities.iter().map(|&c| mu * c).collect()
    }

    /// Relative capacities `Re_k = L_k − μ·C_k`; positive means the server
    /// is heavily loaded, negative means light (Sec. III-B).
    #[must_use]
    pub fn relative_capacities(&self, loads: &[f64]) -> Vec<f64> {
        assert_eq!(loads.len(), self.len(), "one load per MDS");
        let total: f64 = loads.iter().sum();
        let mu = self.ideal_load_factor(total);
        loads
            .iter()
            .zip(&self.capacities)
            .map(|(&l, &c)| l - mu * c)
            .collect()
    }

    /// Capacity share `p_k = C_k / ΣC_i` of one server (Thm. 3).
    #[must_use]
    pub fn capacity_share(&self, id: MdsId) -> f64 {
        self.capacity(id) / self.total_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_basics() {
        let c = ClusterSpec::homogeneous(5, 10.0);
        assert_eq!(c.len(), 5);
        assert_eq!(c.total_capacity(), 50.0);
        assert_eq!(c.ids().count(), 5);
        assert_eq!(c.capacity(MdsId(3)), 10.0);
        assert!((c.capacity_share(MdsId(0)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn relative_capacity_signs() {
        let c = ClusterSpec::homogeneous(2, 10.0);
        let re = c.relative_capacities(&[15.0, 5.0]);
        assert!(re[0] > 0.0, "overloaded server has positive Re");
        assert!(re[1] < 0.0, "light server has negative Re");
        assert!(
            (re[0] + re[1]).abs() < 1e-12,
            "relative capacities sum to zero"
        );
    }

    #[test]
    fn heterogeneous_ideal_loads_scale_with_capacity() {
        let c = ClusterSpec::new(vec![10.0, 30.0]);
        let ideal = c.ideal_loads(40.0);
        assert_eq!(ideal, vec![10.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "at least one MDS")]
    fn empty_cluster_panics() {
        let _ = ClusterSpec::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = ClusterSpec::new(vec![1.0, 0.0]);
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(MdsId(7).to_string(), "mds7");
    }
}
