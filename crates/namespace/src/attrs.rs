//! POSIX-style file attributes — the actual *metadata* an MDS stores.
//!
//! The partitioning machinery only needs the tree structure, but a
//! metadata server ultimately serves `stat`-like records. [`AttrTable`]
//! is the dense per-node store the cluster runtimes read and mutate;
//! every mutation bumps a per-node version, which is what the
//! global-layer consistency machinery (fencing tokens, client leases)
//! synchronises on.

use serde::{Deserialize, Serialize};

use crate::node::NodeId;
use crate::tree::NamespaceTree;

/// A `stat`-like attribute record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileAttr {
    /// Permission bits (the low 12 bits of `st_mode`).
    pub mode: u16,
    /// Owning user id.
    pub uid: u32,
    /// Owning group id.
    pub gid: u32,
    /// Logical size in bytes (0 for directories).
    pub size: u64,
    /// Modification time, seconds since the epoch.
    pub mtime: u64,
}

impl Default for FileAttr {
    fn default() -> Self {
        FileAttr {
            mode: 0o644,
            uid: 0,
            gid: 0,
            size: 0,
            mtime: 0,
        }
    }
}

impl FileAttr {
    /// A default directory record (`rwxr-xr-x`).
    #[must_use]
    pub fn directory() -> Self {
        FileAttr {
            mode: 0o755,
            ..FileAttr::default()
        }
    }

    /// Whether `uid`/`gid` may traverse (execute) this entry — the check a
    /// POSIX pathname walk performs on every ancestor.
    #[must_use]
    pub fn allows_traversal(&self, uid: u32, gid: u32) -> bool {
        if uid == 0 {
            return true;
        }
        let shift = if uid == self.uid {
            6
        } else if gid == self.gid {
            3
        } else {
            0
        };
        self.mode >> shift & 0o1 == 0o1
    }
}

/// A versioned attribute record as stored by the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionedAttr {
    /// The attributes.
    pub attr: FileAttr,
    /// Bumped on every mutation; replicas compare versions to converge.
    pub version: u64,
}

/// Dense per-node attribute store, indexed by [`NodeId::index`].
///
/// # Example
///
/// ```
/// use d2tree_namespace::{AttrTable, FileAttr, NamespaceTree, NodeKind};
///
/// # fn main() -> Result<(), d2tree_namespace::TreeError> {
/// let mut tree = NamespaceTree::new();
/// let f = tree.create(tree.root(), "f", NodeKind::File)?;
/// let mut attrs = AttrTable::new(&tree);
///
/// let v0 = attrs.get(f).version;
/// attrs.update(f, |a| a.size = 4096);
/// assert_eq!(attrs.get(f).attr.size, 4096);
/// assert!(attrs.get(f).version > v0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttrTable {
    records: Vec<VersionedAttr>,
}

impl AttrTable {
    /// Creates a table sized for `tree`, with directory defaults for
    /// directories and file defaults for files.
    #[must_use]
    pub fn new(tree: &NamespaceTree) -> Self {
        let mut records = vec![
            VersionedAttr {
                attr: FileAttr::default(),
                version: 0
            };
            tree.arena_size()
        ];
        for (id, node) in tree.nodes() {
            if node.kind().is_directory() {
                records[id.index()].attr = FileAttr::directory();
            }
        }
        AttrTable { records }
    }

    /// Grows the table to cover nodes created after it was built.
    pub fn resize_for(&mut self, tree: &NamespaceTree) {
        let n = tree.arena_size();
        if n > self.records.len() {
            self.records.resize(
                n,
                VersionedAttr {
                    attr: FileAttr::default(),
                    version: 0,
                },
            );
        }
    }

    /// Reads a node's versioned record.
    ///
    /// # Panics
    ///
    /// Panics if the id is outside the table.
    #[must_use]
    pub fn get(&self, id: NodeId) -> VersionedAttr {
        self.records[id.index()]
    }

    /// Mutates a node's attributes in place and bumps its version;
    /// returns the new version.
    pub fn update<F>(&mut self, id: NodeId, mutate: F) -> u64
    where
        F: FnOnce(&mut FileAttr),
    {
        let rec = &mut self.records[id.index()];
        mutate(&mut rec.attr);
        rec.version += 1;
        rec.version
    }

    /// Applies a replica record if it is newer; returns whether it was
    /// applied. This is the convergence rule replicas use after a
    /// global-layer commit.
    pub fn apply_if_newer(&mut self, id: NodeId, incoming: VersionedAttr) -> bool {
        let rec = &mut self.records[id.index()];
        if incoming.version > rec.version {
            *rec = incoming;
            true
        } else {
            false
        }
    }

    /// Walks the root-to-`node` chain checking traversal permission on
    /// every ancestor and read permission on the target — the POSIX check
    /// the paper's Sec. I invokes to motivate locality.
    #[must_use]
    pub fn permission_walk(&self, tree: &NamespaceTree, node: NodeId, uid: u32, gid: u32) -> bool {
        for anc in tree.ancestors(node) {
            if !self.records[anc.index()].attr.allows_traversal(uid, gid) {
                return false;
            }
        }
        let target = self.records[node.index()].attr;
        let shift = if uid == 0 {
            return true;
        } else if uid == target.uid {
            6
        } else if gid == target.gid {
            3
        } else {
            0
        };
        target.mode >> shift & 0o4 == 0o4
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    fn tree_with_file() -> (NamespaceTree, NodeId, NodeId) {
        let mut t = NamespaceTree::new();
        let d = t.create(t.root(), "d", NodeKind::Directory).unwrap();
        let f = t.create(d, "f", NodeKind::File).unwrap();
        (t, d, f)
    }

    #[test]
    fn directories_get_executable_defaults() {
        let (t, d, f) = tree_with_file();
        let attrs = AttrTable::new(&t);
        assert_eq!(attrs.get(d).attr.mode, 0o755);
        assert_eq!(attrs.get(f).attr.mode, 0o644);
    }

    #[test]
    fn updates_bump_versions_monotonically() {
        let (t, _, f) = tree_with_file();
        let mut attrs = AttrTable::new(&t);
        let v1 = attrs.update(f, |a| a.size = 1);
        let v2 = attrs.update(f, |a| a.mtime = 99);
        assert!(v2 > v1);
        assert_eq!(attrs.get(f).attr.size, 1);
        assert_eq!(attrs.get(f).attr.mtime, 99);
    }

    #[test]
    fn replica_convergence_is_version_gated() {
        let (t, _, f) = tree_with_file();
        let mut primary = AttrTable::new(&t);
        let mut replica = AttrTable::new(&t);
        primary.update(f, |a| a.size = 7);
        let record = primary.get(f);
        assert!(replica.apply_if_newer(f, record));
        assert_eq!(replica.get(f).attr.size, 7);
        // Re-applying the same version is a no-op; older never wins.
        assert!(!replica.apply_if_newer(f, record));
        replica.update(f, |a| a.size = 8);
        assert!(!replica.apply_if_newer(f, record));
        assert_eq!(replica.get(f).attr.size, 8);
    }

    #[test]
    fn permission_walk_requires_every_ancestor() {
        let (t, d, f) = tree_with_file();
        let mut attrs = AttrTable::new(&t);
        assert!(
            attrs.permission_walk(&t, f, 1000, 1000),
            "defaults are world-readable"
        );
        // Lock the directory: no world execute.
        attrs.update(d, |a| a.mode = 0o700);
        assert!(!attrs.permission_walk(&t, f, 1000, 1000));
        assert!(attrs.permission_walk(&t, f, 0, 0), "root bypasses");
        // The directory owner can still traverse.
        attrs.update(d, |a| a.uid = 1000);
        assert!(attrs.permission_walk(&t, f, 1000, 1000));
    }

    #[test]
    fn group_permissions_apply() {
        let (t, _, f) = tree_with_file();
        let mut attrs = AttrTable::new(&t);
        attrs.update(f, |a| {
            a.mode = 0o040; // group-readable only
            a.uid = 1;
            a.gid = 50;
        });
        assert!(attrs.permission_walk(&t, f, 2, 50));
        assert!(!attrs.permission_walk(&t, f, 2, 51));
    }

    #[test]
    fn resize_for_covers_new_nodes() {
        let (mut t, d, _) = tree_with_file();
        let mut attrs = AttrTable::new(&t);
        let extra = t.create(d, "extra", NodeKind::File).unwrap();
        attrs.resize_for(&t);
        assert_eq!(attrs.get(extra).version, 0);
    }
}
