//! Convenience builder for assembling trees from path strings.

use crate::error::TreeError;
use crate::node::{NodeId, NodeKind};
use crate::path::NsPath;
use crate::tree::NamespaceTree;

/// Incrementally builds a [`NamespaceTree`] from absolute path strings,
/// creating intermediate directories on demand.
///
/// # Example
///
/// ```
/// use d2tree_namespace::TreeBuilder;
///
/// # fn main() -> Result<(), d2tree_namespace::TreeError> {
/// let mut b = TreeBuilder::new();
/// b.file("/var/log/syslog")?;
/// b.file("/var/log/auth.log")?;
/// b.dir("/var/tmp")?;
/// let tree = b.build();
/// assert_eq!(tree.file_count(), 2);
/// assert_eq!(tree.max_depth(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TreeBuilder {
    tree: NamespaceTree,
}

impl TreeBuilder {
    /// Creates a builder holding an empty tree (just the root).
    #[must_use]
    pub fn new() -> Self {
        TreeBuilder {
            tree: NamespaceTree::new(),
        }
    }

    /// Ensures a file exists at `path`, creating intermediate directories.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`TreeError`] if the path is malformed or
    /// conflicts with existing nodes of a different kind.
    pub fn file(&mut self, path: &str) -> Result<NodeId, TreeError> {
        let p: NsPath = path.parse()?;
        self.tree.create_path(&p, NodeKind::File)
    }

    /// Ensures a directory exists at `path`, creating intermediates.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`TreeError`] if the path is malformed or
    /// conflicts with existing nodes of a different kind.
    pub fn dir(&mut self, path: &str) -> Result<NodeId, TreeError> {
        let p: NsPath = path.parse()?;
        self.tree.create_path(&p, NodeKind::Directory)
    }

    /// Adds many files at once.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first failure.
    pub fn files<I, S>(&mut self, paths: I) -> Result<(), TreeError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for p in paths {
            self.file(p.as_ref())?;
        }
        Ok(())
    }

    /// A view of the tree built so far.
    #[must_use]
    pub fn tree(&self) -> &NamespaceTree {
        &self.tree
    }

    /// Finishes building and returns the tree.
    #[must_use]
    pub fn build(self) -> NamespaceTree {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_shared_prefixes_once() {
        let mut b = TreeBuilder::new();
        b.files(["/a/b/one", "/a/b/two", "/a/c/three"]).unwrap();
        let t = b.build();
        assert_eq!(t.file_count(), 3);
        assert_eq!(t.directory_count(), 4); // root, a, b, c
    }

    #[test]
    fn kind_conflict_is_an_error() {
        let mut b = TreeBuilder::new();
        b.file("/a/b").unwrap();
        assert!(b.dir("/a/b").is_err());
        assert!(b.file("/a/b/c").is_err()); // b is a file
    }

    #[test]
    fn tree_view_matches_build() {
        let mut b = TreeBuilder::new();
        b.file("/x").unwrap();
        assert_eq!(b.tree().file_count(), 1);
        assert_eq!(b.build().file_count(), 1);
    }
}
