//! Per-node access popularity (Def. 2 of the paper).
//!
//! Every node carries an *individual* popularity `p'_j` (how often the node
//! itself is the target of an operation). Its *total* popularity `p_j` adds
//! the popularity flowing through it from its whole subtree, because a
//! POSIX pathname traversal touches every ancestor of the target.
//!
//! The paper's Def. 2 writes the roll-up over direct children's individual
//! popularity only; the surrounding text ("the overall access popularity
//! from its children passing by this node") and the traversal semantics it
//! models require the full recursive roll-up, which is what we implement:
//! `p_j = p'_j + Σ_{c ∈ children(j)} p_c`.

use serde::{Deserialize, Serialize};

use crate::node::NodeId;
use crate::tree::NamespaceTree;

/// Dense per-node popularity table.
///
/// Indexed by [`NodeId::index`]; size it with
/// [`NamespaceTree::arena_size`]. Totals are cached and recomputed by
/// [`rollup`](Popularity::rollup) after individual counts change.
///
/// # Example
///
/// ```
/// use d2tree_namespace::{NamespaceTree, NodeKind, Popularity};
///
/// # fn main() -> Result<(), d2tree_namespace::TreeError> {
/// let mut tree = NamespaceTree::new();
/// let d = tree.create(tree.root(), "d", NodeKind::Directory)?;
/// let f = tree.create(d, "f", NodeKind::File)?;
///
/// let mut pop = Popularity::new(&tree);
/// pop.record(f, 10.0);
/// pop.record(d, 2.0);
/// pop.rollup(&tree);
/// assert_eq!(pop.total(d), 12.0); // own 2 + child 10
/// assert_eq!(pop.total(tree.root()), 12.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Popularity {
    individual: Vec<f64>,
    total: Vec<f64>,
    rolled_up: bool,
}

impl Popularity {
    /// Creates a zeroed table sized for `tree`.
    #[must_use]
    pub fn new(tree: &NamespaceTree) -> Self {
        let n = tree.arena_size();
        Popularity {
            individual: vec![0.0; n],
            total: vec![0.0; n],
            rolled_up: true,
        }
    }

    /// Grows the table to cover nodes created after the table was built.
    pub fn resize_for(&mut self, tree: &NamespaceTree) {
        let n = tree.arena_size();
        if n > self.individual.len() {
            self.individual.resize(n, 0.0);
            self.total.resize(n, 0.0);
        }
    }

    /// Adds `weight` accesses to the node's individual popularity.
    ///
    /// # Panics
    ///
    /// Panics if the id is outside the table; call
    /// [`resize_for`](Self::resize_for) after creating nodes.
    pub fn record(&mut self, id: NodeId, weight: f64) {
        self.individual[id.index()] += weight;
        self.rolled_up = false;
    }

    /// Overwrites the node's individual popularity.
    pub fn set_individual(&mut self, id: NodeId, weight: f64) {
        self.individual[id.index()] = weight;
        self.rolled_up = false;
    }

    /// The node's individual popularity `p'_j`.
    #[must_use]
    pub fn individual(&self, id: NodeId) -> f64 {
        self.individual[id.index()]
    }

    /// The node's total popularity `p_j` as of the last
    /// [`rollup`](Self::rollup).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if individual counts changed since the last
    /// roll-up.
    #[must_use]
    pub fn total(&self, id: NodeId) -> f64 {
        debug_assert!(
            self.rolled_up,
            "call Popularity::rollup before reading totals"
        );
        self.total[id.index()]
    }

    /// Whether cached totals are in sync with the individual counts.
    #[must_use]
    pub fn is_rolled_up(&self) -> bool {
        self.rolled_up
    }

    /// Recomputes all totals bottom-up in `O(n)`.
    ///
    /// Processing order is deepest-first so parents always see final child
    /// totals, regardless of how subtrees were moved around.
    pub fn rollup(&mut self, tree: &NamespaceTree) {
        self.resize_for(tree);
        self.total.copy_from_slice(&self.individual);
        // Bucket nodes by depth, then accumulate child into parent from the
        // deepest level upwards.
        let mut depth = vec![0usize; tree.arena_size()];
        let mut by_depth: Vec<Vec<NodeId>> = Vec::new();
        for id in tree.descendants(tree.root()) {
            let d = match tree.node(id).and_then(|n| n.parent()) {
                Some(p) => depth[p.index()] + 1,
                None => 0,
            };
            depth[id.index()] = d;
            if by_depth.len() <= d {
                by_depth.resize_with(d + 1, Vec::new);
            }
            by_depth[d].push(id);
        }
        for level in by_depth.iter().rev() {
            for &id in level {
                if let Some(p) = tree.node(id).and_then(|n| n.parent()) {
                    self.total[p.index()] += self.total[id.index()];
                }
            }
        }
        self.rolled_up = true;
    }

    /// Sum of all individual popularities (= total popularity of the root
    /// after a roll-up, Eq. 5 of the paper).
    #[must_use]
    pub fn sum_individual(&self) -> f64 {
        self.individual.iter().sum()
    }

    /// Multiplies every individual popularity by `factor`.
    ///
    /// This is the decay step of the paper's dynamic adjustment: access
    /// counters "decay over time" so stale hotness fades.
    pub fn decay(&mut self, factor: f64) {
        for v in &mut self.individual {
            *v *= factor;
        }
        self.rolled_up = false;
    }

    /// Number of slots in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.individual.len()
    }

    /// Whether the table has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.individual.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    fn chain() -> (NamespaceTree, Vec<NodeId>) {
        let mut t = NamespaceTree::new();
        let mut ids = vec![t.root()];
        for name in ["a", "b", "c"] {
            let id = t
                .create(*ids.last().unwrap(), name, NodeKind::Directory)
                .unwrap();
            ids.push(id);
        }
        (t, ids)
    }

    #[test]
    fn rollup_accumulates_along_chain() {
        let (t, ids) = chain();
        let mut pop = Popularity::new(&t);
        pop.record(ids[3], 5.0);
        pop.record(ids[1], 1.0);
        pop.rollup(&t);
        assert_eq!(pop.total(ids[3]), 5.0);
        assert_eq!(pop.total(ids[2]), 5.0);
        assert_eq!(pop.total(ids[1]), 6.0);
        assert_eq!(pop.total(ids[0]), 6.0);
        assert_eq!(pop.sum_individual(), 6.0);
    }

    #[test]
    fn rollup_correct_after_subtree_move() {
        let mut t = NamespaceTree::new();
        let a = t.create(t.root(), "a", NodeKind::Directory).unwrap();
        let f = t.create(a, "f", NodeKind::File).unwrap();
        // `b` is created after `a`, then `a` is moved under `b`: parent ids
        // no longer precede child ids.
        let b = t.create(t.root(), "b", NodeKind::Directory).unwrap();
        t.move_subtree(a, b).unwrap();

        let mut pop = Popularity::new(&t);
        pop.record(f, 3.0);
        pop.rollup(&t);
        assert_eq!(pop.total(b), 3.0);
        assert_eq!(pop.total(t.root()), 3.0);
    }

    #[test]
    fn decay_scales_everything() {
        let (t, ids) = chain();
        let mut pop = Popularity::new(&t);
        pop.record(ids[3], 8.0);
        pop.decay(0.5);
        pop.rollup(&t);
        assert_eq!(pop.individual(ids[3]), 4.0);
        assert_eq!(pop.total(ids[0]), 4.0);
    }

    #[test]
    fn resize_for_covers_new_nodes() {
        let (mut t, ids) = chain();
        let mut pop = Popularity::new(&t);
        let extra = t.create(ids[3], "x", NodeKind::File).unwrap();
        pop.resize_for(&t);
        pop.record(extra, 2.0);
        pop.rollup(&t);
        assert_eq!(pop.total(ids[0]), 2.0);
    }

    #[test]
    fn set_individual_overwrites() {
        let (t, ids) = chain();
        let mut pop = Popularity::new(&t);
        pop.record(ids[2], 7.0);
        pop.set_individual(ids[2], 1.0);
        pop.rollup(&t);
        assert_eq!(pop.total(ids[0]), 1.0);
    }
}
