//! Slash-separated namespace paths.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::TreeError;

/// An absolute, normalised namespace path (`/a/b/c`).
///
/// `NsPath` is a plain sequence of name components; unlike `std::path::Path`
/// it has no platform semantics, no `.`/`..` and no non-UTF-8 names, which is
/// all a metadata trace needs. The root path is the empty component list and
/// displays as `/`.
///
/// # Example
///
/// ```
/// use d2tree_namespace::NsPath;
///
/// let p: NsPath = "/var/log/syslog".parse()?;
/// assert_eq!(p.depth(), 3);
/// assert_eq!(p.components().last(), Some("syslog"));
/// assert_eq!(p.parent().unwrap().to_string(), "/var/log");
/// # Ok::<(), d2tree_namespace::TreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct NsPath {
    components: Vec<Box<str>>,
}

impl NsPath {
    /// The root path `/`.
    #[must_use]
    pub fn root() -> Self {
        NsPath {
            components: Vec::new(),
        }
    }

    /// Builds a path from an iterator of components.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InvalidPath`] if any component is empty or
    /// contains `/`.
    pub fn from_components<I, S>(components: I) -> Result<Self, TreeError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = Vec::new();
        for c in components {
            let c = c.as_ref();
            if c.is_empty() || c.contains('/') {
                return Err(TreeError::InvalidPath(c.to_owned()));
            }
            out.push(Box::from(c));
        }
        Ok(NsPath { components: out })
    }

    /// Number of components; the root has depth 0.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// Whether this is the root path.
    #[must_use]
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// Iterates over the components from the root downwards.
    pub fn components(&self) -> impl DoubleEndedIterator<Item = &str> + ExactSizeIterator {
        self.components.iter().map(AsRef::as_ref)
    }

    /// The final component, or `None` for the root.
    #[must_use]
    pub fn file_name(&self) -> Option<&str> {
        self.components.last().map(AsRef::as_ref)
    }

    /// The parent path, or `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<NsPath> {
        if self.components.is_empty() {
            None
        } else {
            Some(NsPath {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// Returns a new path with `name` appended.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InvalidPath`] if `name` is empty or contains `/`.
    pub fn join(&self, name: &str) -> Result<NsPath, TreeError> {
        if name.is_empty() || name.contains('/') {
            return Err(TreeError::InvalidPath(name.to_owned()));
        }
        let mut components = self.components.clone();
        components.push(Box::from(name));
        Ok(NsPath { components })
    }

    /// Whether `self` is `other` or one of its ancestors.
    ///
    /// ```
    /// use d2tree_namespace::NsPath;
    /// let a: NsPath = "/usr".parse()?;
    /// let b: NsPath = "/usr/lib".parse()?;
    /// assert!(a.is_prefix_of(&b));
    /// assert!(!b.is_prefix_of(&a));
    /// # Ok::<(), d2tree_namespace::TreeError>(())
    /// ```
    #[must_use]
    pub fn is_prefix_of(&self, other: &NsPath) -> bool {
        self.components.len() <= other.components.len()
            && self
                .components
                .iter()
                .zip(&other.components)
                .all(|(a, b)| a == b)
    }
}

impl FromStr for NsPath {
    type Err = TreeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s
            .strip_prefix('/')
            .ok_or_else(|| TreeError::InvalidPath(s.to_owned()))?;
        if trimmed.is_empty() {
            return Ok(NsPath::root());
        }
        NsPath::from_components(trimmed.split('/'))
    }
}

impl fmt::Display for NsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return f.write_str("/");
        }
        for c in &self.components {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_displays_roundtrip() {
        for s in ["/", "/a", "/a/b/c", "/home/alice/.config"] {
            let p: NsPath = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn rejects_relative_and_malformed() {
        assert!("a/b".parse::<NsPath>().is_err());
        assert!("".parse::<NsPath>().is_err());
        assert!("/a//b".parse::<NsPath>().is_err());
    }

    #[test]
    fn join_and_parent_are_inverses() {
        let p: NsPath = "/x/y".parse().unwrap();
        let q = p.join("z").unwrap();
        assert_eq!(q.to_string(), "/x/y/z");
        assert_eq!(q.parent().unwrap(), p);
    }

    #[test]
    fn join_rejects_bad_component() {
        let p = NsPath::root();
        assert!(p.join("").is_err());
        assert!(p.join("a/b").is_err());
    }

    #[test]
    fn root_properties() {
        let r = NsPath::root();
        assert!(r.is_root());
        assert_eq!(r.depth(), 0);
        assert_eq!(r.parent(), None);
        assert_eq!(r.file_name(), None);
        assert_eq!(r.to_string(), "/");
    }

    #[test]
    fn prefix_relation() {
        let root = NsPath::root();
        let a: NsPath = "/a".parse().unwrap();
        let ab: NsPath = "/a/b".parse().unwrap();
        let ac: NsPath = "/a/c".parse().unwrap();
        assert!(root.is_prefix_of(&ab));
        assert!(a.is_prefix_of(&ab));
        assert!(a.is_prefix_of(&a));
        assert!(!ab.is_prefix_of(&ac));
    }
}
