//! Slash-separated namespace paths.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::TreeError;

/// An absolute, normalised namespace path (`/a/b/c`).
///
/// `NsPath` is a plain sequence of name components; unlike `std::path::Path`
/// it has no platform semantics, no `.`/`..` and no non-UTF-8 names, which is
/// all a metadata trace needs. The root path is the empty component list and
/// displays as `/`.
///
/// Components are packed into a single `/`-separated text buffer plus an
/// offset list, so cloning, [`join`](NsPath::join) and
/// [`parent`](NsPath::parent) cost two allocations regardless of depth —
/// the old one-`Box<str>`-per-component layout allocated per component on
/// every clone, which dominated deep-path query costs.
///
/// # Example
///
/// ```
/// use d2tree_namespace::NsPath;
///
/// let p: NsPath = "/var/log/syslog".parse()?;
/// assert_eq!(p.depth(), 3);
/// assert_eq!(p.components().last(), Some("syslog"));
/// assert_eq!(p.parent().unwrap().to_string(), "/var/log");
/// # Ok::<(), d2tree_namespace::TreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct NsPath {
    /// Components joined with `/`, no leading or trailing slash; empty for
    /// the root.
    text: String,
    /// Byte offset of each component's end in `text`; component `i` spans
    /// `(i == 0 ? 0 : ends[i-1] + 1) .. ends[i]`.
    ends: Vec<u32>,
}

impl NsPath {
    /// The root path `/`.
    #[must_use]
    pub fn root() -> Self {
        NsPath {
            text: String::new(),
            ends: Vec::new(),
        }
    }

    /// Builds a path from an iterator of components.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InvalidPath`] if any component is empty or
    /// contains `/`.
    pub fn from_components<I, S>(components: I) -> Result<Self, TreeError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut text = String::new();
        let mut ends = Vec::new();
        for c in components {
            let c = c.as_ref();
            if c.is_empty() || c.contains('/') {
                return Err(TreeError::InvalidPath(c.to_owned()));
            }
            if !text.is_empty() {
                text.push('/');
            }
            text.push_str(c);
            ends.push(u32::try_from(text.len()).expect("path shorter than 4 GiB"));
        }
        Ok(NsPath { text, ends })
    }

    fn component(&self, i: usize) -> &str {
        let start = if i == 0 {
            0
        } else {
            self.ends[i - 1] as usize + 1
        };
        &self.text[start..self.ends[i] as usize]
    }

    /// Number of components; the root has depth 0.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.ends.len()
    }

    /// Whether this is the root path.
    #[must_use]
    pub fn is_root(&self) -> bool {
        self.ends.is_empty()
    }

    /// Iterates over the components from the root downwards.
    ///
    /// The components are borrowed slices of the path's internal buffer —
    /// no allocation.
    pub fn components(&self) -> Components<'_> {
        Components {
            path: self,
            front: 0,
            back: self.ends.len(),
        }
    }

    /// The final component, or `None` for the root.
    #[must_use]
    pub fn file_name(&self) -> Option<&str> {
        if self.ends.is_empty() {
            None
        } else {
            Some(self.component(self.ends.len() - 1))
        }
    }

    /// The parent path, or `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<NsPath> {
        let n = self.ends.len();
        if n == 0 {
            None
        } else if n == 1 {
            Some(NsPath::root())
        } else {
            Some(NsPath {
                text: self.text[..self.ends[n - 2] as usize].to_owned(),
                ends: self.ends[..n - 1].to_vec(),
            })
        }
    }

    /// Returns a new path with `name` appended.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InvalidPath`] if `name` is empty or contains `/`.
    pub fn join(&self, name: &str) -> Result<NsPath, TreeError> {
        if name.is_empty() || name.contains('/') {
            return Err(TreeError::InvalidPath(name.to_owned()));
        }
        let sep = usize::from(!self.text.is_empty());
        let mut text = String::with_capacity(self.text.len() + sep + name.len());
        text.push_str(&self.text);
        if sep == 1 {
            text.push('/');
        }
        text.push_str(name);
        let mut ends = Vec::with_capacity(self.ends.len() + 1);
        ends.extend_from_slice(&self.ends);
        ends.push(u32::try_from(text.len()).expect("path shorter than 4 GiB"));
        Ok(NsPath { text, ends })
    }

    /// Whether `self` is `other` or one of its ancestors.
    ///
    /// ```
    /// use d2tree_namespace::NsPath;
    /// let a: NsPath = "/usr".parse()?;
    /// let b: NsPath = "/usr/lib".parse()?;
    /// assert!(a.is_prefix_of(&b));
    /// assert!(!b.is_prefix_of(&a));
    /// # Ok::<(), d2tree_namespace::TreeError>(())
    /// ```
    #[must_use]
    pub fn is_prefix_of(&self, other: &NsPath) -> bool {
        self.depth() <= other.depth()
            && self
                .components()
                .zip(other.components())
                .all(|(a, b)| a == b)
    }
}

// Ordering compares component sequences (the old derived order on
// `Vec<Box<str>>`), which differs from byte order on the packed text:
// "/a.b" sorts after "/a/b" component-wise because "a" < "a.b", while
// '.' < '/' in bytes. Ranked CLI output relies on the component order.
impl Ord for NsPath {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.components().cmp(other.components())
    }
}

impl PartialOrd for NsPath {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Borrowing component iterator of an [`NsPath`]; see
/// [`NsPath::components`].
#[derive(Debug, Clone)]
pub struct Components<'a> {
    path: &'a NsPath,
    front: usize,
    back: usize,
}

impl<'a> Iterator for Components<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        if self.front >= self.back {
            return None;
        }
        let c = self.path.component(self.front);
        self.front += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl DoubleEndedIterator for Components<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        if self.front >= self.back {
            return None;
        }
        self.back -= 1;
        Some(self.path.component(self.back))
    }
}

impl ExactSizeIterator for Components<'_> {}

impl FromStr for NsPath {
    type Err = TreeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s
            .strip_prefix('/')
            .ok_or_else(|| TreeError::InvalidPath(s.to_owned()))?;
        if trimmed.is_empty() {
            return Ok(NsPath::root());
        }
        NsPath::from_components(trimmed.split('/'))
    }
}

impl fmt::Display for NsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ends.is_empty() {
            return f.write_str("/");
        }
        for c in self.components() {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_displays_roundtrip() {
        for s in ["/", "/a", "/a/b/c", "/home/alice/.config"] {
            let p: NsPath = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn rejects_relative_and_malformed() {
        assert!("a/b".parse::<NsPath>().is_err());
        assert!("".parse::<NsPath>().is_err());
        assert!("/a//b".parse::<NsPath>().is_err());
    }

    #[test]
    fn join_and_parent_are_inverses() {
        let p: NsPath = "/x/y".parse().unwrap();
        let q = p.join("z").unwrap();
        assert_eq!(q.to_string(), "/x/y/z");
        assert_eq!(q.parent().unwrap(), p);
    }

    #[test]
    fn join_rejects_bad_component() {
        let p = NsPath::root();
        assert!(p.join("").is_err());
        assert!(p.join("a/b").is_err());
    }

    #[test]
    fn root_properties() {
        let r = NsPath::root();
        assert!(r.is_root());
        assert_eq!(r.depth(), 0);
        assert_eq!(r.parent(), None);
        assert_eq!(r.file_name(), None);
        assert_eq!(r.to_string(), "/");
    }

    #[test]
    fn prefix_relation() {
        let root = NsPath::root();
        let a: NsPath = "/a".parse().unwrap();
        let ab: NsPath = "/a/b".parse().unwrap();
        let ac: NsPath = "/a/c".parse().unwrap();
        assert!(root.is_prefix_of(&ab));
        assert!(a.is_prefix_of(&ab));
        assert!(a.is_prefix_of(&a));
        assert!(!ab.is_prefix_of(&ac));
    }

    #[test]
    fn components_iterate_both_ends_with_exact_size() {
        let p: NsPath = "/a/bb/ccc".parse().unwrap();
        let fwd: Vec<&str> = p.components().collect();
        assert_eq!(fwd, vec!["a", "bb", "ccc"]);
        let rev: Vec<&str> = p.components().rev().collect();
        assert_eq!(rev, vec!["ccc", "bb", "a"]);
        let mut it = p.components();
        assert_eq!(it.len(), 3);
        assert_eq!(it.next(), Some("a"));
        assert_eq!(it.next_back(), Some("ccc"));
        assert_eq!(it.len(), 1);
        assert_eq!(it.next(), Some("bb"));
        assert_eq!(it.next(), None);
        assert_eq!(it.next_back(), None);
    }

    #[test]
    fn ordering_is_component_wise() {
        let dot: NsPath = "/a.b".parse().unwrap();
        let slash: NsPath = "/a/b".parse().unwrap();
        // Component-wise: ["a.b"] vs ["a", "b"] — "a" < "a.b", so /a/b
        // sorts first even though '.' < '/' in raw bytes.
        assert!(slash < dot);
        let a: NsPath = "/a".parse().unwrap();
        let ab: NsPath = "/a/b".parse().unwrap();
        assert!(a < ab);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn first_component_after_parent_of_deep_path() {
        let p: NsPath = "/x/y/z".parse().unwrap();
        let parent = p.parent().unwrap();
        assert_eq!(parent.to_string(), "/x/y");
        assert_eq!(parent.components().collect::<Vec<_>>(), vec!["x", "y"]);
        assert_eq!(parent.parent().unwrap().to_string(), "/x");
        assert_eq!(parent.parent().unwrap().parent().unwrap(), NsPath::root());
    }
}
