//! Tree traversal iterators.

use crate::node::NodeId;
use crate::tree::NamespaceTree;

/// Iterator over the strict ancestors of a node, parent first, root last.
///
/// Produced by [`NamespaceTree::ancestors`].
#[derive(Debug, Clone)]
pub struct Ancestors<'a> {
    tree: &'a NamespaceTree,
    next: Option<NodeId>,
}

impl<'a> Ancestors<'a> {
    pub(crate) fn new(tree: &'a NamespaceTree, start: NodeId) -> Self {
        let next = tree.node(start).and_then(|n| n.parent());
        Ancestors { tree, next }
    }
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.tree.node(cur).and_then(|n| n.parent());
        Some(cur)
    }
}

/// Allocation-free iterator over the root-to-node chain, walked upward:
/// the node itself first, then its parent, up to the root.
///
/// This visits exactly the ids of
/// [`NamespaceTree::path_from_root`](crate::NamespaceTree::path_from_root)
/// in reverse, without materialising the chain. For a tombstoned start
/// node it yields only the node itself, mirroring the collected chain.
/// Produced by [`NamespaceTree::chain_up`](crate::NamespaceTree::chain_up).
#[derive(Debug, Clone)]
pub struct ChainUp<'a> {
    tree: &'a NamespaceTree,
    next: Option<NodeId>,
}

impl<'a> ChainUp<'a> {
    pub(crate) fn new(tree: &'a NamespaceTree, start: NodeId) -> Self {
        ChainUp {
            tree,
            next: Some(start),
        }
    }
}

impl Iterator for ChainUp<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.tree.node(cur).and_then(|n| n.parent());
        Some(cur)
    }
}

/// Pre-order depth-first iterator over a subtree, including its root.
///
/// Children are visited in name order, so traversal order is deterministic.
/// Produced by [`NamespaceTree::descendants`].
#[derive(Debug, Clone)]
pub struct Descendants<'a> {
    tree: &'a NamespaceTree,
    stack: Vec<NodeId>,
}

impl<'a> Descendants<'a> {
    pub(crate) fn new(tree: &'a NamespaceTree, start: NodeId) -> Self {
        let stack = if tree.contains(start) {
            vec![start]
        } else {
            Vec::new()
        };
        Descendants { tree, stack }
    }
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.stack.pop()?;
        if let Some(node) = self.tree.node(cur) {
            // Push in reverse name order so name order pops first.
            let mut kids: Vec<NodeId> = node.children().map(|(_, id)| id).collect();
            kids.reverse();
            self.stack.extend(kids);
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use crate::{NamespaceTree, NodeKind};

    #[test]
    fn ancestors_of_root_is_empty() {
        let t = NamespaceTree::new();
        assert_eq!(t.ancestors(t.root()).count(), 0);
    }

    #[test]
    fn descendants_of_missing_node_is_empty() {
        let mut t = NamespaceTree::new();
        let a = t.create(t.root(), "a", NodeKind::Directory).unwrap();
        t.remove_subtree(a).unwrap();
        assert_eq!(t.descendants(a).count(), 0);
    }

    #[test]
    fn descendants_visit_children_in_name_order() {
        let mut t = NamespaceTree::new();
        let d = t.create(t.root(), "d", NodeKind::Directory).unwrap();
        let z = t.create(d, "z", NodeKind::File).unwrap();
        let a = t.create(d, "a", NodeKind::File).unwrap();
        let m = t.create(d, "m", NodeKind::File).unwrap();
        let order: Vec<_> = t.descendants(d).collect();
        assert_eq!(order, vec![d, a, m, z]);
    }

    #[test]
    fn preorder_parent_before_children() {
        let mut t = NamespaceTree::new();
        let a = t.create(t.root(), "a", NodeKind::Directory).unwrap();
        let b = t.create(a, "b", NodeKind::Directory).unwrap();
        let c = t.create(b, "c", NodeKind::File).unwrap();
        let order: Vec<_> = t.descendants(t.root()).collect();
        let pos = |x| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(t.root()) < pos(a));
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
    }
}
