//! Node identity and payload types.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Stable identifier of a node inside a [`NamespaceTree`](crate::NamespaceTree).
///
/// Ids are arena indices: they are never reused, remain valid across
/// mutations of other nodes, and order follows creation order. The root is
/// always [`NodeId::ROOT`].
///
/// # Example
///
/// ```
/// use d2tree_namespace::{NamespaceTree, NodeId};
///
/// let tree = NamespaceTree::new();
/// assert_eq!(tree.root(), NodeId::ROOT);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The id of the root directory of every tree.
    pub const ROOT: NodeId = NodeId(0);

    /// Returns the raw arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw arena index.
    ///
    /// Intended for dense per-node side tables (popularity, placement); the
    /// caller is responsible for the index referring to a live node of the
    /// intended tree.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Whether a node is a directory (may hold children) or a file (leaf).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An internal node that can hold children.
    Directory,
    /// A leaf node.
    File,
}

impl NodeKind {
    /// Returns `true` for [`NodeKind::Directory`].
    #[must_use]
    pub fn is_directory(self) -> bool {
        matches!(self, NodeKind::Directory)
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Directory => f.write_str("directory"),
            NodeKind::File => f.write_str("file"),
        }
    }
}

/// A single metadata node: name, kind, parent link and (for directories) a
/// name-ordered child map.
///
/// Children are kept in a [`BTreeMap`] so traversal order is deterministic,
/// which keeps every downstream experiment reproducible under a fixed seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    pub(crate) name: Box<str>,
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: BTreeMap<Box<str>, NodeId>,
    pub(crate) alive: bool,
}

impl Node {
    /// The node's own name component (empty string for the root).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's kind.
    #[must_use]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The parent id, or `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Number of live children.
    #[must_use]
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    /// Iterates over `(name, id)` pairs of live children in name order.
    pub fn children(&self) -> impl Iterator<Item = (&str, NodeId)> + '_ {
        self.children.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// Looks up a child by name.
    #[must_use]
    pub fn child(&self, name: &str) -> Option<NodeId> {
        self.children.get(name).copied()
    }

    /// Whether the node is still part of the tree (not removed).
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn root_is_index_zero() {
        assert_eq!(NodeId::ROOT.index(), 0);
    }

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Directory.is_directory());
        assert!(!NodeKind::File.is_directory());
        assert_eq!(NodeKind::File.to_string(), "file");
    }

    #[test]
    fn node_ids_order_by_creation() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }
}
