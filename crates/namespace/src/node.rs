//! Node identity and payload types.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::intern::{Sym, SymbolTable};

/// Stable identifier of a node inside a [`NamespaceTree`](crate::NamespaceTree).
///
/// Ids are arena indices: they are never reused, remain valid across
/// mutations of other nodes, and order follows creation order. The root is
/// always [`NodeId::ROOT`].
///
/// # Example
///
/// ```
/// use d2tree_namespace::{NamespaceTree, NodeId};
///
/// let tree = NamespaceTree::new();
/// assert_eq!(tree.root(), NodeId::ROOT);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The id of the root directory of every tree.
    pub const ROOT: NodeId = NodeId(0);

    /// Returns the raw arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw arena index.
    ///
    /// Intended for dense per-node side tables (popularity, placement); the
    /// caller is responsible for the index referring to a live node of the
    /// intended tree.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Whether a node is a directory (may hold children) or a file (leaf).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An internal node that can hold children.
    Directory,
    /// A leaf node.
    File,
}

impl NodeKind {
    /// Returns `true` for [`NodeKind::Directory`].
    #[must_use]
    pub fn is_directory(self) -> bool {
        matches!(self, NodeKind::Directory)
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Directory => f.write_str("directory"),
            NodeKind::File => f.write_str("file"),
        }
    }
}

/// A directory's children: `(Sym, NodeId)` entries kept sorted by the
/// child's *name string*, so iteration order is identical to the old
/// `BTreeMap<Box<str>, NodeId>` representation (every seeded experiment
/// depends on that traversal order) while lookups compare interned `u32`
/// handles instead of strings.
///
/// Mutations need the owning tree's [`SymbolTable`] to find the sorted
/// insertion point, so they live on [`NamespaceTree`](crate::NamespaceTree).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct ChildMap {
    entries: Vec<(Sym, NodeId)>,
}

impl ChildMap {
    pub(crate) fn new() -> Self {
        ChildMap {
            entries: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Membership/lookup by interned symbol: a linear `u32` scan. Typical
    /// fanouts are small and the entries are contiguous, so this beats
    /// pointer-chasing B-tree nodes by a wide margin.
    #[inline]
    pub(crate) fn get(&self, sym: Sym) -> Option<NodeId> {
        self.entries
            .iter()
            .find(|&&(s, _)| s == sym)
            .map(|&(_, id)| id)
    }

    /// Inserts keeping name order; the caller guarantees `sym` is absent.
    pub(crate) fn insert(&mut self, sym: Sym, id: NodeId, table: &SymbolTable) {
        let name = table.resolve(sym);
        let at = self
            .entries
            .partition_point(|&(s, _)| table.resolve(s) < name);
        self.entries.insert(at, (sym, id));
    }

    pub(crate) fn remove(&mut self, sym: Sym) -> Option<NodeId> {
        let at = self.entries.iter().position(|&(s, _)| s == sym)?;
        Some(self.entries.remove(at).1)
    }

    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }

    pub(crate) fn iter(&self) -> std::slice::Iter<'_, (Sym, NodeId)> {
        self.entries.iter()
    }
}

/// A single metadata node: name, kind, parent link and (for directories) a
/// name-ordered child map.
///
/// Children are keyed by interned [`Sym`] handles but kept sorted by name,
/// so traversal order is deterministic — which keeps every downstream
/// experiment reproducible under a fixed seed — while child lookup is a
/// contiguous `u32` scan instead of a string-keyed B-tree probe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    pub(crate) name: Box<str>,
    /// The interned handle for `name` in the owning tree's symbol table.
    pub(crate) sym: Sym,
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: ChildMap,
    pub(crate) alive: bool,
}

impl Node {
    /// The node's own name component (empty string for the root).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interned symbol of the node's name, valid in the owning tree's
    /// [`SymbolTable`](crate::SymbolTable).
    #[must_use]
    pub fn name_sym(&self) -> Sym {
        self.sym
    }

    /// The node's kind.
    #[must_use]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The parent id, or `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Number of live children.
    #[must_use]
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    /// Iterates over `(name_sym, id)` pairs of live children in name order.
    ///
    /// Resolve a symbol to its string with
    /// [`NamespaceTree::symbols`](crate::NamespaceTree::symbols) when the
    /// name itself is needed; traversals that only follow ids (the common
    /// case) pay nothing for it.
    pub fn children(&self) -> impl Iterator<Item = (Sym, NodeId)> + '_ {
        self.children.iter().copied()
    }

    /// Looks up a child by its interned name symbol.
    #[must_use]
    pub fn child_by_sym(&self, sym: Sym) -> Option<NodeId> {
        self.children.get(sym)
    }

    /// Whether the node is still part of the tree (not removed).
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn root_is_index_zero() {
        assert_eq!(NodeId::ROOT.index(), 0);
    }

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Directory.is_directory());
        assert!(!NodeKind::File.is_directory());
        assert_eq!(NodeKind::File.to_string(), "file");
    }

    #[test]
    fn node_ids_order_by_creation() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }

    #[test]
    fn child_map_keeps_name_order() {
        let mut table = SymbolTable::new();
        let mut map = ChildMap::new();
        for (i, name) in ["z", "a", "m"].iter().enumerate() {
            let sym = table.intern(name);
            map.insert(sym, NodeId::from_index(i + 1), &table);
        }
        let names: Vec<&str> = map.iter().map(|&(s, _)| table.resolve(s)).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
        let a = table.lookup("a").unwrap();
        assert_eq!(map.get(a), Some(NodeId::from_index(2)));
        assert_eq!(map.remove(a), Some(NodeId::from_index(2)));
        assert_eq!(map.get(a), None);
        assert_eq!(map.len(), 2);
    }
}
