//! Error type for namespace-tree operations.

use std::error::Error;
use std::fmt;

use crate::node::NodeId;

/// Errors produced by [`NamespaceTree`](crate::NamespaceTree) and
/// [`NsPath`](crate::NsPath) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// The referenced node does not exist or has been removed.
    NodeNotFound(NodeId),
    /// A child operation was attempted on a file.
    NotADirectory(NodeId),
    /// A sibling with the same name already exists.
    DuplicateName(String),
    /// The path string or component is malformed.
    InvalidPath(String),
    /// Moving a directory under one of its own descendants.
    MoveIntoDescendant {
        /// The subtree root being moved.
        subject: NodeId,
        /// The destination, which lies inside `subject`'s subtree.
        destination: NodeId,
    },
    /// The root cannot be removed, renamed or moved.
    RootImmutable,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::NodeNotFound(id) => write!(f, "node {id} not found"),
            TreeError::NotADirectory(id) => write!(f, "node {id} is not a directory"),
            TreeError::DuplicateName(name) => write!(f, "name {name:?} already exists"),
            TreeError::InvalidPath(p) => write!(f, "invalid path or component {p:?}"),
            TreeError::MoveIntoDescendant {
                subject,
                destination,
            } => {
                write!(
                    f,
                    "cannot move {subject} into its own descendant {destination}"
                )
            }
            TreeError::RootImmutable => f.write_str("the root node cannot be modified"),
        }
    }
}

impl Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_informative() {
        let msgs = [
            TreeError::NodeNotFound(NodeId::ROOT).to_string(),
            TreeError::NotADirectory(NodeId::ROOT).to_string(),
            TreeError::DuplicateName("x".into()).to_string(),
            TreeError::InvalidPath("a//b".into()).to_string(),
            TreeError::MoveIntoDescendant {
                subject: NodeId::ROOT,
                destination: NodeId::ROOT,
            }
            .to_string(),
            TreeError::RootImmutable.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase() || m.starts_with("cannot"));
        }
    }

    #[test]
    fn is_error_and_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<TreeError>();
    }
}
