//! Arena-backed filesystem namespace tree for metadata-management research.
//!
//! This crate provides the substrate every partitioning scheme in the D2-Tree
//! reproduction operates on: a POSIX-style namespace tree whose nodes are
//! files or directories, addressed by stable [`NodeId`]s, together with
//! per-node access popularity and the ancestor/descendant traversals that the
//! paper's locality metric (Def. 1) is built from.
//!
//! # Example
//!
//! ```
//! use d2tree_namespace::{NamespaceTree, NodeKind, NsPath};
//!
//! # fn main() -> Result<(), d2tree_namespace::TreeError> {
//! let mut tree = NamespaceTree::new();
//! let home = tree.create(tree.root(), "home", NodeKind::Directory)?;
//! let user = tree.create(home, "alice", NodeKind::Directory)?;
//! tree.create(user, "notes.txt", NodeKind::File)?;
//!
//! let path: NsPath = "/home/alice/notes.txt".parse()?;
//! let node = tree.resolve(&path).expect("path exists");
//! assert_eq!(tree.depth(node), 3);
//! assert_eq!(tree.path_of(node).to_string(), "/home/alice/notes.txt");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attrs;
mod builder;
mod error;
mod intern;
mod iter;
mod node;
mod path;
mod popularity;
mod tree;

pub use attrs::{AttrTable, FileAttr, VersionedAttr};
pub use builder::TreeBuilder;
pub use error::TreeError;
pub use intern::{Sym, SymbolTable};
pub use iter::{Ancestors, ChainUp, Descendants};
pub use node::{Node, NodeId, NodeKind};
pub use path::{Components, NsPath};
pub use popularity::Popularity;
pub use tree::NamespaceTree;
