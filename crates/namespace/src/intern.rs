//! Per-tree name interning.
//!
//! Every distinct name component is stored once in a [`SymbolTable`] and
//! referred to by a [`Sym`] — a dense `u32` handle. Child lookups then
//! cost one FNV-1a hash of the component plus `u32` equality probes
//! instead of repeated `BTreeMap<Box<str>>` string comparisons, and a
//! resolved path never re-hashes a component it has already seen.
//!
//! The table is an open-addressed, linearly probed hash set (hand-rolled
//! like `store/crc.rs`, no external hasher): `slots` maps a name hash to
//! a `Sym`, `names` owns the strings in insertion order so `Sym` doubles
//! as an index. Symbols are never removed — namespaces reuse a small
//! set of directory/file names heavily, so the table stays tiny relative
//! to the node arena and removal bookkeeping would cost more than it
//! frees.

use serde::{Deserialize, Serialize};

/// Interned name handle: an index into the owning tree's [`SymbolTable`].
///
/// `Sym`s are only meaningful relative to the table that produced them;
/// two trees may assign the same `Sym` to different names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Sym(pub(crate) u32);

impl Sym {
    /// The raw table index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

const EMPTY_SLOT: u32 = u32::MAX;

/// FNV-1a over a byte string — the same construction the store's CRC and
/// the trace digest use; deterministic across platforms and runs.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Open-addressed intern table mapping name components to [`Sym`]s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SymbolTable {
    /// Interned strings, indexed by `Sym`.
    names: Vec<Box<str>>,
    /// Open-addressed probe table holding `Sym` raw values or
    /// [`EMPTY_SLOT`]. Length is always a power of two.
    slots: Vec<u32>,
}

impl SymbolTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        SymbolTable {
            names: Vec::new(),
            slots: vec![EMPTY_SLOT; 16],
        }
    }

    /// Number of interned names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no name has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The string a symbol stands for.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this table.
    #[must_use]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Looks a name up without interning it; `None` means the name has
    /// never been seen, so no node anywhere in the tree carries it.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        let mask = self.slots.len() - 1;
        let mut i = (fnv1a(name.as_bytes()) as usize) & mask;
        loop {
            let raw = self.slots[i];
            if raw == EMPTY_SLOT {
                return None;
            }
            if self.names[raw as usize].as_ref() == name {
                return Some(Sym(raw));
            }
            i = (i + 1) & mask;
        }
    }

    /// Interns `name`, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(sym) = self.lookup(name) {
            return sym;
        }
        // Keep the load factor below 1/2 so probe chains stay short.
        if (self.names.len() + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let sym = Sym(u32::try_from(self.names.len()).expect("symbol count fits in u32"));
        self.names.push(Box::from(name));
        let mask = self.slots.len() - 1;
        let mut i = (fnv1a(name.as_bytes()) as usize) & mask;
        while self.slots[i] != EMPTY_SLOT {
            i = (i + 1) & mask;
        }
        self.slots[i] = sym.0;
        sym
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mask = new_len - 1;
        let mut slots = vec![EMPTY_SLOT; new_len];
        for (idx, name) in self.names.iter().enumerate() {
            let mut i = (fnv1a(name.as_bytes()) as usize) & mask;
            while slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            slots[i] = idx as u32;
        }
        self.slots = slots;
    }
}

impl Default for SymbolTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolves() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.resolve(a), "alpha");
        assert_eq!(t.resolve(b), "beta");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup("ghost"), None);
        assert!(t.is_empty());
        let s = t.intern("ghost");
        assert_eq!(t.lookup("ghost"), Some(s));
    }

    #[test]
    fn survives_growth_past_initial_capacity() {
        let mut t = SymbolTable::new();
        let syms: Vec<Sym> = (0..1000).map(|i| t.intern(&format!("name-{i}"))).collect();
        for (i, &s) in syms.iter().enumerate() {
            assert_eq!(t.resolve(s), format!("name-{i}"));
            assert_eq!(t.lookup(&format!("name-{i}")), Some(s));
        }
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn symbols_are_dense_insertion_ordered_indices() {
        let mut t = SymbolTable::new();
        for i in 0..50 {
            assert_eq!(t.intern(&format!("n{i}")).index(), i);
        }
    }

    #[test]
    fn empty_string_is_internable() {
        // The root node's name is the empty string.
        let mut t = SymbolTable::new();
        let e = t.intern("");
        assert_eq!(t.resolve(e), "");
        assert_eq!(t.lookup(""), Some(e));
    }
}
