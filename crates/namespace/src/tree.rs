//! The arena-backed namespace tree.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::error::TreeError;
use crate::intern::{Sym, SymbolTable};
use crate::iter::{Ancestors, ChainUp, Descendants};
use crate::node::{ChildMap, Node, NodeId, NodeKind};
use crate::path::NsPath;

/// Source of unique tree identities, so caches keyed on a tree (see
/// `LocalIndex::locate`'s memo) can tell two trees apart even when their
/// mutation counters coincide.
static NEXT_TREE_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_tree_id() -> u64 {
    NEXT_TREE_ID.fetch_add(1, Ordering::Relaxed)
}

/// A POSIX-style namespace tree of files and directories.
///
/// Nodes live in an arena indexed by [`NodeId`]; ids are never reused, so
/// dense side tables (popularity, placement) indexed by [`NodeId::index`]
/// stay valid across removals. Removed nodes are tombstoned and skipped by
/// all traversals.
///
/// Name components are interned in a per-tree [`SymbolTable`]: child maps
/// store `(Sym, NodeId)` pairs, so path resolution hashes each component
/// once and then compares `u32` handles instead of strings.
///
/// # Example
///
/// ```
/// use d2tree_namespace::{NamespaceTree, NodeKind};
///
/// # fn main() -> Result<(), d2tree_namespace::TreeError> {
/// let mut tree = NamespaceTree::new();
/// let etc = tree.create(tree.root(), "etc", NodeKind::Directory)?;
/// tree.create(etc, "hosts", NodeKind::File)?;
/// assert_eq!(tree.node_count(), 3); // root, etc, hosts
/// assert_eq!(tree.subtree_size(etc), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct NamespaceTree {
    nodes: Vec<Node>,
    live: usize,
    symbols: SymbolTable,
    /// Bumped on every structural mutation; see [`version`](Self::version).
    version: u64,
    /// Process-unique identity; see [`identity`](Self::identity).
    identity: u64,
}

impl NamespaceTree {
    /// Creates a tree containing only the root directory.
    #[must_use]
    pub fn new() -> Self {
        let mut symbols = SymbolTable::new();
        let root_sym = symbols.intern("");
        NamespaceTree {
            nodes: vec![Node {
                name: Box::from(""),
                sym: root_sym,
                kind: NodeKind::Directory,
                parent: None,
                children: ChildMap::new(),
                alive: true,
            }],
            live: 1,
            symbols,
            version: 0,
            identity: fresh_tree_id(),
        }
    }

    /// The root directory's id.
    #[must_use]
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Number of live nodes, including the root.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.live
    }

    /// Size of the underlying arena (live + tombstoned nodes).
    ///
    /// Dense side tables indexed by [`NodeId::index`] should be sized to this
    /// value, not to [`node_count`](Self::node_count).
    #[must_use]
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// Monotonic mutation counter: bumped by every `create`, `rename`,
    /// `move_subtree` and `remove_subtree`. Caches derived from the tree's
    /// structure (e.g. the local index's nearest-owner memo) stay valid
    /// exactly while this value is unchanged.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// A process-unique identity for this tree instance. Cloning produces
    /// a tree with a fresh identity, so `(identity, version)` pairs never
    /// collide across trees and are safe as cache stamps.
    #[must_use]
    pub fn identity(&self) -> u64 {
        self.identity
    }

    /// The tree's name intern table.
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Returns the node payload, or `None` if the id is out of range or the
    /// node has been removed.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index()).filter(|n| n.alive)
    }

    /// Whether `id` refers to a live node.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.node(id).is_some()
    }

    fn get(&self, id: NodeId) -> Result<&Node, TreeError> {
        self.node(id).ok_or(TreeError::NodeNotFound(id))
    }

    fn get_mut(&mut self, id: NodeId) -> Result<&mut Node, TreeError> {
        self.nodes
            .get_mut(id.index())
            .filter(|n| n.alive)
            .ok_or(TreeError::NodeNotFound(id))
    }

    /// Looks up a child of `parent` by name.
    ///
    /// `None` if `parent` is not live, has no such child, or the name has
    /// never been interned (then no node in the whole tree carries it).
    #[must_use]
    pub fn child_of(&self, parent: NodeId, name: &str) -> Option<NodeId> {
        let sym = self.symbols.lookup(name)?;
        self.node(parent)?.child_by_sym(sym)
    }

    /// Creates a child of `parent` and returns its id.
    ///
    /// # Errors
    ///
    /// * [`TreeError::NodeNotFound`] — `parent` is not a live node.
    /// * [`TreeError::NotADirectory`] — `parent` is a file.
    /// * [`TreeError::DuplicateName`] — a sibling named `name` exists.
    /// * [`TreeError::InvalidPath`] — `name` is empty or contains `/`.
    pub fn create(
        &mut self,
        parent: NodeId,
        name: &str,
        kind: NodeKind,
    ) -> Result<NodeId, TreeError> {
        if name.is_empty() || name.contains('/') {
            return Err(TreeError::InvalidPath(name.to_owned()));
        }
        let p = self.get(parent)?;
        if !p.kind.is_directory() {
            return Err(TreeError::NotADirectory(parent));
        }
        if let Some(sym) = self.symbols.lookup(name) {
            if p.child_by_sym(sym).is_some() {
                return Err(TreeError::DuplicateName(name.to_owned()));
            }
        }
        let sym = self.symbols.intern(name);
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            name: Box::from(name),
            sym,
            kind,
            parent: Some(parent),
            children: ChildMap::new(),
            alive: true,
        });
        self.nodes[parent.index()]
            .children
            .insert(sym, id, &self.symbols);
        self.live += 1;
        self.version += 1;
        Ok(id)
    }

    /// Creates every missing directory along `path` and returns the id of the
    /// final component.
    ///
    /// The final component is created with `kind`; intermediate components
    /// are directories.
    ///
    /// # Errors
    ///
    /// Fails if an intermediate component already exists as a file, or the
    /// final component exists with a different kind.
    pub fn create_path(&mut self, path: &NsPath, kind: NodeKind) -> Result<NodeId, TreeError> {
        let mut cur = self.root();
        let n = path.depth();
        for (i, comp) in path.components().enumerate() {
            let last = i + 1 == n;
            let want = if last { kind } else { NodeKind::Directory };
            self.get(cur)?;
            match self.child_of(cur, comp) {
                Some(next) => {
                    let existing = self.get(next)?;
                    if last && existing.kind != want {
                        return Err(TreeError::DuplicateName(comp.to_owned()));
                    }
                    if !last && !existing.kind.is_directory() {
                        return Err(TreeError::NotADirectory(next));
                    }
                    cur = next;
                }
                None => cur = self.create(cur, comp, want)?,
            }
        }
        Ok(cur)
    }

    /// Resolves an absolute path to a node id.
    ///
    /// Each component costs one intern-table probe (an FNV hash plus one
    /// string verification) and a contiguous `u32` scan of the directory's
    /// children — no per-level string comparisons and no allocation.
    #[must_use]
    pub fn resolve(&self, path: &NsPath) -> Option<NodeId> {
        let mut cur = self.root();
        for comp in path.components() {
            let sym = self.symbols.lookup(comp)?;
            cur = self.node(cur)?.child_by_sym(sym)?;
        }
        Some(cur)
    }

    /// Pre-interns every component of `path` against this tree's symbol
    /// table, for repeat resolution via
    /// [`resolve_syms`](Self::resolve_syms).
    ///
    /// `None` means some component names no symbol this tree has ever
    /// seen, so the path cannot resolve. The returned symbols are only
    /// meaningful against this tree (and trees cloned from it); they
    /// stay valid across mutations because symbols are never reclaimed.
    #[must_use]
    pub fn intern_path(&self, path: &NsPath) -> Option<Vec<Sym>> {
        path.components()
            .map(|comp| self.symbols.lookup(comp))
            .collect()
    }

    /// Resolves a pre-interned component sequence (see
    /// [`intern_path`](Self::intern_path)): the hot-path form of
    /// [`resolve`](Self::resolve) for paths looked up repeatedly. Each
    /// component costs only the contiguous `u32` scan of the directory's
    /// children — no hashing, no string comparisons, no allocation.
    #[must_use]
    pub fn resolve_syms(&self, syms: &[Sym]) -> Option<NodeId> {
        let mut cur = self.root();
        for &sym in syms {
            cur = self.node(cur)?.child_by_sym(sym)?;
        }
        Some(cur)
    }

    /// Convenience: parse `path` and resolve it.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InvalidPath`] for malformed strings and
    /// [`TreeError::NodeNotFound`] when the path does not exist.
    pub fn resolve_str(&self, path: &str) -> Result<NodeId, TreeError> {
        let p: NsPath = path.parse()?;
        self.resolve(&p)
            .ok_or(TreeError::NodeNotFound(NodeId::ROOT))
    }

    /// Reconstructs the absolute path of a live node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live node.
    #[must_use]
    pub fn path_of(&self, id: NodeId) -> NsPath {
        let mut comps: Vec<&str> = Vec::new();
        let mut cur = self.get(id).expect("path_of of a live node");
        while let Some(parent) = cur.parent {
            comps.push(&cur.name);
            cur = self.get(parent).expect("parent chain is live");
        }
        comps.reverse();
        NsPath::from_components(comps).expect("stored names are valid components")
    }

    /// Depth of a node: the root has depth 0.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live node.
    #[must_use]
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }

    /// Iterates over the strict ancestors of `id`, from its parent up to the
    /// root (the set `A_j` of Def. 1 in the paper).
    #[must_use]
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors::new(self, id)
    }

    /// The node ids on the root-to-`id` path, inclusive of both ends.
    ///
    /// This is the chain a POSIX pathname traversal touches; the locality
    /// metric counts server changes along it. Allocates the chain — use
    /// [`chain_up`](Self::chain_up) on hot paths where the walk direction
    /// does not matter.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live node.
    #[must_use]
    pub fn path_from_root(&self, id: NodeId) -> Vec<NodeId> {
        let mut chain: Vec<NodeId> = self.ancestors(id).collect();
        chain.reverse();
        chain.push(id);
        chain
    }

    /// Allocation-free walk of the same chain as
    /// [`path_from_root`](Self::path_from_root), but upward: `id` first,
    /// then its parent, up to the root. Direction-agnostic consumers
    /// (nearest-owner search, jump counting) should prefer this.
    #[must_use]
    pub fn chain_up(&self, id: NodeId) -> ChainUp<'_> {
        ChainUp::new(self, id)
    }

    /// Pre-order depth-first traversal of the subtree rooted at `id`,
    /// including `id` itself.
    #[must_use]
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants::new(self, id)
    }

    /// Number of live nodes in the subtree rooted at `id` (including `id`).
    #[must_use]
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.descendants(id).count()
    }

    /// Whether `a` is a strict ancestor of `b`.
    #[must_use]
    pub fn is_ancestor_of(&self, a: NodeId, b: NodeId) -> bool {
        self.ancestors(b).any(|x| x == a)
    }

    /// Renames a node in place.
    ///
    /// # Errors
    ///
    /// * [`TreeError::RootImmutable`] — `id` is the root.
    /// * [`TreeError::DuplicateName`] — a sibling named `new_name` exists.
    /// * [`TreeError::InvalidPath`] — `new_name` is malformed.
    pub fn rename(&mut self, id: NodeId, new_name: &str) -> Result<(), TreeError> {
        if new_name.is_empty() || new_name.contains('/') {
            return Err(TreeError::InvalidPath(new_name.to_owned()));
        }
        let node = self.get(id)?;
        let parent = node.parent.ok_or(TreeError::RootImmutable)?;
        let old_sym = node.sym;
        if node.name.as_ref() == new_name {
            return Ok(());
        }
        if self.child_of(parent, new_name).is_some() {
            return Err(TreeError::DuplicateName(new_name.to_owned()));
        }
        let new_sym = self.symbols.intern(new_name);
        self.nodes[parent.index()].children.remove(old_sym);
        self.nodes[parent.index()]
            .children
            .insert(new_sym, id, &self.symbols);
        let n = self.get_mut(id)?;
        n.name = Box::from(new_name);
        n.sym = new_sym;
        self.version += 1;
        Ok(())
    }

    /// Moves the subtree rooted at `id` under `new_parent`.
    ///
    /// # Errors
    ///
    /// * [`TreeError::RootImmutable`] — `id` is the root.
    /// * [`TreeError::NotADirectory`] — `new_parent` is a file.
    /// * [`TreeError::DuplicateName`] — `new_parent` has a child with the
    ///   same name.
    /// * [`TreeError::MoveIntoDescendant`] — `new_parent` lies inside the
    ///   moved subtree.
    pub fn move_subtree(&mut self, id: NodeId, new_parent: NodeId) -> Result<(), TreeError> {
        let node = self.get(id)?;
        let old_parent = node.parent.ok_or(TreeError::RootImmutable)?;
        let sym = node.sym;
        let dest = self.get(new_parent)?;
        if !dest.kind.is_directory() {
            return Err(TreeError::NotADirectory(new_parent));
        }
        if new_parent == id || self.is_ancestor_of(id, new_parent) {
            return Err(TreeError::MoveIntoDescendant {
                subject: id,
                destination: new_parent,
            });
        }
        if new_parent == old_parent {
            return Ok(());
        }
        if dest.child_by_sym(sym).is_some() {
            let name = self.symbols.resolve(sym).to_owned();
            return Err(TreeError::DuplicateName(name));
        }
        self.get_mut(old_parent)?.children.remove(sym);
        self.nodes[new_parent.index()]
            .children
            .insert(sym, id, &self.symbols);
        self.get_mut(id)?.parent = Some(new_parent);
        self.version += 1;
        Ok(())
    }

    /// Removes the subtree rooted at `id` and returns how many nodes were
    /// removed.
    ///
    /// Removed ids become tombstones: they are never reused and all lookups
    /// on them fail.
    ///
    /// # Errors
    ///
    /// * [`TreeError::RootImmutable`] — `id` is the root.
    /// * [`TreeError::NodeNotFound`] — `id` is not live.
    pub fn remove_subtree(&mut self, id: NodeId) -> Result<usize, TreeError> {
        let node = self.get(id)?;
        let parent = node.parent.ok_or(TreeError::RootImmutable)?;
        let sym = node.sym;
        let victims: Vec<NodeId> = self.descendants(id).collect();
        self.get_mut(parent)?.children.remove(sym);
        for v in &victims {
            self.nodes[v.index()].alive = false;
            self.nodes[v.index()].children.clear();
        }
        self.live -= victims.len();
        self.version += 1;
        Ok(victims.len())
    }

    /// Iterates over all live nodes as `(id, node)` in id (creation) order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Number of live directories.
    #[must_use]
    pub fn directory_count(&self) -> usize {
        self.nodes().filter(|(_, n)| n.kind.is_directory()).count()
    }

    /// Number of live files.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.nodes().filter(|(_, n)| !n.kind.is_directory()).count()
    }

    /// Maximum depth over all live nodes (the paper's Table I "Max Depth").
    #[must_use]
    pub fn max_depth(&self) -> usize {
        let mut depth = vec![0usize; self.arena_size()];
        let mut max = 0;
        for (id, node) in self.nodes() {
            if let Some(p) = node.parent {
                depth[id.index()] = depth[p.index()] + 1;
                max = max.max(depth[id.index()]);
            }
        }
        max
    }
}

impl Clone for NamespaceTree {
    fn clone(&self) -> Self {
        NamespaceTree {
            nodes: self.nodes.clone(),
            live: self.live,
            symbols: self.symbols.clone(),
            version: self.version,
            // A clone is a distinct tree: caches stamped with the source's
            // identity must not be read against the copy.
            identity: fresh_tree_id(),
        }
    }
}

impl Default for NamespaceTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (NamespaceTree, NodeId, NodeId, NodeId) {
        let mut t = NamespaceTree::new();
        let home = t.create(t.root(), "home", NodeKind::Directory).unwrap();
        let a = t.create(home, "a", NodeKind::Directory).unwrap();
        let f = t.create(a, "f.txt", NodeKind::File).unwrap();
        (t, home, a, f)
    }

    #[test]
    fn create_resolve_path_roundtrip() {
        let (t, _, _, f) = sample();
        let p = t.path_of(f);
        assert_eq!(p.to_string(), "/home/a/f.txt");
        assert_eq!(t.resolve(&p), Some(f));
        assert_eq!(t.resolve_str("/home/a/f.txt").unwrap(), f);
    }

    #[test]
    fn preinterned_resolution_matches_resolve() {
        let (mut t, _, a, f) = sample();
        let p = t.path_of(f);
        let syms = t.intern_path(&p).expect("every component is known");
        assert_eq!(t.resolve_syms(&syms), Some(f));
        // Unknown names cannot be interned against this tree.
        assert_eq!(t.intern_path(&"/home/nope".parse().unwrap()), None);
        // Symbols survive mutations elsewhere in the tree and keep
        // tracking the renamed-away-and-back name.
        let g = t.create(a, "g", NodeKind::File).unwrap();
        assert_eq!(t.resolve_syms(&syms), Some(f));
        t.remove_subtree(g).unwrap();
        assert_eq!(t.resolve_syms(&syms), Some(f));
        t.rename(f, "f2.txt").unwrap();
        assert_eq!(t.resolve_syms(&syms), None, "old name no longer binds");
        t.rename(f, "f.txt").unwrap();
        assert_eq!(t.resolve_syms(&syms), Some(f));
    }

    #[test]
    fn create_rejects_duplicates_and_bad_parents() {
        let (mut t, home, _, f) = sample();
        assert_eq!(
            t.create(home, "a", NodeKind::Directory),
            Err(TreeError::DuplicateName("a".into()))
        );
        assert_eq!(
            t.create(f, "x", NodeKind::File),
            Err(TreeError::NotADirectory(f))
        );
        assert!(matches!(
            t.create(home, "x/y", NodeKind::File),
            Err(TreeError::InvalidPath(_))
        ));
    }

    #[test]
    fn create_path_builds_intermediates() {
        let mut t = NamespaceTree::new();
        let p: NsPath = "/x/y/z.dat".parse().unwrap();
        let id = t.create_path(&p, NodeKind::File).unwrap();
        assert_eq!(t.path_of(id), p);
        assert_eq!(t.node_count(), 4);
        // Idempotent for an existing node of the same kind.
        assert_eq!(t.create_path(&p, NodeKind::File).unwrap(), id);
        // Conflicting kind fails.
        assert!(t.create_path(&p, NodeKind::Directory).is_err());
    }

    #[test]
    fn ancestors_and_depth() {
        let (t, home, a, f) = sample();
        let anc: Vec<NodeId> = t.ancestors(f).collect();
        assert_eq!(anc, vec![a, home, t.root()]);
        assert_eq!(t.depth(f), 3);
        assert_eq!(t.depth(t.root()), 0);
        assert_eq!(t.path_from_root(f), vec![t.root(), home, a, f]);
    }

    #[test]
    fn chain_up_matches_path_from_root_reversed() {
        let (t, _, _, f) = sample();
        let mut down = t.path_from_root(f);
        down.reverse();
        let up: Vec<NodeId> = t.chain_up(f).collect();
        assert_eq!(up, down);
        // The root's chain is just itself.
        assert_eq!(t.chain_up(t.root()).collect::<Vec<_>>(), vec![t.root()]);
    }

    #[test]
    fn chain_up_of_dead_node_yields_only_the_node() {
        let (mut t, _, a, f) = sample();
        t.remove_subtree(a).unwrap();
        assert_eq!(t.chain_up(f).collect::<Vec<_>>(), vec![f]);
    }

    #[test]
    fn descendants_preorder() {
        let (t, home, a, f) = sample();
        let desc: Vec<NodeId> = t.descendants(home).collect();
        assert_eq!(desc, vec![home, a, f]);
        assert_eq!(t.subtree_size(home), 3);
        assert_eq!(t.subtree_size(f), 1);
    }

    #[test]
    fn rename_updates_resolution() {
        let (mut t, _, a, f) = sample();
        t.rename(a, "b").unwrap();
        assert_eq!(t.resolve_str("/home/b/f.txt").unwrap(), f);
        assert!(t.resolve_str("/home/a/f.txt").is_err());
        assert_eq!(t.rename(t.root(), "r"), Err(TreeError::RootImmutable));
    }

    #[test]
    fn rename_to_same_name_is_noop() {
        let (mut t, _, a, _) = sample();
        let v = t.version();
        t.rename(a, "a").unwrap();
        assert!(t.resolve_str("/home/a").is_ok());
        assert_eq!(t.version(), v, "no-op rename must not invalidate caches");
    }

    #[test]
    fn move_subtree_rewires_paths() {
        let (mut t, home, a, f) = sample();
        let var = t.create(t.root(), "var", NodeKind::Directory).unwrap();
        t.move_subtree(a, var).unwrap();
        assert_eq!(t.path_of(f).to_string(), "/var/a/f.txt");
        assert!(!t.is_ancestor_of(home, f));
        assert!(t.is_ancestor_of(var, f));
    }

    #[test]
    fn move_into_descendant_rejected() {
        let (mut t, home, a, _) = sample();
        assert!(matches!(
            t.move_subtree(home, a),
            Err(TreeError::MoveIntoDescendant { .. })
        ));
        assert!(matches!(
            t.move_subtree(home, home),
            Err(TreeError::MoveIntoDescendant { .. })
        ));
    }

    #[test]
    fn remove_subtree_tombstones() {
        let (mut t, home, a, f) = sample();
        let removed = t.remove_subtree(a).unwrap();
        assert_eq!(removed, 2);
        assert!(!t.contains(a));
        assert!(!t.contains(f));
        assert!(t.contains(home));
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.arena_size(), 4); // tombstones keep the arena dense
        assert_eq!(t.remove_subtree(a), Err(TreeError::NodeNotFound(a)));
        assert_eq!(t.remove_subtree(t.root()), Err(TreeError::RootImmutable));
    }

    #[test]
    fn counts_and_max_depth() {
        let (t, ..) = sample();
        assert_eq!(t.directory_count(), 3); // root, home, a
        assert_eq!(t.file_count(), 1);
        assert_eq!(t.max_depth(), 3);
    }

    #[test]
    fn clone_preserves_structure() {
        let (t, _, _, f) = sample();
        let c = t.clone();
        assert_eq!(c.resolve_str("/home/a/f.txt").unwrap(), f);
        assert_eq!(c.node_count(), t.node_count());
    }

    #[test]
    fn clone_gets_a_fresh_identity() {
        let (t, ..) = sample();
        let c = t.clone();
        assert_ne!(t.identity(), c.identity());
        assert_eq!(t.version(), c.version());
    }

    #[test]
    fn version_bumps_on_every_mutation_kind() {
        let mut t = NamespaceTree::new();
        assert_eq!(t.version(), 0);
        let a = t.create(t.root(), "a", NodeKind::Directory).unwrap();
        let v1 = t.version();
        assert!(v1 > 0);
        let b = t.create(t.root(), "b", NodeKind::Directory).unwrap();
        t.rename(b, "c").unwrap();
        let v2 = t.version();
        assert!(v2 > v1);
        t.move_subtree(b, a).unwrap();
        let v3 = t.version();
        assert!(v3 > v2);
        t.remove_subtree(b).unwrap();
        assert!(t.version() > v3);
    }

    #[test]
    fn child_of_resolves_and_misses() {
        let (t, home, a, _) = sample();
        assert_eq!(t.child_of(t.root(), "home"), Some(home));
        assert_eq!(t.child_of(home, "a"), Some(a));
        assert_eq!(t.child_of(home, "zzz"), None);
        assert_eq!(t.child_of(a, "never-interned"), None);
    }
}
