//! The arena-backed namespace tree.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::TreeError;
use crate::iter::{Ancestors, Descendants};
use crate::node::{Node, NodeId, NodeKind};
use crate::path::NsPath;

/// A POSIX-style namespace tree of files and directories.
///
/// Nodes live in an arena indexed by [`NodeId`]; ids are never reused, so
/// dense side tables (popularity, placement) indexed by [`NodeId::index`]
/// stay valid across removals. Removed nodes are tombstoned and skipped by
/// all traversals.
///
/// # Example
///
/// ```
/// use d2tree_namespace::{NamespaceTree, NodeKind};
///
/// # fn main() -> Result<(), d2tree_namespace::TreeError> {
/// let mut tree = NamespaceTree::new();
/// let etc = tree.create(tree.root(), "etc", NodeKind::Directory)?;
/// tree.create(etc, "hosts", NodeKind::File)?;
/// assert_eq!(tree.node_count(), 3); // root, etc, hosts
/// assert_eq!(tree.subtree_size(etc), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamespaceTree {
    nodes: Vec<Node>,
    live: usize,
}

impl NamespaceTree {
    /// Creates a tree containing only the root directory.
    #[must_use]
    pub fn new() -> Self {
        NamespaceTree {
            nodes: vec![Node {
                name: Box::from(""),
                kind: NodeKind::Directory,
                parent: None,
                children: BTreeMap::new(),
                alive: true,
            }],
            live: 1,
        }
    }

    /// The root directory's id.
    #[must_use]
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Number of live nodes, including the root.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.live
    }

    /// Size of the underlying arena (live + tombstoned nodes).
    ///
    /// Dense side tables indexed by [`NodeId::index`] should be sized to this
    /// value, not to [`node_count`](Self::node_count).
    #[must_use]
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the node payload, or `None` if the id is out of range or the
    /// node has been removed.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index()).filter(|n| n.alive)
    }

    /// Whether `id` refers to a live node.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.node(id).is_some()
    }

    fn get(&self, id: NodeId) -> Result<&Node, TreeError> {
        self.node(id).ok_or(TreeError::NodeNotFound(id))
    }

    fn get_mut(&mut self, id: NodeId) -> Result<&mut Node, TreeError> {
        self.nodes
            .get_mut(id.index())
            .filter(|n| n.alive)
            .ok_or(TreeError::NodeNotFound(id))
    }

    /// Creates a child of `parent` and returns its id.
    ///
    /// # Errors
    ///
    /// * [`TreeError::NodeNotFound`] — `parent` is not a live node.
    /// * [`TreeError::NotADirectory`] — `parent` is a file.
    /// * [`TreeError::DuplicateName`] — a sibling named `name` exists.
    /// * [`TreeError::InvalidPath`] — `name` is empty or contains `/`.
    pub fn create(
        &mut self,
        parent: NodeId,
        name: &str,
        kind: NodeKind,
    ) -> Result<NodeId, TreeError> {
        if name.is_empty() || name.contains('/') {
            return Err(TreeError::InvalidPath(name.to_owned()));
        }
        let p = self.get(parent)?;
        if !p.kind.is_directory() {
            return Err(TreeError::NotADirectory(parent));
        }
        if p.children.contains_key(name) {
            return Err(TreeError::DuplicateName(name.to_owned()));
        }
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            name: Box::from(name),
            kind,
            parent: Some(parent),
            children: BTreeMap::new(),
            alive: true,
        });
        self.nodes[parent.index()]
            .children
            .insert(Box::from(name), id);
        self.live += 1;
        Ok(id)
    }

    /// Creates every missing directory along `path` and returns the id of the
    /// final component.
    ///
    /// The final component is created with `kind`; intermediate components
    /// are directories.
    ///
    /// # Errors
    ///
    /// Fails if an intermediate component already exists as a file, or the
    /// final component exists with a different kind.
    pub fn create_path(&mut self, path: &NsPath, kind: NodeKind) -> Result<NodeId, TreeError> {
        let mut cur = self.root();
        let n = path.depth();
        for (i, comp) in path.components().enumerate() {
            let last = i + 1 == n;
            let want = if last { kind } else { NodeKind::Directory };
            match self.get(cur)?.child(comp) {
                Some(next) => {
                    let existing = self.get(next)?;
                    if last && existing.kind != want {
                        return Err(TreeError::DuplicateName(comp.to_owned()));
                    }
                    if !last && !existing.kind.is_directory() {
                        return Err(TreeError::NotADirectory(next));
                    }
                    cur = next;
                }
                None => cur = self.create(cur, comp, want)?,
            }
        }
        Ok(cur)
    }

    /// Resolves an absolute path to a node id.
    #[must_use]
    pub fn resolve(&self, path: &NsPath) -> Option<NodeId> {
        let mut cur = self.root();
        for comp in path.components() {
            cur = self.node(cur)?.child(comp)?;
        }
        Some(cur)
    }

    /// Convenience: parse `path` and resolve it.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InvalidPath`] for malformed strings and
    /// [`TreeError::NodeNotFound`] when the path does not exist.
    pub fn resolve_str(&self, path: &str) -> Result<NodeId, TreeError> {
        let p: NsPath = path.parse()?;
        self.resolve(&p)
            .ok_or(TreeError::NodeNotFound(NodeId::ROOT))
    }

    /// Reconstructs the absolute path of a live node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live node.
    #[must_use]
    pub fn path_of(&self, id: NodeId) -> NsPath {
        let mut comps: Vec<&str> = Vec::new();
        let mut cur = self.get(id).expect("path_of of a live node");
        while let Some(parent) = cur.parent {
            comps.push(&cur.name);
            cur = self.get(parent).expect("parent chain is live");
        }
        comps.reverse();
        NsPath::from_components(comps).expect("stored names are valid components")
    }

    /// Depth of a node: the root has depth 0.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live node.
    #[must_use]
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }

    /// Iterates over the strict ancestors of `id`, from its parent up to the
    /// root (the set `A_j` of Def. 1 in the paper).
    #[must_use]
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors::new(self, id)
    }

    /// The node ids on the root-to-`id` path, inclusive of both ends.
    ///
    /// This is the chain a POSIX pathname traversal touches; the locality
    /// metric counts server changes along it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live node.
    #[must_use]
    pub fn path_from_root(&self, id: NodeId) -> Vec<NodeId> {
        let mut chain: Vec<NodeId> = self.ancestors(id).collect();
        chain.reverse();
        chain.push(id);
        chain
    }

    /// Pre-order depth-first traversal of the subtree rooted at `id`,
    /// including `id` itself.
    #[must_use]
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants::new(self, id)
    }

    /// Number of live nodes in the subtree rooted at `id` (including `id`).
    #[must_use]
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.descendants(id).count()
    }

    /// Whether `a` is a strict ancestor of `b`.
    #[must_use]
    pub fn is_ancestor_of(&self, a: NodeId, b: NodeId) -> bool {
        self.ancestors(b).any(|x| x == a)
    }

    /// Renames a node in place.
    ///
    /// # Errors
    ///
    /// * [`TreeError::RootImmutable`] — `id` is the root.
    /// * [`TreeError::DuplicateName`] — a sibling named `new_name` exists.
    /// * [`TreeError::InvalidPath`] — `new_name` is malformed.
    pub fn rename(&mut self, id: NodeId, new_name: &str) -> Result<(), TreeError> {
        if new_name.is_empty() || new_name.contains('/') {
            return Err(TreeError::InvalidPath(new_name.to_owned()));
        }
        let node = self.get(id)?;
        let parent = node.parent.ok_or(TreeError::RootImmutable)?;
        let old_name = node.name.clone();
        if old_name.as_ref() == new_name {
            return Ok(());
        }
        if self.get(parent)?.children.contains_key(new_name) {
            return Err(TreeError::DuplicateName(new_name.to_owned()));
        }
        let pnode = self.get_mut(parent)?;
        pnode.children.remove(&old_name);
        pnode.children.insert(Box::from(new_name), id);
        self.get_mut(id)?.name = Box::from(new_name);
        Ok(())
    }

    /// Moves the subtree rooted at `id` under `new_parent`.
    ///
    /// # Errors
    ///
    /// * [`TreeError::RootImmutable`] — `id` is the root.
    /// * [`TreeError::NotADirectory`] — `new_parent` is a file.
    /// * [`TreeError::DuplicateName`] — `new_parent` has a child with the
    ///   same name.
    /// * [`TreeError::MoveIntoDescendant`] — `new_parent` lies inside the
    ///   moved subtree.
    pub fn move_subtree(&mut self, id: NodeId, new_parent: NodeId) -> Result<(), TreeError> {
        let node = self.get(id)?;
        let old_parent = node.parent.ok_or(TreeError::RootImmutable)?;
        let name = node.name.clone();
        let dest = self.get(new_parent)?;
        if !dest.kind.is_directory() {
            return Err(TreeError::NotADirectory(new_parent));
        }
        if new_parent == id || self.is_ancestor_of(id, new_parent) {
            return Err(TreeError::MoveIntoDescendant {
                subject: id,
                destination: new_parent,
            });
        }
        if new_parent == old_parent {
            return Ok(());
        }
        if dest.children.contains_key(&name) {
            return Err(TreeError::DuplicateName(name.into_string()));
        }
        self.get_mut(old_parent)?.children.remove(&name);
        self.get_mut(new_parent)?.children.insert(name, id);
        self.get_mut(id)?.parent = Some(new_parent);
        Ok(())
    }

    /// Removes the subtree rooted at `id` and returns how many nodes were
    /// removed.
    ///
    /// Removed ids become tombstones: they are never reused and all lookups
    /// on them fail.
    ///
    /// # Errors
    ///
    /// * [`TreeError::RootImmutable`] — `id` is the root.
    /// * [`TreeError::NodeNotFound`] — `id` is not live.
    pub fn remove_subtree(&mut self, id: NodeId) -> Result<usize, TreeError> {
        let node = self.get(id)?;
        let parent = node.parent.ok_or(TreeError::RootImmutable)?;
        let name = node.name.clone();
        let victims: Vec<NodeId> = self.descendants(id).collect();
        self.get_mut(parent)?.children.remove(&name);
        for v in &victims {
            self.nodes[v.index()].alive = false;
            self.nodes[v.index()].children.clear();
        }
        self.live -= victims.len();
        Ok(victims.len())
    }

    /// Iterates over all live nodes as `(id, node)` in id (creation) order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Number of live directories.
    #[must_use]
    pub fn directory_count(&self) -> usize {
        self.nodes().filter(|(_, n)| n.kind.is_directory()).count()
    }

    /// Number of live files.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.nodes().filter(|(_, n)| !n.kind.is_directory()).count()
    }

    /// Maximum depth over all live nodes (the paper's Table I "Max Depth").
    #[must_use]
    pub fn max_depth(&self) -> usize {
        let mut depth = vec![0usize; self.arena_size()];
        let mut max = 0;
        for (id, node) in self.nodes() {
            if let Some(p) = node.parent {
                depth[id.index()] = depth[p.index()] + 1;
                max = max.max(depth[id.index()]);
            }
        }
        max
    }
}

impl Default for NamespaceTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (NamespaceTree, NodeId, NodeId, NodeId) {
        let mut t = NamespaceTree::new();
        let home = t.create(t.root(), "home", NodeKind::Directory).unwrap();
        let a = t.create(home, "a", NodeKind::Directory).unwrap();
        let f = t.create(a, "f.txt", NodeKind::File).unwrap();
        (t, home, a, f)
    }

    #[test]
    fn create_resolve_path_roundtrip() {
        let (t, _, _, f) = sample();
        let p = t.path_of(f);
        assert_eq!(p.to_string(), "/home/a/f.txt");
        assert_eq!(t.resolve(&p), Some(f));
        assert_eq!(t.resolve_str("/home/a/f.txt").unwrap(), f);
    }

    #[test]
    fn create_rejects_duplicates_and_bad_parents() {
        let (mut t, home, _, f) = sample();
        assert_eq!(
            t.create(home, "a", NodeKind::Directory),
            Err(TreeError::DuplicateName("a".into()))
        );
        assert_eq!(
            t.create(f, "x", NodeKind::File),
            Err(TreeError::NotADirectory(f))
        );
        assert!(matches!(
            t.create(home, "x/y", NodeKind::File),
            Err(TreeError::InvalidPath(_))
        ));
    }

    #[test]
    fn create_path_builds_intermediates() {
        let mut t = NamespaceTree::new();
        let p: NsPath = "/x/y/z.dat".parse().unwrap();
        let id = t.create_path(&p, NodeKind::File).unwrap();
        assert_eq!(t.path_of(id), p);
        assert_eq!(t.node_count(), 4);
        // Idempotent for an existing node of the same kind.
        assert_eq!(t.create_path(&p, NodeKind::File).unwrap(), id);
        // Conflicting kind fails.
        assert!(t.create_path(&p, NodeKind::Directory).is_err());
    }

    #[test]
    fn ancestors_and_depth() {
        let (t, home, a, f) = sample();
        let anc: Vec<NodeId> = t.ancestors(f).collect();
        assert_eq!(anc, vec![a, home, t.root()]);
        assert_eq!(t.depth(f), 3);
        assert_eq!(t.depth(t.root()), 0);
        assert_eq!(t.path_from_root(f), vec![t.root(), home, a, f]);
    }

    #[test]
    fn descendants_preorder() {
        let (t, home, a, f) = sample();
        let desc: Vec<NodeId> = t.descendants(home).collect();
        assert_eq!(desc, vec![home, a, f]);
        assert_eq!(t.subtree_size(home), 3);
        assert_eq!(t.subtree_size(f), 1);
    }

    #[test]
    fn rename_updates_resolution() {
        let (mut t, _, a, f) = sample();
        t.rename(a, "b").unwrap();
        assert_eq!(t.resolve_str("/home/b/f.txt").unwrap(), f);
        assert!(t.resolve_str("/home/a/f.txt").is_err());
        assert_eq!(t.rename(t.root(), "r"), Err(TreeError::RootImmutable));
    }

    #[test]
    fn rename_to_same_name_is_noop() {
        let (mut t, _, a, _) = sample();
        t.rename(a, "a").unwrap();
        assert!(t.resolve_str("/home/a").is_ok());
    }

    #[test]
    fn move_subtree_rewires_paths() {
        let (mut t, home, a, f) = sample();
        let var = t.create(t.root(), "var", NodeKind::Directory).unwrap();
        t.move_subtree(a, var).unwrap();
        assert_eq!(t.path_of(f).to_string(), "/var/a/f.txt");
        assert!(!t.is_ancestor_of(home, f));
        assert!(t.is_ancestor_of(var, f));
    }

    #[test]
    fn move_into_descendant_rejected() {
        let (mut t, home, a, _) = sample();
        assert!(matches!(
            t.move_subtree(home, a),
            Err(TreeError::MoveIntoDescendant { .. })
        ));
        assert!(matches!(
            t.move_subtree(home, home),
            Err(TreeError::MoveIntoDescendant { .. })
        ));
    }

    #[test]
    fn remove_subtree_tombstones() {
        let (mut t, home, a, f) = sample();
        let removed = t.remove_subtree(a).unwrap();
        assert_eq!(removed, 2);
        assert!(!t.contains(a));
        assert!(!t.contains(f));
        assert!(t.contains(home));
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.arena_size(), 4); // tombstones keep the arena dense
        assert_eq!(t.remove_subtree(a), Err(TreeError::NodeNotFound(a)));
        assert_eq!(t.remove_subtree(t.root()), Err(TreeError::RootImmutable));
    }

    #[test]
    fn counts_and_max_depth() {
        let (t, ..) = sample();
        assert_eq!(t.directory_count(), 3); // root, home, a
        assert_eq!(t.file_count(), 1);
        assert_eq!(t.max_depth(), 3);
    }

    #[test]
    fn clone_preserves_structure() {
        let (t, _, _, f) = sample();
        let c = t.clone();
        assert_eq!(c.resolve_str("/home/a/f.txt").unwrap(), f);
        assert_eq!(c.node_count(), t.node_count());
    }
}
