//! Replicated control plane: deterministic Raft-style consensus across
//! Monitor replicas.
//!
//! The paper hangs its whole dynamic-adjustment loop (Sec. IV-A3) off a
//! single Ceph-style Monitor plus a Zookeeper-like lock service. A
//! killed Monitor therefore means no failure detection, no rebalance
//! and no global-layer writes. This module closes that availability gap
//! the way real deployments do: the Monitor's membership decisions and
//! the lock service's lease grants are applied only through entries
//! committed by a majority of (by default three) replicas.
//!
//! Design constraints, in order:
//!
//! * **Deterministic.** Every timeout is an explicit millisecond clock
//!   the caller advances; every random draw (election jitter) comes
//!   from a per-replica seeded RNG; all iteration is over ordered
//!   containers. Two runs with the same seed and schedule produce
//!   byte-identical journals, so a failing election schedule is a
//!   reproducible test case.
//! * **Virtual-time friendly.** Nothing here sleeps or reads a wall
//!   clock. The chaos engine drives [`ConsensusCluster::tick`] on its
//!   virtual clock; a live deployment would drive it from a timer
//!   thread with the same semantics.
//! * **Durable via the existing WAL.** Each replica persists its hard
//!   state (term, vote) and log through a `d2tree-store`
//!   [`WalWriter`] — one segmented, CRC-framed log per replica, with
//!   crash recovery = scan + tail replay and torn final frames
//!   truncated by the same code paths the MDS stores use.
//! * **Fencing stays monotonic across failover.** Lease grants are
//!   log entries; the fencing counter lives in the replicated
//!   [`ControlState`], so a new leader can never re-issue or regress a
//!   fence, and a write carrying an expired lease's fence is rejected
//!   at apply time instead of being silently applied.
//!
//! The consensus protocol itself is textbook Raft restricted to what
//! the control plane needs: leader election with randomized timeouts,
//! log replication with conflict truncation, commit = majority match
//! with current-term gating, and a no-op entry committed at term start
//! so a fresh leader learns the commit frontier.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use d2tree_store::wal::{list_segments, scan_segment, WalWriter};
use d2tree_store::{MdsRecord, StoreResult};
use d2tree_telemetry::trace::span_names;
use d2tree_telemetry::{
    names, ArgKey, Counter, EventJournal, EventKind, Histogram, MetricKey, Registry, Span, SpanCtx,
    Tracer,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::client::RetryPolicy;
use crate::fault::{FaultDecision, FaultInjector, NetEdge};

/// Consensus-level opcode of a durable WAL event: hard-state update
/// (term + vote).
const OP_HARD_STATE: u8 = 0;
/// Consensus-level opcode of a durable WAL event: conflict truncation
/// (drop the log suffix starting at `index`).
const OP_TRUNCATE: u8 = 1;
/// Durable log entries carry `OP_ENTRY_BASE + command opcode`.
const OP_ENTRY_BASE: u8 = 16;

/// `voted_for` is persisted in the hard-state record's `index` slot;
/// this sentinel encodes "no vote this term".
const NO_VOTE: u64 = u64::MAX;

/// A command the replicated control-plane state machine understands.
///
/// Commands are `Copy` and fit three `u64` operands so they pack
/// losslessly into one [`MdsRecord::Consensus`] WAL record and one
/// fixed-width wire slot. Time-dependent decisions (lease expiry)
/// carry their clock reading *in the command*, taken once by the
/// proposing leader — every replica then applies the identical
/// deterministic transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Committed at term start by a fresh leader to learn the commit
    /// frontier (classic Raft no-op).
    Noop,
    /// Membership: an MDS registered or resumed heartbeating.
    MdsAlive {
        /// The MDS now considered alive.
        mds: u16,
    },
    /// Membership: the Monitor declared an MDS dead.
    MdsDead {
        /// The MDS declared dead.
        mds: u16,
    },
    /// Grant (or queue behind) the global-layer write lease for a node.
    LeaseAcquire {
        /// GL node the lease covers.
        node: u64,
        /// Requesting MDS.
        holder: u16,
        /// Leader's clock at proposal time; expiry is computed from it.
        now_ms: u64,
    },
    /// Release a held lease (only if the fence still matches).
    LeaseRelease {
        /// GL node the lease covers.
        node: u64,
        /// Fence of the grant being released.
        fence: u64,
    },
    /// A global-layer write under a lease: applied only if the fence
    /// identifies the current, unexpired lease.
    GlWrite {
        /// GL node being written.
        node: u64,
        /// Fencing token the writer holds.
        fence: u64,
        /// Leader's clock at proposal time (expiry check).
        now_ms: u64,
    },
    /// A subtree re-homing decided by the Monitor (rebalance or
    /// failover) — ownership changes are control-plane decisions, so
    /// they only take effect once committed.
    Migrate {
        /// Root of the migrating subtree (arena index).
        subtree: u64,
        /// Previous owner.
        from: u16,
        /// New owner.
        to: u16,
    },
}

impl Command {
    /// Packs the command into `(opcode, a, b, c)` for the WAL and the
    /// wire codec.
    #[must_use]
    pub fn to_wire(self) -> (u8, u64, u64, u64) {
        match self {
            Command::Noop => (0, 0, 0, 0),
            Command::MdsAlive { mds } => (1, u64::from(mds), 0, 0),
            Command::MdsDead { mds } => (2, u64::from(mds), 0, 0),
            Command::LeaseAcquire {
                node,
                holder,
                now_ms,
            } => (3, node, u64::from(holder), now_ms),
            Command::LeaseRelease { node, fence } => (4, node, fence, 0),
            Command::GlWrite {
                node,
                fence,
                now_ms,
            } => (5, node, fence, now_ms),
            Command::Migrate { subtree, from, to } => (6, subtree, u64::from(from), u64::from(to)),
        }
    }

    /// The inverse of [`Command::to_wire`]; `None` on an unknown opcode
    /// or an operand that does not fit its field.
    #[must_use]
    pub fn from_wire(op: u8, a: u64, b: u64, c: u64) -> Option<Command> {
        let narrow = |v: u64| u16::try_from(v).ok();
        Some(match op {
            0 => Command::Noop,
            1 => Command::MdsAlive { mds: narrow(a)? },
            2 => Command::MdsDead { mds: narrow(a)? },
            3 => Command::LeaseAcquire {
                node: a,
                holder: narrow(b)?,
                now_ms: c,
            },
            4 => Command::LeaseRelease { node: a, fence: b },
            5 => Command::GlWrite {
                node: a,
                fence: b,
                now_ms: c,
            },
            6 => Command::Migrate {
                subtree: a,
                from: narrow(b)?,
                to: narrow(c)?,
            },
            _ => return None,
        })
    }
}

/// One replicated log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Term the entry was proposed in.
    pub term: u64,
    /// 1-based log index.
    pub index: u64,
    /// The command.
    pub cmd: Command,
}

/// A granted global-layer write lease as the replicated state machine
/// tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseState {
    /// MDS holding the lease.
    pub holder: u16,
    /// Monotonic fencing token of this grant.
    pub fence: u64,
    /// Expiry instant (leader-clock milliseconds).
    pub expires_at_ms: u64,
}

/// What applying one committed entry did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// No state change (no-op entry).
    Noop,
    /// A lease was granted with the given fence.
    Granted {
        /// GL node the lease covers.
        node: u64,
        /// The monotonic fence attached to the grant.
        fence: u64,
        /// The MDS that now holds the lease.
        holder: u16,
    },
    /// The lease was busy (held, unexpired); nothing granted.
    Busy,
    /// A lease was released.
    Released,
    /// A write carried a stale or expired fence and was rejected.
    Rejected {
        /// GL node the rejected write targeted.
        node: u64,
        /// The stale fence presented.
        fence: u64,
    },
    /// A global-layer write committed under a valid lease.
    GlWritten {
        /// GL node written.
        node: u64,
        /// Its new committed version.
        version: u64,
    },
    /// Membership changed for an MDS.
    Membership {
        /// The MDS whose liveness flipped.
        mds: u16,
        /// Its new liveness.
        alive: bool,
    },
    /// A subtree re-homing committed.
    Migrated {
        /// Root of the migrated subtree (arena index).
        subtree: u64,
        /// Previous owner.
        from: u16,
        /// New owner.
        to: u16,
    },
}

/// The replicated control-plane state machine: the lock service's lease
/// table (with the global monotonic fencing counter), the Monitor's
/// membership map, committed GL versions and subtree ownership.
///
/// Everything time-dependent uses the clock reading carried *inside*
/// the command, so replaying the same entries always yields the same
/// state — on any replica, any number of times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlState {
    lease_ms: u64,
    next_fence: u64,
    /// Live leases by GL node.
    pub leases: BTreeMap<u64, LeaseState>,
    /// Committed MDS liveness (absent = never registered).
    pub alive: BTreeMap<u16, bool>,
    /// Committed GL version per node.
    pub gl_versions: BTreeMap<u64, u64>,
    /// Committed subtree ownership (arena index → MDS).
    pub owner: BTreeMap<u64, u16>,
    /// Index of the last applied entry.
    pub applied: u64,
    /// Total leases granted.
    pub grants: u64,
    /// Writes rejected for stale/expired fences.
    pub fence_rejections: u64,
    /// Acquire attempts that found the lease held and unexpired.
    pub lease_busy: u64,
}

impl ControlState {
    /// An empty state machine granting leases of `lease_ms` (minimum 1).
    #[must_use]
    pub fn new(lease_ms: u64) -> Self {
        ControlState {
            lease_ms: lease_ms.max(1),
            next_fence: 0,
            leases: BTreeMap::new(),
            alive: BTreeMap::new(),
            gl_versions: BTreeMap::new(),
            owner: BTreeMap::new(),
            applied: 0,
            grants: 0,
            fence_rejections: 0,
            lease_busy: 0,
        }
    }

    /// Applies one committed entry. When `journal` is given (the
    /// cluster's single journaling observer), grant/rejection and
    /// membership events are recorded — exactly once per commit, never
    /// per replica.
    pub fn apply(&mut self, entry: &Entry, journal: Option<&EventJournal>) -> Applied {
        debug_assert_eq!(entry.index, self.applied + 1, "gapless apply order");
        self.applied = entry.index;
        match entry.cmd {
            Command::Noop => Applied::Noop,
            Command::MdsAlive { mds } => {
                let was = self.alive.insert(mds, true);
                if was == Some(false) {
                    if let Some(j) = journal {
                        j.record(EventKind::MdsRecovered { mds });
                    }
                }
                Applied::Membership { mds, alive: true }
            }
            Command::MdsDead { mds } => {
                self.alive.insert(mds, false);
                if let Some(j) = journal {
                    j.record(EventKind::MdsDown { mds });
                }
                Applied::Membership { mds, alive: false }
            }
            Command::LeaseAcquire {
                node,
                holder,
                now_ms,
            } => {
                let free = match self.leases.get(&node) {
                    None => true,
                    Some(l) => l.expires_at_ms <= now_ms,
                };
                if free {
                    self.next_fence += 1;
                    let fence = self.next_fence;
                    self.leases.insert(
                        node,
                        LeaseState {
                            holder,
                            fence,
                            expires_at_ms: now_ms + self.lease_ms,
                        },
                    );
                    self.grants += 1;
                    if let Some(j) = journal {
                        j.record(EventKind::LeaseGranted {
                            node,
                            fence,
                            holder,
                        });
                    }
                    Applied::Granted {
                        node,
                        fence,
                        holder,
                    }
                } else {
                    self.lease_busy += 1;
                    Applied::Busy
                }
            }
            Command::LeaseRelease { node, fence } => {
                if self.leases.get(&node).is_some_and(|l| l.fence == fence) {
                    self.leases.remove(&node);
                    Applied::Released
                } else {
                    Applied::Noop
                }
            }
            Command::GlWrite {
                node,
                fence,
                now_ms,
            } => {
                let valid = self
                    .leases
                    .get(&node)
                    .is_some_and(|l| l.fence == fence && l.expires_at_ms > now_ms);
                if valid {
                    let v = self.gl_versions.entry(node).or_insert(0);
                    *v += 1;
                    Applied::GlWritten { node, version: *v }
                } else {
                    // The regression this module exists for: a lease
                    // that expired while its write was in flight must
                    // be *rejected* here, never silently applied.
                    self.fence_rejections += 1;
                    if let Some(j) = journal {
                        j.record(EventKind::FenceRejected { node, fence });
                    }
                    Applied::Rejected { node, fence }
                }
            }
            Command::Migrate { subtree, from, to } => {
                self.owner.insert(subtree, to);
                Applied::Migrated { subtree, from, to }
            }
        }
    }

    /// The current lease on `node`, if any entry ever granted one that
    /// was not released (it may be expired — check `expires_at_ms`).
    #[must_use]
    pub fn lease(&self, node: u64) -> Option<LeaseState> {
        self.leases.get(&node).copied()
    }

    /// Committed GL version of `node` (0 if never written).
    #[must_use]
    pub fn gl_version(&self, node: u64) -> u64 {
        self.gl_versions.get(&node).copied().unwrap_or(0)
    }

    /// The highest fence ever granted.
    #[must_use]
    pub fn max_fence(&self) -> u64 {
        self.next_fence
    }
}

/// One consensus RPC between replicas. The wire codec lives in
/// [`crate::message`] next to the MDS request/response frames; the
/// cluster bus carries only encoded frames, so every message crosses
/// the real codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerMsg {
    /// A candidate soliciting a vote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Candidate's id.
        candidate: u16,
        /// Index of the candidate's last log entry.
        last_log_index: u64,
        /// Term of the candidate's last log entry.
        last_log_term: u64,
    },
    /// A vote response.
    VoteReply {
        /// Voter's current term (for candidate step-down).
        term: u64,
        /// Voter's id.
        voter: u16,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Log replication / heartbeat from the leader.
    Append {
        /// Leader's term.
        term: u64,
        /// Leader's id (becomes the follower's redirect hint).
        leader: u16,
        /// Index of the entry preceding `entries`.
        prev_index: u64,
        /// Term of that entry.
        prev_term: u64,
        /// Leader's commit index.
        commit: u64,
        /// Entries to append (empty for a pure heartbeat).
        entries: Vec<Entry>,
    },
    /// A follower's replication response.
    AppendReply {
        /// Follower's current term (for leader step-down).
        term: u64,
        /// Follower's id.
        follower: u16,
        /// Whether the append matched and was stored.
        success: bool,
        /// On success, the follower's new match index; on failure, its
        /// log length (conflict back-off hint).
        match_index: u64,
    },
}

/// Election and replication timing, in the caller's millisecond clock
/// domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsensusTiming {
    /// Leader heartbeat (empty Append) period.
    pub heartbeat_ms: u64,
    /// Minimum election timeout.
    pub election_min_ms: u64,
    /// Uniform jitter added on top of the minimum (randomized timeouts
    /// are what break split votes).
    pub election_jitter_ms: u64,
    /// Base one-way message delay on the replica bus.
    pub net_delay_ms: u64,
}

impl Default for ConsensusTiming {
    fn default() -> Self {
        ConsensusTiming {
            heartbeat_ms: 20,
            election_min_ms: 100,
            election_jitter_ms: 100,
            net_delay_ms: 1,
        }
    }
}

impl ConsensusTiming {
    /// An upper bound on how long one uncontested re-election may take:
    /// worst-case timeout draw plus two message delays, with one extra
    /// full round for a split vote. Chaos schedules assert observed
    /// failovers stay under this.
    #[must_use]
    pub fn reelect_bound_ms(&self) -> u64 {
        2 * (self.election_min_ms + self.election_jitter_ms + 4 * self.net_delay_ms.max(1))
    }
}

/// A replica's role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Passive: applies committed entries, votes, times out into
    /// candidacy.
    Follower,
    /// Campaigning for leadership.
    Candidate,
    /// Accepts proposals and replicates the log.
    Leader,
}

/// One Monitor replica: a Raft participant plus its copy of the
/// replicated [`ControlState`].
#[derive(Debug)]
pub struct Replica {
    id: u16,
    n: usize,
    timing: ConsensusTiming,
    lease_ms: u64,
    role: Role,
    current_term: u64,
    voted_for: Option<u16>,
    log: Vec<Entry>,
    commit_index: u64,
    state: ControlState,
    leader_hint: Option<u16>,
    next_index: Vec<u64>,
    match_index: Vec<u64>,
    votes: BTreeSet<u16>,
    election_deadline_ms: u64,
    heartbeat_due_ms: u64,
    campaign_started_ms: u64,
    rng: StdRng,
    wal: Option<WalWriter>,
    elections: Option<Arc<Counter>>,
    tracer: Option<Arc<Tracer>>,
    election_ctx: Option<SpanCtx>,
}

/// Mixes the cluster seed, replica id and restart generation into one
/// RNG seed, so restarts redraw timeouts deterministically but
/// differently from the first life.
fn replica_seed(seed: u64, id: u16, generation: u64) -> u64 {
    seed ^ (u64::from(id) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ generation.wrapping_mul(0xd1b5_4a32_d192_ed03)
}

impl Replica {
    /// A fresh in-memory replica (no WAL). `now_ms` anchors the first
    /// election-timeout draw.
    #[must_use]
    pub fn new(
        id: u16,
        n: usize,
        seed: u64,
        timing: ConsensusTiming,
        lease_ms: u64,
        now_ms: u64,
    ) -> Self {
        let mut r = Replica {
            id,
            n,
            timing,
            lease_ms,
            role: Role::Follower,
            current_term: 0,
            voted_for: None,
            log: Vec::new(),
            commit_index: 0,
            state: ControlState::new(lease_ms),
            leader_hint: None,
            next_index: vec![1; n],
            match_index: vec![0; n],
            votes: BTreeSet::new(),
            election_deadline_ms: 0,
            heartbeat_due_ms: 0,
            campaign_started_ms: 0,
            rng: StdRng::seed_from_u64(replica_seed(seed, id, 0)),
            wal: None,
            elections: None,
            tracer: None,
            election_ctx: None,
        };
        r.reset_election_deadline(now_ms);
        r
    }

    /// Opens (or creates) a durable replica whose hard state and log
    /// live in `dir`: recovery scans the WAL segments, truncates a torn
    /// tail, and replays term/vote/entries/truncations in order.
    ///
    /// # Errors
    ///
    /// Any [`d2tree_store::StoreError`] from the directory or segment
    /// scan; a CRC-valid frame that does not decode as a consensus
    /// event is corruption and fails loudly.
    #[allow(clippy::too_many_arguments)]
    pub fn recover(
        id: u16,
        n: usize,
        seed: u64,
        timing: ConsensusTiming,
        lease_ms: u64,
        now_ms: u64,
        generation: u64,
        dir: &Path,
        segment_bytes: u64,
    ) -> StoreResult<Self> {
        fs::create_dir_all(dir)?;
        let segments = list_segments(dir)?;
        let mut term = 0u64;
        let mut voted_for: Option<u16> = None;
        let mut log: Vec<Entry> = Vec::new();
        let mut next_lsn = 0u64;
        let mut last_segment: Option<(u64, u64)> = None;
        for (i, (first_lsn, path)) in segments.iter().enumerate() {
            let is_last = i + 1 == segments.len();
            let scan = scan_segment(path, *first_lsn, is_last)?;
            for frame in &scan.frames {
                next_lsn = frame.lsn + 1;
                replay_consensus_record(&frame.record, &mut term, &mut voted_for, &mut log)?;
            }
            if is_last {
                last_segment = Some((*first_lsn, scan.valid_len));
            }
        }
        let wal = WalWriter::open(dir, segment_bytes, last_segment, next_lsn)?;
        let mut r = Replica::new(id, n, seed, timing, lease_ms, now_ms);
        r.rng = StdRng::seed_from_u64(replica_seed(seed, id, generation));
        r.current_term = term;
        r.voted_for = voted_for;
        r.log = log;
        r.wal = Some(wal);
        r.reset_election_deadline(now_ms);
        Ok(r)
    }

    /// Attaches a registry (election counter).
    #[must_use]
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.elections = Some(registry.counter(MetricKey::global(names::ELECTIONS_TOTAL)));
        self
    }

    /// Attaches a tracer for election/replication spans.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// This replica's id.
    #[must_use]
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Current role.
    #[must_use]
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current term.
    #[must_use]
    pub fn term(&self) -> u64 {
        self.current_term
    }

    /// Commit index (entries up to here are applied to
    /// [`Replica::state`]).
    #[must_use]
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// The replica's committed log prefix view.
    #[must_use]
    pub fn log(&self) -> &[Entry] {
        &self.log
    }

    /// The replica's applied state machine — consulted for reads even
    /// when the cluster has no leader (read-only degradation).
    #[must_use]
    pub fn state(&self) -> &ControlState {
        &self.state
    }

    /// Where this replica believes the leader is.
    #[must_use]
    pub fn leader_hint(&self) -> Option<u16> {
        self.leader_hint
    }

    /// Forces the election timeout to expire at the next tick —
    /// applied to all replicas at once this manufactures a guaranteed
    /// split vote (every replica votes for itself). A leader abdicates
    /// to follower first, so it too campaigns for a fresh term.
    pub fn force_timeout(&mut self, now_ms: u64) {
        if self.role == Role::Leader {
            self.role = Role::Follower;
            self.votes.clear();
            self.election_ctx = None;
        }
        self.election_deadline_ms = now_ms;
    }

    fn reset_election_deadline(&mut self, now_ms: u64) {
        let jitter = if self.timing.election_jitter_ms == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.timing.election_jitter_ms)
        };
        self.election_deadline_ms = now_ms + self.timing.election_min_ms + jitter;
    }

    fn last_log_index(&self) -> u64 {
        self.log.len() as u64
    }

    fn last_log_term(&self) -> u64 {
        self.log.last().map_or(0, |e| e.term)
    }

    fn persist_hard_state(&mut self) {
        if let Some(w) = self.wal.as_mut() {
            let rec = MdsRecord::Consensus {
                term: self.current_term,
                index: self.voted_for.map_or(NO_VOTE, u64::from),
                op: OP_HARD_STATE,
                a: 0,
                b: 0,
                c: 0,
            };
            w.append(&rec);
            w.sync().expect("consensus WAL sync");
        }
    }

    fn persist_entry(&mut self, e: &Entry) {
        if let Some(w) = self.wal.as_mut() {
            let (op, a, b, c) = e.cmd.to_wire();
            let rec = MdsRecord::Consensus {
                term: e.term,
                index: e.index,
                op: OP_ENTRY_BASE + op,
                a,
                b,
                c,
            };
            w.append(&rec);
            w.sync().expect("consensus WAL sync");
        }
    }

    fn persist_truncate(&mut self, from_index: u64) {
        if let Some(w) = self.wal.as_mut() {
            let rec = MdsRecord::Consensus {
                term: self.current_term,
                index: from_index,
                op: OP_TRUNCATE,
                a: 0,
                b: 0,
                c: 0,
            };
            w.append(&rec);
            w.sync().expect("consensus WAL sync");
        }
    }

    fn step_down(&mut self, term: u64, now_ms: u64) {
        self.current_term = term;
        self.voted_for = None;
        self.role = Role::Follower;
        self.votes.clear();
        self.election_ctx = None;
        self.persist_hard_state();
        self.reset_election_deadline(now_ms);
    }

    fn start_election(&mut self, now_ms: u64, out: &mut Vec<(u16, PeerMsg)>) {
        self.current_term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.id);
        self.votes.clear();
        self.votes.insert(self.id);
        self.campaign_started_ms = now_ms;
        self.persist_hard_state();
        self.reset_election_deadline(now_ms);
        if let Some(c) = &self.elections {
            c.inc();
        }
        for peer in 0..self.n as u16 {
            if peer != self.id {
                out.push((
                    peer,
                    PeerMsg::RequestVote {
                        term: self.current_term,
                        candidate: self.id,
                        last_log_index: self.last_log_index(),
                        last_log_term: self.last_log_term(),
                    },
                ));
            }
        }
        if self.votes.len() * 2 > self.n {
            // Single-replica cluster: the self-vote already wins.
            self.become_leader(now_ms);
        }
    }

    fn become_leader(&mut self, now_ms: u64) {
        self.role = Role::Leader;
        self.leader_hint = Some(self.id);
        let last = self.last_log_index();
        for p in 0..self.n {
            self.next_index[p] = last + 1;
            self.match_index[p] = 0;
        }
        self.heartbeat_due_ms = now_ms; // replicate immediately
        if let Some(t) = self.tracer.clone() {
            if let Some(ctx) = t.begin() {
                let start_us = self.campaign_started_ms.saturating_mul(1_000);
                let dur_us = now_ms.saturating_sub(self.campaign_started_ms).max(1) * 1_000;
                t.record(
                    Span::root(ctx, span_names::ELECTION, start_us, dur_us)
                        .on_mds(self.id)
                        .with_arg(ArgKey::Term, self.current_term),
                );
                self.election_ctx = Some(ctx);
            }
        }
        // Term-start no-op: commits from earlier terms become
        // committable once this entry gains a majority.
        let _ = self.propose(Command::Noop, now_ms);
    }

    /// Leader-side proposal. Appends to the local log and persists;
    /// replication happens on the next heartbeat tick (virtual-time
    /// group commit).
    ///
    /// # Errors
    ///
    /// `Err(leader_hint)` when this replica is not the leader.
    pub fn propose(&mut self, cmd: Command, _now_ms: u64) -> Result<(u64, u64), Option<u16>> {
        if self.role != Role::Leader {
            return Err(self.leader_hint);
        }
        let entry = Entry {
            term: self.current_term,
            index: self.last_log_index() + 1,
            cmd,
        };
        self.log.push(entry);
        self.persist_entry(&entry);
        self.match_index[self.id as usize] = entry.index;
        Ok((entry.term, entry.index))
    }

    /// One virtual-time step: election timeout (follower/candidate) or
    /// heartbeat/replication fan-out (leader). Outgoing messages are
    /// pushed as `(destination, message)`.
    pub fn tick(&mut self, now_ms: u64, out: &mut Vec<(u16, PeerMsg)>) {
        self.apply_committed();
        match self.role {
            Role::Follower | Role::Candidate => {
                if now_ms >= self.election_deadline_ms {
                    self.start_election(now_ms, out);
                }
            }
            Role::Leader => {
                if now_ms >= self.heartbeat_due_ms {
                    self.heartbeat_due_ms = now_ms + self.timing.heartbeat_ms;
                    for peer in 0..self.n as u16 {
                        if peer != self.id {
                            out.push((peer, self.append_for(peer)));
                        }
                    }
                }
            }
        }
    }

    fn append_for(&self, peer: u16) -> PeerMsg {
        let next = self.next_index[peer as usize].max(1);
        let prev_index = next - 1;
        let prev_term = if prev_index == 0 {
            0
        } else {
            self.log[prev_index as usize - 1].term
        };
        // Bounded batches keep frames small and give the fault injector
        // more distinct messages to perturb.
        let entries: Vec<Entry> = self
            .log
            .iter()
            .skip(prev_index as usize)
            .take(16)
            .copied()
            .collect();
        PeerMsg::Append {
            term: self.current_term,
            leader: self.id,
            prev_index,
            prev_term,
            commit: self.commit_index,
            entries,
        }
    }

    /// Handles one incoming consensus message.
    pub fn receive(&mut self, msg: PeerMsg, now_ms: u64, out: &mut Vec<(u16, PeerMsg)>) {
        match msg {
            PeerMsg::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                if term > self.current_term {
                    self.step_down(term, now_ms);
                }
                let up_to_date = last_log_term > self.last_log_term()
                    || (last_log_term == self.last_log_term()
                        && last_log_index >= self.last_log_index());
                let granted = term == self.current_term
                    && self.voted_for.is_none_or(|v| v == candidate)
                    && up_to_date;
                if granted {
                    self.voted_for = Some(candidate);
                    self.persist_hard_state();
                    self.reset_election_deadline(now_ms);
                }
                out.push((
                    candidate,
                    PeerMsg::VoteReply {
                        term: self.current_term,
                        voter: self.id,
                        granted,
                    },
                ));
            }
            PeerMsg::VoteReply {
                term,
                voter,
                granted,
            } => {
                if term > self.current_term {
                    self.step_down(term, now_ms);
                    return;
                }
                if self.role == Role::Candidate && term == self.current_term && granted {
                    self.votes.insert(voter);
                    if self.votes.len() * 2 > self.n {
                        self.become_leader(now_ms);
                    }
                }
            }
            PeerMsg::Append {
                term,
                leader,
                prev_index,
                prev_term,
                commit,
                entries,
            } => {
                if term < self.current_term {
                    out.push((
                        leader,
                        PeerMsg::AppendReply {
                            term: self.current_term,
                            follower: self.id,
                            success: false,
                            match_index: self.last_log_index(),
                        },
                    ));
                    return;
                }
                if term > self.current_term || self.role != Role::Follower {
                    self.step_down(term, now_ms);
                }
                self.leader_hint = Some(leader);
                self.reset_election_deadline(now_ms);
                let prev_ok = prev_index == 0
                    || (prev_index <= self.last_log_index()
                        && self.log[prev_index as usize - 1].term == prev_term);
                if !prev_ok {
                    out.push((
                        leader,
                        PeerMsg::AppendReply {
                            term: self.current_term,
                            follower: self.id,
                            success: false,
                            match_index: self.last_log_index().min(prev_index.saturating_sub(1)),
                        },
                    ));
                    return;
                }
                for e in &entries {
                    let idx = e.index;
                    debug_assert!(idx >= 1);
                    if idx <= self.last_log_index() {
                        if self.log[idx as usize - 1].term != e.term {
                            // Conflict: drop our divergent suffix, then
                            // take the leader's entry.
                            self.log.truncate(idx as usize - 1);
                            self.persist_truncate(idx);
                            self.log.push(*e);
                            self.persist_entry(e);
                        }
                    } else {
                        self.log.push(*e);
                        self.persist_entry(e);
                    }
                }
                let new_commit = commit.min(self.last_log_index());
                if new_commit > self.commit_index {
                    self.commit_index = new_commit;
                    self.apply_committed();
                }
                out.push((
                    leader,
                    PeerMsg::AppendReply {
                        term: self.current_term,
                        follower: self.id,
                        success: true,
                        match_index: prev_index + entries.len() as u64,
                    },
                ));
            }
            PeerMsg::AppendReply {
                term,
                follower,
                success,
                match_index,
            } => {
                if term > self.current_term {
                    self.step_down(term, now_ms);
                    return;
                }
                if self.role != Role::Leader || term != self.current_term {
                    return;
                }
                let f = follower as usize;
                if success {
                    if match_index > self.match_index[f] {
                        self.match_index[f] = match_index;
                    }
                    self.next_index[f] = self.match_index[f] + 1;
                    self.advance_commit(now_ms);
                } else {
                    // Back off past the conflict, helped by the
                    // follower's log-length hint.
                    self.next_index[f] = self.next_index[f]
                        .saturating_sub(1)
                        .clamp(1, match_index + 1);
                }
            }
        }
    }

    /// Leader commit rule: the highest index replicated on a majority,
    /// provided the entry is from the current term.
    fn advance_commit(&mut self, now_ms: u64) {
        let mut candidate = self.commit_index;
        for idx in (self.commit_index + 1)..=self.last_log_index() {
            let replicas = self.match_index.iter().filter(|&&m| m >= idx).count();
            if replicas * 2 > self.n && self.log[idx as usize - 1].term == self.current_term {
                candidate = idx;
            }
        }
        if candidate > self.commit_index {
            let committed = candidate - self.commit_index;
            self.commit_index = candidate;
            self.apply_committed();
            if let (Some(t), Some(ctx)) = (self.tracer.clone(), self.election_ctx) {
                let sctx = t.child(ctx);
                let start_us = now_ms.saturating_mul(1_000);
                t.record(
                    Span::child(ctx, sctx.span, span_names::REPLICATE, start_us, committed)
                        .on_mds(self.id)
                        .with_arg(ArgKey::Term, self.current_term),
                );
            }
        }
    }

    fn apply_committed(&mut self) {
        while self.state.applied < self.commit_index {
            let idx = self.state.applied as usize; // next entry, 0-based
            let entry = self.log[idx];
            // Replicas apply silently; the cluster's observer is the
            // single journaling applier.
            let _ = self.state.apply(&entry, None);
        }
    }
}

/// Replays one recovered WAL record into hard state + log.
fn replay_consensus_record(
    record: &MdsRecord,
    term: &mut u64,
    voted_for: &mut Option<u16>,
    log: &mut Vec<Entry>,
) -> StoreResult<()> {
    let corrupt = d2tree_store::StoreError::Corrupt;
    let MdsRecord::Consensus {
        term: rterm,
        index,
        op,
        a,
        b,
        c,
    } = *record
    else {
        return Err(corrupt(format!(
            "non-consensus record `{}` in a replica log",
            record.label()
        )));
    };
    match op {
        OP_HARD_STATE => {
            *term = rterm;
            *voted_for = if index == NO_VOTE {
                None
            } else {
                u16::try_from(index)
                    .map(Some)
                    .map_err(|_| corrupt(format!("hard-state vote {index} overflows u16")))?
            };
        }
        OP_TRUNCATE => {
            if index < 1 || index > log.len() as u64 + 1 {
                return Err(corrupt(format!(
                    "truncate to {index} outside log of {}",
                    log.len()
                )));
            }
            log.truncate(index as usize - 1);
        }
        op if op >= OP_ENTRY_BASE => {
            let cmd = Command::from_wire(op - OP_ENTRY_BASE, a, b, c)
                .ok_or_else(|| corrupt(format!("unknown consensus command opcode {op}")))?;
            if index != log.len() as u64 + 1 {
                return Err(corrupt(format!(
                    "entry index {index} breaks dense log of {}",
                    log.len()
                )));
            }
            log.push(Entry {
                term: rterm,
                index,
                cmd,
            });
        }
        op => return Err(corrupt(format!("unknown consensus opcode {op}"))),
    }
    Ok(())
}

/// Deterministic delivery bus: frames ordered by `(deliver_at, seq)`.
#[derive(Debug, Default)]
struct MsgBus {
    seq: u64,
    queue: BTreeMap<(u64, u64), (u16, Bytes)>,
}

impl MsgBus {
    fn send(&mut self, deliver_at_ms: u64, to: u16, frame: Bytes) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.insert((deliver_at_ms, seq), (to, frame));
    }

    fn drain_due(&mut self, now_ms: u64) -> Vec<(u16, Bytes)> {
        let mut due = Vec::new();
        let keys: Vec<(u64, u64)> = self
            .queue
            .range(..=(now_ms, u64::MAX))
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            if let Some(v) = self.queue.remove(&k) {
                due.push(v);
            }
        }
        due
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Cluster-level configuration.
#[derive(Debug, Clone)]
pub struct ConsensusConfig {
    /// Number of Monitor replicas (3 tolerates one failure).
    pub replicas: usize,
    /// Timing parameters.
    pub timing: ConsensusTiming,
    /// Lease duration granted by the replicated lock state machine.
    pub lease_ms: u64,
    /// When set, each replica persists its log under
    /// `<wal_root>/replica-<id>/` and crash-restart recovers from disk;
    /// when `None`, restarts model a reboot with intact durable state.
    pub wal_root: Option<PathBuf>,
    /// WAL segment size (small values exercise rotation).
    pub segment_bytes: u64,
}

impl Default for ConsensusConfig {
    fn default() -> Self {
        ConsensusConfig {
            replicas: 3,
            timing: ConsensusTiming::default(),
            lease_ms: 200,
            wal_root: None,
            segment_bytes: 16 * 1024,
        }
    }
}

/// Outcome of routing one proposal at a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The leader accepted and logged the command.
    Accepted {
        /// Term of the new entry.
        term: u64,
        /// Index of the new entry.
        index: u64,
    },
    /// The contacted replica is not the leader; retry at the hint.
    NotLeader {
        /// Where the replica believes the leader is.
        hint: Option<u16>,
    },
    /// The contacted replica is down.
    Down,
}

/// The replicated control plane: replicas, their deterministic message
/// bus, and a single journaling observer applying the canonical
/// committed prefix.
#[derive(Debug)]
pub struct ConsensusCluster {
    seed: u64,
    config: ConsensusConfig,
    replicas: Vec<Replica>,
    up: Vec<bool>,
    generations: Vec<u64>,
    bus: MsgBus,
    observer: ControlState,
    canonical: Vec<Entry>,
    journal: Option<Arc<EventJournal>>,
    registry: Option<Arc<Registry>>,
    tracer: Option<Arc<Tracer>>,
    commits: Option<Arc<Counter>>,
    leader_changes: Option<Arc<Counter>>,
    failover_ms: Option<Arc<Histogram>>,
    leaders_by_term: BTreeMap<u64, u16>,
    last_leader: Option<u16>,
    leader_lost_at_ms: Option<u64>,
    last_failover_ms: Option<u64>,
    violations: Vec<String>,
}

impl ConsensusCluster {
    /// Builds the cluster; with `wal_root` set, replicas recover any
    /// state already on disk (so a rebuilt cluster resumes its log).
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas == 0`, or on a WAL I/O error while
    /// opening replica logs.
    #[must_use]
    pub fn new(seed: u64, config: ConsensusConfig) -> Self {
        assert!(config.replicas > 0, "a control plane needs replicas");
        let n = config.replicas;
        let replicas: Vec<Replica> = (0..n as u16)
            .map(|id| match &config.wal_root {
                Some(root) => Replica::recover(
                    id,
                    n,
                    seed,
                    config.timing,
                    config.lease_ms,
                    0,
                    0,
                    &root.join(format!("replica-{id}")),
                    config.segment_bytes,
                )
                .expect("open consensus WAL"),
                None => Replica::new(id, n, seed, config.timing, config.lease_ms, 0),
            })
            .collect();
        ConsensusCluster {
            seed,
            observer: ControlState::new(config.lease_ms),
            config,
            replicas,
            up: vec![true; n],
            generations: vec![0; n],
            bus: MsgBus::default(),
            canonical: Vec::new(),
            journal: None,
            registry: None,
            tracer: None,
            commits: None,
            leader_changes: None,
            failover_ms: None,
            leaders_by_term: BTreeMap::new(),
            last_leader: None,
            leader_lost_at_ms: None,
            last_failover_ms: None,
            violations: Vec::new(),
        }
    }

    /// Attaches a registry: commit/election/leader-change counters and
    /// the failover histogram.
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.commits = Some(registry.counter(MetricKey::global(names::LOG_COMMITS_TOTAL)));
        self.leader_changes =
            Some(registry.counter(MetricKey::global(names::LEADER_CHANGES_TOTAL)));
        self.failover_ms = Some(registry.histogram(MetricKey::global(names::MONITOR_FAILOVER_MS)));
        self.replicas = std::mem::take(&mut self.replicas)
            .into_iter()
            .map(|r| r.with_registry(&registry))
            .collect();
        self.registry = Some(registry);
        self
    }

    /// Attaches the journal the observer records commit events into.
    #[must_use]
    pub fn with_journal(mut self, journal: Arc<EventJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Attaches a tracer (election and replication spans on every
    /// replica).
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.replicas = std::mem::take(&mut self.replicas)
            .into_iter()
            .map(|r| r.with_tracer(Arc::clone(&tracer)))
            .collect();
        self.tracer = Some(tracer);
        self
    }

    /// Number of replicas.
    #[must_use]
    pub fn n(&self) -> usize {
        self.replicas.len()
    }

    /// Whether replica `id` is up.
    #[must_use]
    pub fn is_up(&self, id: u16) -> bool {
        self.up.get(id as usize).copied().unwrap_or(false)
    }

    /// Live replicas.
    #[must_use]
    pub fn up_count(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }

    /// A replica, for inspection.
    #[must_use]
    pub fn replica(&self, id: u16) -> &Replica {
        &self.replicas[id as usize]
    }

    /// The current leader: the live replica leading the highest term.
    #[must_use]
    pub fn leader(&self) -> Option<u16> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|&(i, r)| self.up[i] && r.role() == Role::Leader)
            .max_by_key(|(_, r)| r.term())
            .map(|(i, _)| i as u16)
    }

    /// The journaling observer's state: the canonical committed view
    /// of leases, membership, GL versions and ownership. Readable even
    /// with zero live replicas (read-only degradation).
    #[must_use]
    pub fn observer(&self) -> &ControlState {
        &self.observer
    }

    /// `(term, leader)` pairs observed so far, one per term that
    /// elected anyone.
    #[must_use]
    pub fn leaders_by_term(&self) -> &BTreeMap<u64, u16> {
        &self.leaders_by_term
    }

    /// The most recent leader-loss → re-commit gap, if a failover
    /// completed.
    #[must_use]
    pub fn last_failover_ms(&self) -> Option<u64> {
        self.last_failover_ms
    }

    /// Messages currently in flight on the replica bus.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.bus.len()
    }

    /// Crashes a replica: it stops processing, its in-flight messages
    /// still drain to others, and (with a WAL) only its durable state
    /// survives to [`ConsensusCluster::restart`].
    pub fn kill(&mut self, id: u16, now_ms: u64) -> bool {
        let k = id as usize;
        if !self.up[k] {
            return false;
        }
        self.up[k] = false;
        if self.last_leader == Some(id) && self.leader_lost_at_ms.is_none() {
            self.leader_lost_at_ms = Some(now_ms);
        }
        true
    }

    /// Restarts a crashed replica. With a WAL root the replica is
    /// rebuilt from disk (scan + replay); without one the restart
    /// models a reboot that kept its durable term/vote/log but lost
    /// all volatile state (role, votes, commit index, applied state).
    ///
    /// # Panics
    ///
    /// Panics on a WAL I/O or corruption error during recovery.
    pub fn restart(&mut self, id: u16, now_ms: u64) -> bool {
        let k = id as usize;
        if self.up[k] {
            return false;
        }
        self.generations[k] += 1;
        match &self.config.wal_root {
            Some(root) => {
                let mut fresh = Replica::recover(
                    id,
                    self.replicas.len(),
                    self.seed,
                    self.config.timing,
                    self.config.lease_ms,
                    now_ms,
                    self.generations[k],
                    &root.join(format!("replica-{id}")),
                    self.config.segment_bytes,
                )
                .expect("recover consensus WAL");
                if let Some(reg) = &self.registry {
                    fresh = fresh.with_registry(reg);
                }
                if let Some(t) = &self.tracer {
                    fresh = fresh.with_tracer(Arc::clone(t));
                }
                self.replicas[k] = fresh;
            }
            None => {
                let r = &mut self.replicas[k];
                r.role = Role::Follower;
                r.votes.clear();
                r.commit_index = 0;
                r.state = ControlState::new(r.lease_ms);
                r.leader_hint = None;
                r.election_ctx = None;
                r.rng = StdRng::seed_from_u64(replica_seed(self.seed, id, self.generations[k]));
                r.reset_election_deadline(now_ms);
            }
        }
        self.up[k] = true;
        true
    }

    /// Forces every live replica's election timeout to expire on the
    /// next tick — a manufactured split vote (each votes for itself),
    /// resolved by the next round's randomized timeouts.
    pub fn force_split_vote(&mut self, now_ms: u64) {
        for (i, r) in self.replicas.iter_mut().enumerate() {
            if self.up[i] {
                r.force_timeout(now_ms);
            }
        }
    }

    /// Routes a proposal at replica `target`.
    pub fn submit(&mut self, target: u16, cmd: Command, now_ms: u64) -> SubmitOutcome {
        let k = target as usize;
        if k >= self.replicas.len() || !self.up[k] {
            return SubmitOutcome::Down;
        }
        match self.replicas[k].propose(cmd, now_ms) {
            Ok((term, index)) => SubmitOutcome::Accepted { term, index },
            Err(hint) => SubmitOutcome::NotLeader { hint },
        }
    }

    /// One virtual-time step: deliver due frames, tick every live
    /// replica, route fresh messages through the fault injector, then
    /// advance the canonical committed prefix through the observer.
    /// Returns the entries newly committed (observer-applied) this
    /// tick with their outcomes.
    pub fn tick(&mut self, now_ms: u64, injector: Option<&FaultInjector>) -> Vec<(Entry, Applied)> {
        let mut outbox: Vec<(u16, PeerMsg)> = Vec::new();

        // 1. Deliver frames that are due. A frame addressed to a dead
        //    replica is dropped at delivery (its NIC is off).
        for (to, frame) in self.bus.drain_due(now_ms) {
            let k = to as usize;
            if !self.up[k] {
                continue;
            }
            let mut buf = frame;
            match PeerMsg::decode(&mut buf) {
                Some(msg) => self.replicas[k].receive(msg, now_ms, &mut outbox),
                None => self
                    .violations
                    .push(format!("t={now_ms}: undecodable frame for replica {to}")),
            }
        }

        // 2. Tick replicas in id order (deterministic).
        for (i, r) in self.replicas.iter_mut().enumerate() {
            if self.up[i] {
                r.tick(now_ms, &mut outbox);
            }
        }

        // 3. Route the outbox through the codec, the fault injector and
        //    the bus.
        for (to, msg) in outbox {
            let frame = msg.encode();
            let deliver_at = now_ms + self.config.timing.net_delay_ms;
            let decision = injector.map_or(FaultDecision::Deliver, |i| {
                i.decide(NetEdge::MonitorPeer(to), now_ms)
            });
            match decision {
                FaultDecision::Deliver => self.bus.send(deliver_at, to, frame),
                FaultDecision::Drop => {}
                FaultDecision::Delay(extra_ms) => {
                    self.bus.send(deliver_at + extra_ms, to, frame);
                }
                FaultDecision::DeliverTwice => {
                    self.bus.send(deliver_at, to, frame.clone());
                    self.bus.send(deliver_at, to, frame);
                }
            }
        }

        // 4. Leadership bookkeeping: election safety plus the
        //    journal/metric trail for every new (term, leader) pair.
        self.harvest_leadership(now_ms);

        // 5. Advance the canonical committed prefix through the
        //    journaling observer.
        self.advance_observer(now_ms)
    }

    fn harvest_leadership(&mut self, now_ms: u64) {
        for (i, r) in self.replicas.iter().enumerate() {
            if !self.up[i] || r.role() != Role::Leader {
                continue;
            }
            let id = i as u16;
            let term = r.term();
            match self.leaders_by_term.get(&term) {
                Some(&prev) if prev != id => {
                    self.violations.push(format!(
                        "t={now_ms}: two leaders in term {term}: {prev} and {id}"
                    ));
                }
                Some(_) => {}
                None => {
                    self.leaders_by_term.insert(term, id);
                    if let Some(j) = &self.journal {
                        j.record(EventKind::LeaderElected { replica: id, term });
                    }
                    if self.last_leader != Some(id) {
                        if let Some(c) = &self.leader_changes {
                            c.inc();
                        }
                    }
                    if let Some(lost) = self.leader_lost_at_ms.take() {
                        let gap = now_ms.saturating_sub(lost);
                        self.last_failover_ms = Some(gap);
                        if let Some(h) = &self.failover_ms {
                            h.record(gap);
                        }
                    }
                    self.last_leader = Some(id);
                }
            }
        }
    }

    fn advance_observer(&mut self, now_ms: u64) -> Vec<(Entry, Applied)> {
        let mut applied = Vec::new();
        loop {
            let next = self.observer.applied + 1;
            // Any live replica whose commit frontier covers `next` can
            // vouch for the entry; committed prefixes are identical by
            // the log-matching property (cross-checked below).
            let source = self
                .replicas
                .iter()
                .enumerate()
                .find(|&(i, r)| self.up[i] && r.commit_index() >= next);
            let Some((_, r)) = source else { break };
            let entry = r.log()[next as usize - 1];
            if self.canonical.len() as u64 >= next {
                let seen = self.canonical[next as usize - 1];
                if seen != entry {
                    self.violations.push(format!(
                        "t={now_ms}: committed entry {next} diverged: {seen:?} vs {entry:?}"
                    ));
                    break;
                }
            } else {
                self.canonical.push(entry);
            }
            let outcome = self.observer.apply(&entry, self.journal.as_deref());
            if let Some(c) = &self.commits {
                c.inc();
            }
            applied.push((entry, outcome));
        }
        applied
    }

    /// Safety-invariant sweep: accumulated violations (election safety,
    /// canonical divergence) plus a full log-matching check of every
    /// live replica's committed prefix against the canonical log.
    #[must_use]
    pub fn check_invariants(&self) -> Vec<String> {
        let mut out = self.violations.clone();
        for (i, r) in self.replicas.iter().enumerate() {
            if !self.up[i] {
                continue;
            }
            let upto = r.commit_index().min(self.canonical.len() as u64);
            for idx in 1..=upto {
                let ours = r.log()[idx as usize - 1];
                let canon = self.canonical[idx as usize - 1];
                if ours != canon {
                    out.push(format!(
                        "replica {i}: committed entry {idx} mismatches canonical: \
                         {ours:?} vs {canon:?}"
                    ));
                }
            }
            if r.commit_index() > self.canonical.len() as u64 {
                out.push(format!(
                    "replica {i}: commit index {} beyond canonical {}",
                    r.commit_index(),
                    self.canonical.len()
                ));
            }
        }
        out
    }
}

/// Leader discovery for control-plane submitters: remembers the last
/// known leader, follows `NotLeader` redirect hints, and spaces
/// re-attempts with the shared [`RetryPolicy`]'s capped exponential
/// backoff + seeded jitter. Every redirect/retry is counted in
/// `monitor_retries_total`.
#[derive(Debug)]
pub struct LeaderClient {
    policy: RetryPolicy,
    rng: StdRng,
    target: u16,
    n: u16,
    attempt: usize,
    next_try_ms: u64,
    retries: u64,
    counter: Option<Arc<Counter>>,
}

impl LeaderClient {
    /// A client that first contacts replica 0 of an `n`-replica
    /// cluster, with the default retry policy.
    #[must_use]
    pub fn new(seed: u64, n: u16) -> Self {
        LeaderClient {
            policy: RetryPolicy::default(),
            rng: StdRng::seed_from_u64(seed ^ 0xc2b2_ae3d_27d4_eb4f),
            target: 0,
            n: n.max(1),
            attempt: 0,
            next_try_ms: 0,
            retries: 0,
            counter: None,
        }
    }

    /// Overrides the retry policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a registry (`monitor_retries_total`).
    #[must_use]
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.counter = Some(registry.counter(MetricKey::global(names::MONITOR_RETRIES_TOTAL)));
        self
    }

    /// Retries taken (redirects, dead replicas, backoff re-aims).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The replica the next attempt will contact.
    #[must_use]
    pub fn target(&self) -> u16 {
        self.target
    }

    /// One submission attempt at `now_ms`. Returns the accepted
    /// `(term, index)`, or `None` while redirecting/backing off (call
    /// again on a later tick; the client waits out its own backoff).
    pub fn try_submit(
        &mut self,
        cluster: &mut ConsensusCluster,
        cmd: Command,
        now_ms: u64,
    ) -> Option<(u64, u64)> {
        if now_ms < self.next_try_ms {
            return None;
        }
        match cluster.submit(self.target, cmd, now_ms) {
            SubmitOutcome::Accepted { term, index } => {
                self.attempt = 0;
                Some((term, index))
            }
            SubmitOutcome::NotLeader { hint } => {
                match hint {
                    Some(h) if h != self.target => self.target = h,
                    _ => self.target = (self.target + 1) % self.n,
                }
                self.backoff(now_ms);
                None
            }
            SubmitOutcome::Down => {
                self.target = (self.target + 1) % self.n;
                self.backoff(now_ms);
                None
            }
        }
    }

    fn backoff(&mut self, now_ms: u64) {
        self.retries += 1;
        if let Some(c) = &self.counter {
            c.inc();
        }
        let wait = self.policy.backoff_ms(self.attempt, &mut self.rng);
        self.attempt = (self.attempt + 1).min(self.policy.max_attempts);
        self.next_try_ms = now_ms + wait;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_telemetry::{Sampler, SpanName};

    fn drive(cluster: &mut ConsensusCluster, from_ms: u64, ticks: u64, step_ms: u64) -> u64 {
        let mut now = from_ms;
        for _ in 0..ticks {
            now += step_ms;
            cluster.tick(now, None);
        }
        now
    }

    fn drive_until_leader(cluster: &mut ConsensusCluster, from_ms: u64, step_ms: u64) -> u64 {
        let mut now = from_ms;
        for _ in 0..4_000 {
            now += step_ms;
            cluster.tick(now, None);
            if cluster.leader().is_some() {
                return now;
            }
        }
        panic!("no leader elected within 4000 ticks");
    }

    #[test]
    fn commands_round_trip_through_wire_encoding() {
        let cmds = [
            Command::Noop,
            Command::MdsAlive { mds: 3 },
            Command::MdsDead { mds: 65535 },
            Command::LeaseAcquire {
                node: u64::MAX,
                holder: 9,
                now_ms: 123,
            },
            Command::LeaseRelease { node: 7, fence: 19 },
            Command::GlWrite {
                node: 1,
                fence: 2,
                now_ms: 3,
            },
            Command::Migrate {
                subtree: 42,
                from: 1,
                to: 2,
            },
        ];
        for cmd in cmds {
            let (op, a, b, c) = cmd.to_wire();
            assert_eq!(Command::from_wire(op, a, b, c), Some(cmd), "{cmd:?}");
        }
        assert_eq!(Command::from_wire(99, 0, 0, 0), None);
        assert_eq!(Command::from_wire(1, u64::MAX, 0, 0), None, "mds overflow");
    }

    #[test]
    fn three_replicas_elect_exactly_one_leader() {
        let mut c = ConsensusCluster::new(7, ConsensusConfig::default());
        let now = drive_until_leader(&mut c, 0, 10);
        let leaders: Vec<u16> = (0..3)
            .filter(|&i| c.replica(i).role() == Role::Leader)
            .collect();
        assert_eq!(leaders.len(), 1, "at {now}ms: {leaders:?}");
        assert!(c.check_invariants().is_empty());
    }

    #[test]
    fn committed_commands_apply_on_every_replica() {
        let mut c = ConsensusCluster::new(11, ConsensusConfig::default());
        let mut now = drive_until_leader(&mut c, 0, 10);
        let leader = c.leader().unwrap();
        let out = c.submit(
            leader,
            Command::LeaseAcquire {
                node: 5,
                holder: 2,
                now_ms: now,
            },
            now,
        );
        assert!(matches!(out, SubmitOutcome::Accepted { .. }));
        now = drive(&mut c, now, 30, 10);
        assert_eq!(c.observer().lease(5).unwrap().holder, 2);
        assert_eq!(c.observer().lease(5).unwrap().fence, 1);
        for i in 0..3u16 {
            assert_eq!(
                c.replica(i).state().lease(5).map(|l| l.fence),
                Some(1),
                "replica {i} applied the grant"
            );
        }
        assert!(c.check_invariants().is_empty());
        let _ = now;
    }

    #[test]
    fn non_leader_submission_redirects_with_hint() {
        let mut c = ConsensusCluster::new(13, ConsensusConfig::default());
        let mut now = drive_until_leader(&mut c, 0, 10);
        // Let the first heartbeats land so followers learn the leader.
        now = drive(&mut c, now, 10, 10);
        let leader = c.leader().unwrap();
        let follower = (0..3u16).find(|&i| i != leader).unwrap();
        match c.submit(follower, Command::Noop, now) {
            SubmitOutcome::NotLeader { hint } => assert_eq!(hint, Some(leader)),
            other => panic!("expected NotLeader, got {other:?}"),
        }
    }

    #[test]
    fn leader_kill_reelects_and_preserves_committed_state() {
        let mut c = ConsensusCluster::new(17, ConsensusConfig::default());
        let mut now = drive_until_leader(&mut c, 0, 10);
        let first = c.leader().unwrap();
        let out = c.submit(
            first,
            Command::LeaseAcquire {
                node: 9,
                holder: 1,
                now_ms: now,
            },
            now,
        );
        assert!(matches!(out, SubmitOutcome::Accepted { .. }));
        now = drive(&mut c, now, 20, 10);
        let fence_before = c.observer().lease(9).unwrap().fence;
        assert!(c.kill(first, now));
        let _now = drive_until_leader(&mut c, now, 10);
        let second = c.leader().unwrap();
        assert_ne!(second, first);
        // The committed grant survives failover; fencing never regresses.
        assert_eq!(c.observer().lease(9).unwrap().fence, fence_before);
        assert!(c.observer().max_fence() >= fence_before);
        assert!(c.check_invariants().is_empty());
    }

    #[test]
    fn quorum_loss_degrades_to_read_only_and_recovers() {
        let mut c = ConsensusCluster::new(23, ConsensusConfig::default());
        let mut now = drive_until_leader(&mut c, 0, 10);
        let leader = c.leader().unwrap();
        let out = c.submit(
            leader,
            Command::LeaseAcquire {
                node: 3,
                holder: 0,
                now_ms: now,
            },
            now,
        );
        assert!(matches!(out, SubmitOutcome::Accepted { .. }));
        now = drive(&mut c, now, 20, 10);
        let survivor = (0..3u16).find(|&i| i != leader).unwrap();
        for i in 0..3u16 {
            if i != survivor {
                c.kill(i, now);
            }
        }
        // A long quiet period: no quorum, so no new leader, but reads
        // keep working and nothing panics.
        now = drive(&mut c, now, 200, 10);
        assert_eq!(c.leader(), None, "no quorum, no leader");
        assert_eq!(c.observer().lease(3).map(|l| l.holder), Some(0));
        assert_eq!(
            c.replica(survivor).state().lease(3).map(|l| l.holder),
            Some(0)
        );
        // Writes fail gracefully.
        let out = c.submit(survivor, Command::Noop, now);
        assert!(matches!(
            out,
            SubmitOutcome::NotLeader { .. } | SubmitOutcome::Down
        ));
        // Quorum returns; the cluster re-elects and accepts writes again.
        for i in 0..3u16 {
            if i != survivor && !c.is_up(i) {
                c.restart(i, now);
            }
        }
        let now = drive_until_leader(&mut c, now, 10);
        let leader = c.leader().unwrap();
        assert!(matches!(
            c.submit(leader, Command::Noop, now),
            SubmitOutcome::Accepted { .. }
        ));
        assert!(c.check_invariants().is_empty());
    }

    #[test]
    fn expired_lease_fence_is_rejected_not_silently_applied() {
        // Satellite regression: a lease expires while its GL write is
        // in flight; the replicated state machine must reject the stale
        // fence at apply time.
        let mut state = ControlState::new(50);
        let grant = state.apply(
            &Entry {
                term: 1,
                index: 1,
                cmd: Command::LeaseAcquire {
                    node: 4,
                    holder: 2,
                    now_ms: 100,
                },
            },
            None,
        );
        let Applied::Granted { fence, .. } = grant else {
            panic!("expected a grant, got {grant:?}");
        };
        // In-flight write lands after expiry (100 + 50 = 150).
        let out = state.apply(
            &Entry {
                term: 1,
                index: 2,
                cmd: Command::GlWrite {
                    node: 4,
                    fence,
                    now_ms: 150,
                },
            },
            None,
        );
        assert_eq!(out, Applied::Rejected { node: 4, fence });
        assert_eq!(state.gl_version(4), 0, "stale write must not apply");
        assert_eq!(state.fence_rejections, 1);
        // A fresh grant gets a strictly larger fence, and its write
        // applies.
        let regrant = state.apply(
            &Entry {
                term: 1,
                index: 3,
                cmd: Command::LeaseAcquire {
                    node: 4,
                    holder: 3,
                    now_ms: 160,
                },
            },
            None,
        );
        let Applied::Granted { fence: fence2, .. } = regrant else {
            panic!("expected a re-grant, got {regrant:?}");
        };
        assert!(fence2 > fence, "fencing tokens stay monotonic");
        let out = state.apply(
            &Entry {
                term: 1,
                index: 4,
                cmd: Command::GlWrite {
                    node: 4,
                    fence: fence2,
                    now_ms: 170,
                },
            },
            None,
        );
        assert_eq!(
            out,
            Applied::GlWritten {
                node: 4,
                version: 1
            }
        );
    }

    #[test]
    fn unexpired_lease_blocks_reacquisition() {
        let mut state = ControlState::new(1_000);
        let _ = state.apply(
            &Entry {
                term: 1,
                index: 1,
                cmd: Command::LeaseAcquire {
                    node: 1,
                    holder: 0,
                    now_ms: 0,
                },
            },
            None,
        );
        let out = state.apply(
            &Entry {
                term: 1,
                index: 2,
                cmd: Command::LeaseAcquire {
                    node: 1,
                    holder: 1,
                    now_ms: 500,
                },
            },
            None,
        );
        assert_eq!(out, Applied::Busy);
        assert_eq!(state.lease(1).unwrap().holder, 0);
        assert_eq!(state.lease_busy, 1);
    }

    #[test]
    fn split_vote_resolves_via_randomized_timeouts() {
        let mut c = ConsensusCluster::new(31, ConsensusConfig::default());
        let mut now = drive_until_leader(&mut c, 0, 10);
        let term_before = c.replica(c.leader().unwrap()).term();
        c.force_split_vote(now);
        now = drive(&mut c, now, 1, 10); // every replica becomes candidate
        let now = drive_until_leader(&mut c, now, 10);
        let leader = c.leader().unwrap();
        assert!(c.replica(leader).term() > term_before);
        assert!(
            c.check_invariants().is_empty(),
            "{:?}",
            c.check_invariants()
        );
        let _ = now;
    }

    #[test]
    fn wal_backed_replica_recovers_term_vote_and_log() {
        let root = consensus_test_root();
        let mut c = ConsensusCluster::new(
            41,
            ConsensusConfig {
                wal_root: Some(root.clone()),
                ..ConsensusConfig::default()
            },
        );
        let mut now = drive_until_leader(&mut c, 0, 10);
        let leader = c.leader().unwrap();
        for k in 0..5u64 {
            let out = c.submit(
                leader,
                Command::LeaseAcquire {
                    node: k,
                    holder: 0,
                    now_ms: now,
                },
                now,
            );
            assert!(matches!(out, SubmitOutcome::Accepted { .. }));
            now = drive(&mut c, now, 5, 10);
        }
        now = drive(&mut c, now, 20, 10);
        let committed = c.replica(leader).commit_index();
        let term = c.replica(leader).term();
        assert!(committed >= 5);
        // Crash + recover the leader from its own WAL.
        c.kill(leader, now);
        c.restart(leader, now + 10);
        let r = c.replica(leader);
        assert_eq!(r.term(), term, "durable term survives the crash");
        assert!(
            r.log().len() as u64 >= committed,
            "durable log covers everything that was committed"
        );
        // And the cluster as a whole keeps working.
        let now = drive_until_leader(&mut c, now + 10, 10);
        assert!(c.check_invariants().is_empty());
        let _ = now;
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn same_seed_clusters_are_deterministic() {
        let run = |seed: u64| {
            let reg = Arc::new(Registry::with_journal_capacity(4_096));
            let mut c = ConsensusCluster::new(seed, ConsensusConfig::default())
                .with_journal(Arc::clone(reg.journal()));
            let mut client = LeaderClient::new(seed, 3);
            let mut now = 0;
            for tick in 0..400u64 {
                now = tick * 10;
                if tick == 120 {
                    if let Some(l) = c.leader() {
                        c.kill(l, now);
                    }
                }
                if tick == 200 {
                    for i in 0..3u16 {
                        if !c.is_up(i) {
                            c.restart(i, now);
                        }
                    }
                }
                let _ = client.try_submit(
                    &mut c,
                    Command::LeaseAcquire {
                        node: 1,
                        holder: 0,
                        now_ms: now,
                    },
                    now,
                );
                c.tick(now, None);
            }
            let _ = now;
            let events: Vec<EventKind> = reg.journal().snapshot().iter().map(|e| e.kind).collect();
            (events, c.observer().clone(), client.retries())
        };
        let a = run(77);
        let b = run(77);
        assert_eq!(a.0, b.0, "same-seed journals are identical");
        assert_eq!(a.1, b.1, "same-seed observer states are identical");
        assert_eq!(a.2, b.2, "same-seed retry counts are identical");
        let c = run(78);
        assert_ne!(a.0, c.0, "different seeds genuinely differ");
    }

    #[test]
    fn leader_client_follows_redirects_under_policy_backoff() {
        let reg = Registry::new();
        let mut c = ConsensusCluster::new(53, ConsensusConfig::default());
        let now = drive_until_leader(&mut c, 0, 10);
        let leader = c.leader().unwrap();
        let mut client = LeaderClient::new(53, 3).with_registry(&reg);
        // Aim the client away from the leader so it must redirect.
        client.target = (leader + 1) % 3;
        let mut accepted = None;
        let mut t = now;
        for _ in 0..50 {
            t += 10;
            if let Some(ok) = client.try_submit(&mut c, Command::Noop, t) {
                accepted = Some(ok);
                break;
            }
            c.tick(t, None);
        }
        assert!(accepted.is_some(), "client reaches the leader via hints");
        assert!(client.retries() >= 1);
        let snap = reg.snapshot();
        let retries = snap
            .counters
            .iter()
            .find(|(k, _)| k.name == names::MONITOR_RETRIES_TOTAL)
            .map_or(0, |&(_, v)| v);
        assert_eq!(retries, client.retries());
    }

    #[test]
    fn election_and_replication_spans_are_parent_linked() {
        let tracer = Arc::new(Tracer::new(Sampler::always(0)));
        let mut c =
            ConsensusCluster::new(61, ConsensusConfig::default()).with_tracer(Arc::clone(&tracer));
        let mut now = drive_until_leader(&mut c, 0, 10);
        let leader = c.leader().unwrap();
        let out = c.submit(leader, Command::Noop, now);
        assert!(matches!(out, SubmitOutcome::Accepted { .. }));
        now = drive(&mut c, now, 20, 10);
        let _ = now;
        let spans = tracer.drain();
        let election = spans
            .iter()
            .find(|s| s.name == SpanName::Election)
            .expect("an election span");
        assert!(election.parent.is_none(), "election spans are roots");
        let replicate = spans
            .iter()
            .find(|s| s.name == SpanName::Replicate)
            .expect("a replication span");
        assert_eq!(
            replicate.parent,
            Some(election.id),
            "replication spans hang off the election that created the leader"
        );
        assert_eq!(replicate.trace, election.trace);
    }

    static TEST_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

    fn consensus_test_root() -> PathBuf {
        std::env::temp_dir().join(format!(
            "d2tree-consensus-test-{}-{}",
            std::process::id(),
            TEST_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ))
    }
}
