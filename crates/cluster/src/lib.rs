//! MDS-cluster substrate for the D2-Tree reproduction.
//!
//! The paper evaluates on 33 EC2 instances (1 Monitor + 32 MDSs, 100 Mbps
//! links). This crate substitutes two in-process equivalents:
//!
//! * [`sim`] — a deterministic discrete-event simulator modelling the
//!   pieces throughput actually depends on: per-MDS service queues with a
//!   fixed worker count, per-hop network latency, and the Zookeeper-style
//!   lock serialisation of global-layer updates. Fig. 5 is regenerated on
//!   top of it.
//! * [`live`] — a real multi-threaded cluster (one OS thread per MDS,
//!   crossbeam channels as the network, a length-prefixed `bytes` wire
//!   codec) used by the integration tests and examples to exercise true
//!   concurrency, heartbeats and fail-over.
//!
//! Shared building blocks: [`message`] (the wire protocol), [`lock`] (the
//! lease-based lock service of Sec. IV-A3), [`client`] (the client-side
//! local-index cache) and [`monitor`] (membership, heartbeats, pending
//! pool, failure detection).
//!
//! Robustness layers: [`fault`] (deterministic seeded fault injection
//! over client↔MDS, MDS↔Monitor and MDS↔lock edges, consulted by both
//! transports), [`chaos`] (a virtual-time chaos engine that replays
//! seeded kill/partition/restart schedules against the full recovery
//! protocol and machine-checks ownership and GL-convergence invariants)
//! and [`consensus`] (a replicated control plane: Raft-style leader
//! election and log replication across Monitor replicas, with
//! membership and lease decisions applied only through committed,
//! WAL-persisted log entries).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admin;
pub mod chaos;
pub mod client;
pub mod consensus;
pub mod fault;
pub mod live;
pub mod lock;
pub mod message;
pub mod monitor;
pub mod net;
pub mod sim;
pub mod trace_analysis;

pub use admin::{admin_get, parse_metrics_json, AdminConfig, AdminServer, AdminStats, MetricsDoc};
pub use chaos::{
    run_chaos, run_monitor_chaos, run_store_chaos, ChaosConfig, ChaosReport, MonitorChaosConfig,
    MonitorChaosReport, StoreChaosConfig, StoreChaosReport,
};
pub use client::{CacheStats, ClientCache, RetryPolicy};
pub use consensus::{
    Applied, Command, ConsensusCluster, ConsensusConfig, ConsensusTiming, ControlState, Entry,
    LeaderClient, LeaseState, PeerMsg, Replica, Role, SubmitOutcome,
};
pub use fault::{
    FaultAction, FaultDecision, FaultInjector, FaultPlan, FaultRule, FaultScope, NetEdge,
    StorageFault, StorageFaultRule,
};
pub use lock::{LockService, LockToken};
pub use message::{Request, RequestId, Response, ResponseBody};
pub use monitor::{ClusterEvent, Monitor, MonitorConfig};
pub use net::{
    run_load, FrameBuf, FrameReader, LoadConfig, LoadMode, LoadReport, NetClient, NetMds,
    NetServer, NetServerConfig, NetServerStats, SlowEntry, MAX_FRAME_BYTES,
};
pub use sim::{RebalancedReplay, ReplayOutcome, SimConfig, Simulator};
pub use trace_analysis::{
    analyze, FaultAttribution, StrictChainRoute, TraceAnalysis, TraceCheckError, TracedOp,
};
