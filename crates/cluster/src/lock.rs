//! Lease-based lock service for global-layer mutations.
//!
//! Stands in for the paper's Zookeeper lock service (Sec. IV-A3): clients
//! "require a lock only when they want to modify the nodes in global
//! layer". Locks are per-node, FIFO-fair through retry, carry fencing
//! tokens (monotonic per node) and expire after a lease so a crashed
//! holder cannot wedge the layer.
//!
//! Time is passed in explicitly (milliseconds), which keeps the service
//! usable from both the live runtime (wall clock) and deterministic tests
//! (virtual clock).

use std::collections::HashMap;

use d2tree_namespace::NodeId;
use parking_lot::Mutex;

/// Proof of lock ownership; required to release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockToken {
    /// Locked node.
    pub node: NodeId,
    /// Fencing token: strictly increases every time the node's lock is
    /// granted, so a stale holder's writes can be rejected downstream.
    pub fence: u64,
}

#[derive(Debug)]
struct Held {
    fence: u64,
    expires_at_ms: u64,
}

/// The lock manager. All methods are thread-safe.
///
/// # Example
///
/// ```
/// use d2tree_cluster::LockService;
/// use d2tree_namespace::NodeId;
///
/// let locks = LockService::new(1_000); // 1s lease
/// let n = NodeId::from_index(7);
/// let token = locks.try_acquire(n, 0).expect("free lock");
/// assert!(locks.try_acquire(n, 10).is_none(), "held");
/// assert!(locks.release(token));
/// assert!(locks.try_acquire(n, 20).is_some(), "released");
/// ```
#[derive(Debug)]
pub struct LockService {
    lease_ms: u64,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    held: HashMap<NodeId, Held>,
    next_fence: u64,
}

impl LockService {
    /// Creates a service whose leases last `lease_ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `lease_ms == 0`.
    #[must_use]
    pub fn new(lease_ms: u64) -> Self {
        assert!(lease_ms > 0, "lease must be positive");
        LockService {
            lease_ms,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Attempts to take the lock on `node` at time `now_ms`.
    ///
    /// Succeeds if the lock is free or the current holder's lease expired
    /// (the crashed-holder case); the new fencing token then supersedes the
    /// stale one.
    #[must_use]
    pub fn try_acquire(&self, node: NodeId, now_ms: u64) -> Option<LockToken> {
        let mut inner = self.inner.lock();
        let expired = match inner.held.get(&node) {
            Some(h) => h.expires_at_ms <= now_ms,
            None => true,
        };
        if !expired {
            return None;
        }
        inner.next_fence += 1;
        let fence = inner.next_fence;
        inner.held.insert(
            node,
            Held {
                fence,
                expires_at_ms: now_ms + self.lease_ms,
            },
        );
        Some(LockToken { node, fence })
    }

    /// Spins (yielding between tries) until the lock on `node` is
    /// granted, re-reading the clock through `now_ms` on every try so
    /// lease expiry is honoured mid-wait. Returns the token plus the
    /// number of failed tries — the live server's traced path turns the
    /// wait into a `gl_lock` span annotated with the spin count.
    #[must_use]
    pub fn acquire_spin(&self, node: NodeId, mut now_ms: impl FnMut() -> u64) -> (LockToken, u64) {
        let mut spins = 0u64;
        loop {
            if let Some(token) = self.try_acquire(node, now_ms()) {
                return (token, spins);
            }
            spins += 1;
            std::thread::yield_now();
        }
    }

    /// Extends the lease of a held lock. Returns `false` if the token is
    /// stale (the lock was re-granted after a lease expiry).
    #[must_use]
    pub fn renew(&self, token: LockToken, now_ms: u64) -> bool {
        let mut inner = self.inner.lock();
        match inner.held.get_mut(&token.node) {
            Some(h) if h.fence == token.fence => {
                h.expires_at_ms = now_ms + self.lease_ms;
                true
            }
            _ => false,
        }
    }

    /// Whether `token` still authorises a write at `now_ms`: the lock
    /// must be held under the same fence *and* the lease must still be
    /// live. Writers re-check this immediately before applying an
    /// in-flight global-layer mutation — a lease that expired mid-write
    /// must fence the write out rather than let it land stale. The
    /// replicated control plane enforces the same rule at log-apply
    /// time (`GlWrite` rejection in `consensus::ControlState`).
    #[must_use]
    pub fn validate(&self, token: LockToken, now_ms: u64) -> bool {
        self.inner
            .lock()
            .held
            .get(&token.node)
            .is_some_and(|h| h.fence == token.fence && h.expires_at_ms > now_ms)
    }

    /// Releases a held lock. Returns `false` if the token is stale.
    pub fn release(&self, token: LockToken) -> bool {
        let mut inner = self.inner.lock();
        match inner.held.get(&token.node) {
            Some(h) if h.fence == token.fence => {
                inner.held.remove(&token.node);
                true
            }
            _ => false,
        }
    }

    /// Whether `node` is locked (with a live lease) at `now_ms`.
    #[must_use]
    pub fn is_held(&self, node: NodeId, now_ms: u64) -> bool {
        self.inner
            .lock()
            .held
            .get(&node)
            .map(|h| h.expires_at_ms > now_ms)
            .unwrap_or(false)
    }

    /// Number of currently-tracked (possibly expired) locks.
    #[must_use]
    pub fn held_count(&self) -> usize {
        self.inner.lock().held.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn fencing_tokens_increase() {
        let locks = LockService::new(100);
        let a = locks.try_acquire(n(1), 0).unwrap();
        assert!(locks.release(a));
        let b = locks.try_acquire(n(1), 1).unwrap();
        assert!(b.fence > a.fence);
    }

    #[test]
    fn expired_lease_can_be_stolen_and_fences_stale_holder() {
        let locks = LockService::new(50);
        let stale = locks.try_acquire(n(2), 0).unwrap();
        // Lease runs out at t=50; a new holder takes over.
        let fresh = locks.try_acquire(n(2), 50).unwrap();
        assert!(fresh.fence > stale.fence);
        // The stale holder can no longer release or renew.
        assert!(!locks.release(stale));
        assert!(!locks.renew(stale, 60));
        assert!(locks.release(fresh));
    }

    #[test]
    fn renew_extends_lease() {
        let locks = LockService::new(50);
        let t = locks.try_acquire(n(3), 0).unwrap();
        assert!(locks.renew(t, 40)); // now expires at 90
        assert!(locks.is_held(n(3), 80));
        assert!(locks.try_acquire(n(3), 80).is_none());
        assert!(locks.release(t));
    }

    #[test]
    fn acquire_spin_waits_out_a_holder_and_counts_spins() {
        let locks = LockService::new(50);
        // Free lock: granted immediately, zero spins.
        let (t, spins) = locks.acquire_spin(n(4), || 0);
        assert_eq!(spins, 0);
        assert!(locks.release(t));
        // Held lock: the waiter's advancing clock expires the lease and
        // the spin loop eventually wins, fencing the stale holder.
        let stale = locks.try_acquire(n(4), 0).unwrap();
        let mut clock = 0u64;
        let (fresh, spins) = locks.acquire_spin(n(4), || {
            clock += 10;
            clock
        });
        assert!(spins > 0, "had to wait for the lease to run out");
        assert!(fresh.fence > stale.fence);
        assert!(!locks.release(stale));
        assert!(locks.release(fresh));
    }

    #[test]
    fn lease_expiry_mid_write_invalidates_the_token_before_apply() {
        // Regression: a writer holding the lock stalls mid-write until
        // its lease runs out. The expired fencing token must be rejected
        // at validate time — even before any successor steals the lock —
        // not silently honoured by the apply.
        let locks = LockService::new(50);
        let t = locks.try_acquire(n(5), 0).unwrap();
        // Still in flight and still live just before expiry...
        assert!(locks.validate(t, 49));
        // ...but the lease ran out while the write was in flight. With
        // no new holder yet, the expired fence already fails validation.
        assert!(!locks.validate(t, 50));
        // A successor takes over under a higher fence; the stale token
        // stays invalid and cannot release the new holder's lock.
        let fresh = locks.try_acquire(n(5), 60).unwrap();
        assert!(fresh.fence > t.fence);
        assert!(!locks.validate(t, 61));
        assert!(locks.validate(fresh, 61));
        assert!(!locks.release(t));
        assert!(locks.release(fresh));
    }

    #[test]
    fn independent_nodes_do_not_contend() {
        let locks = LockService::new(100);
        let a = locks.try_acquire(n(1), 0).unwrap();
        let b = locks.try_acquire(n(2), 0).unwrap();
        assert_eq!(locks.held_count(), 2);
        assert!(locks.release(a));
        assert!(locks.release(b));
        assert_eq!(locks.held_count(), 0);
    }

    #[test]
    fn replicated_updates_under_lock_delay_lose_nothing() {
        // Satellite of the chaos PR: concurrent writers pushing
        // replicated global-layer updates through the lock service while
        // a fault plan injects delay on every lock-service link. Version
        // monotonicity and the final counts prove no update was lost or
        // reordered past another despite the perturbation.
        use crate::fault::{
            FaultAction, FaultDecision, FaultInjector, FaultPlan, FaultRule, FaultScope, NetEdge,
        };
        use std::sync::Arc;
        use std::sync::Mutex;

        const WRITERS: usize = 8;
        const UPDATES: usize = 25;
        const REPLICAS: usize = 3;

        let locks = Arc::new(LockService::new(10_000));
        let plan = FaultPlan::new(13).with_rule(
            FaultRule::new(
                FaultScope::AllLinks,
                FaultAction::Delay {
                    fixed_ms: 0,
                    jitter_ms: 1,
                },
            )
            .with_probability(0.5),
        );
        let injector = Arc::new(FaultInjector::new(&plan));
        // The replicated state: per-replica version counters plus the
        // commit log (version at each commit, pushed under the lock).
        let replicas = Arc::new(Mutex::new(vec![0u64; REPLICAS]));
        let commit_log = Arc::new(Mutex::new(Vec::<u64>::new()));

        let mut handles = Vec::new();
        for w in 0..WRITERS as u16 {
            let locks = Arc::clone(&locks);
            let injector = Arc::clone(&injector);
            let replicas = Arc::clone(&replicas);
            let commit_log = Arc::clone(&commit_log);
            handles.push(std::thread::spawn(move || {
                for i in 0..UPDATES {
                    // The lock service sits across the network: the fault
                    // plan perturbs every interaction with it.
                    if let FaultDecision::Delay(ms) =
                        injector.decide(NetEdge::MdsToLock(w % REPLICAS as u16), i as u64)
                    {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                    let token = loop {
                        if let Some(t) = locks.try_acquire(n(77), 0) {
                            break t;
                        }
                        std::thread::yield_now();
                    };
                    {
                        let mut reps = replicas.lock().unwrap();
                        let next = reps[0] + 1;
                        for v in reps.iter_mut() {
                            *v = next;
                        }
                        commit_log.lock().unwrap().push(next);
                    }
                    assert!(locks.release(token));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let log = commit_log.lock().unwrap();
        assert_eq!(log.len(), WRITERS * UPDATES, "no update lost");
        assert!(
            log.windows(2).all(|w| w[0] < w[1]),
            "lock-serialised versions must be strictly increasing"
        );
        let reps = replicas.lock().unwrap();
        assert!(
            reps.iter().all(|&v| v == (WRITERS * UPDATES) as u64),
            "replicas diverged: {reps:?}"
        );
    }

    #[test]
    fn concurrent_acquire_grants_exactly_one() {
        use std::sync::Arc;
        let locks = Arc::new(LockService::new(1_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let locks = Arc::clone(&locks);
            handles.push(std::thread::spawn(move || {
                locks.try_acquire(n(9), 0).is_some()
            }));
        }
        let granted = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&g| g)
            .count();
        assert_eq!(granted, 1);
    }
}
