//! The Monitor daemon (Sec. IV-A3): heartbeats, membership, failure
//! detection and the pending pool.
//!
//! The paper adds one Monitor to the cluster — like Ceph's OSD monitor —
//! to (1) accept heartbeats and maintain the pending pool, (2) keep the
//! global layer consistent, and (3) detect MDS failures and arrivals.
//! This module implements that state machine against an explicit
//! millisecond clock, so it runs identically under the live runtime and
//! in deterministic tests.

use std::sync::Arc;

use d2tree_core::{AdjustPolicy, DynamicAdjuster, Heartbeat, PendingPool, Subtree};
use d2tree_metrics::{ClusterSpec, MdsId, Migration};
use d2tree_telemetry::{EventJournal, EventKind};
use serde::{Deserialize, Serialize};

/// Membership changes the Monitor announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterEvent {
    /// An MDS missed enough heartbeats to be declared dead.
    MdsFailed(MdsId),
    /// A previously-dead MDS heartbeated again.
    MdsRecovered(MdsId),
}

/// Monitor tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Expected heartbeat period.
    pub heartbeat_interval_ms: u64,
    /// Declare an MDS dead after this long without a heartbeat.
    pub failure_timeout_ms: u64,
    /// Rebalancing thresholds forwarded to the pending-pool engine.
    pub policy: AdjustPolicy,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            heartbeat_interval_ms: 100,
            failure_timeout_ms: 500,
            policy: AdjustPolicy::default(),
        }
    }
}

/// The Monitor's state machine.
///
/// # Example
///
/// ```
/// use d2tree_cluster::{Monitor, MonitorConfig};
/// use d2tree_core::Heartbeat;
/// use d2tree_metrics::MdsId;
///
/// let mut mon = Monitor::new(MonitorConfig::default(), 2);
/// mon.on_heartbeat(Heartbeat { mds: MdsId(0), load: 10.0 }, 0);
/// mon.on_heartbeat(Heartbeat { mds: MdsId(1), load: 12.0 }, 0);
/// assert_eq!(mon.alive_count(1), 2);
/// // mds1 goes silent past the timeout:
/// mon.on_heartbeat(Heartbeat { mds: MdsId(0), load: 10.0 }, 600);
/// let events = mon.detect_failures(600);
/// assert_eq!(events.len(), 1);
/// assert_eq!(mon.alive_count(600), 1);
/// ```
#[derive(Debug)]
pub struct Monitor {
    config: MonitorConfig,
    last_seen_ms: Vec<Option<u64>>,
    declared_dead: Vec<bool>,
    loads: Vec<f64>,
    adjuster: DynamicAdjuster,
    journal: Arc<EventJournal>,
}

impl Monitor {
    /// Creates a Monitor for a cluster of `m` servers with its own
    /// event journal. `m == 0` is allowed: an empty cluster has no
    /// members to track, and every query returns its vacuous answer.
    #[must_use]
    pub fn new(config: MonitorConfig, m: usize) -> Self {
        Monitor::with_journal(
            config,
            m,
            Arc::new(EventJournal::new(
                d2tree_telemetry::Registry::DEFAULT_JOURNAL_CAPACITY,
            )),
        )
    }

    /// Creates a Monitor recording into a shared journal (so membership
    /// events interleave with the rest of the cluster's telemetry).
    #[must_use]
    pub fn with_journal(config: MonitorConfig, m: usize, journal: Arc<EventJournal>) -> Self {
        Monitor {
            config,
            last_seen_ms: vec![None; m],
            declared_dead: vec![false; m],
            loads: vec![0.0; m],
            adjuster: DynamicAdjuster::new(config.policy).with_journal(Arc::clone(&journal)),
            journal,
        }
    }

    /// Records a heartbeat at `now_ms`. A heartbeat from a declared-dead
    /// MDS resurrects it and returns [`ClusterEvent::MdsRecovered`] so
    /// the caller can run the rejoin protocol (re-register, re-claim
    /// subtrees); ordinary heartbeats return `None`.
    pub fn on_heartbeat(&mut self, hb: Heartbeat, now_ms: u64) -> Option<ClusterEvent> {
        let k = hb.mds.index();
        self.last_seen_ms[k] = Some(now_ms);
        self.loads[k] = hb.load;
        self.journal.record(EventKind::Heartbeat {
            mds: hb.mds.0,
            load: hb.load,
        });
        if self.declared_dead[k] {
            self.declared_dead[k] = false;
            self.journal
                .record(EventKind::MdsRecovered { mds: hb.mds.0 });
            return Some(ClusterEvent::MdsRecovered(hb.mds));
        }
        None
    }

    /// Scans for servers past the failure timeout; returns the *new*
    /// failures declared by this call.
    pub fn detect_failures(&mut self, now_ms: u64) -> Vec<ClusterEvent> {
        let mut fresh = Vec::new();
        for k in 0..self.last_seen_ms.len() {
            if self.declared_dead[k] {
                continue;
            }
            let silent = match self.last_seen_ms[k] {
                Some(t) => now_ms.saturating_sub(t) >= self.config.failure_timeout_ms,
                None => false, // never-seen servers are "joining", not dead
            };
            if silent {
                self.declared_dead[k] = true;
                self.journal.record(EventKind::MdsDown { mds: k as u16 });
                fresh.push(ClusterEvent::MdsFailed(MdsId(k as u16)));
            }
        }
        fresh
    }

    /// Installs the *committed* membership view on a Monitor that just
    /// became the control-plane leader.
    ///
    /// Under replicated operation each Monitor replica keeps its own
    /// heartbeat clock, but membership truth lives in the consensus
    /// log. A fresh leader adopts that committed view: alive servers
    /// get a synthetic `last_seen` stamp of `now_ms` (they earn their
    /// next timeout from scratch rather than being re-declared off a
    /// stale clock), dead servers are marked already-declared so the
    /// new leader does not re-announce failures the old leader already
    /// committed.
    pub fn adopt_membership(&mut self, alive: &[bool], now_ms: u64) {
        for (k, &up) in alive.iter().enumerate().take(self.last_seen_ms.len()) {
            if up {
                self.last_seen_ms[k] = Some(now_ms);
                self.declared_dead[k] = false;
            } else {
                self.declared_dead[k] = true;
            }
        }
    }

    /// Whether an MDS is currently considered alive at `now_ms`.
    #[must_use]
    pub fn is_alive(&self, mds: MdsId, now_ms: u64) -> bool {
        let k = mds.index();
        if self.declared_dead[k] {
            return false;
        }
        match self.last_seen_ms[k] {
            Some(t) => now_ms.saturating_sub(t) < self.config.failure_timeout_ms,
            None => false,
        }
    }

    /// Number of alive servers at `now_ms`.
    #[must_use]
    pub fn alive_count(&self, now_ms: u64) -> usize {
        (0..self.last_seen_ms.len())
            .filter(|&k| self.is_alive(MdsId(k as u16), now_ms))
            .count()
    }

    /// Latest reported load per server.
    #[must_use]
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Every membership event still retained by the journal, oldest
    /// first. (Heartbeats and other telemetry events are filtered out;
    /// read [`Monitor::journal`] for the full stream.)
    #[must_use]
    pub fn events(&self) -> Vec<ClusterEvent> {
        self.journal
            .snapshot()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::MdsDown { mds } => Some(ClusterEvent::MdsFailed(MdsId(mds))),
                EventKind::MdsRecovered { mds } => Some(ClusterEvent::MdsRecovered(MdsId(mds))),
                _ => None,
            })
            .collect()
    }

    /// The journal this Monitor records into.
    #[must_use]
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.journal
    }

    /// The Monitor's pending pool (for inspection).
    #[must_use]
    pub fn pool(&self) -> &PendingPool {
        self.adjuster.pool()
    }

    /// Runs a pending-pool rebalancing round over the subtree ownership
    /// reported by the cluster (Sec. IV-B's dynamic adjustment).
    #[must_use]
    pub fn rebalance(
        &mut self,
        owned: &[(Subtree, MdsId)],
        cluster: &ClusterSpec,
    ) -> Vec<Migration> {
        self.adjuster.rebalance(owned, cluster)
    }

    /// Plans the re-homing of a failed server's subtrees onto the
    /// survivors, spreading popularity with mirror division over the
    /// remaining capacities.
    #[must_use]
    pub fn plan_failover(
        &self,
        failed: MdsId,
        owned: &[(Subtree, MdsId)],
        cluster: &ClusterSpec,
        now_ms: u64,
    ) -> Vec<Migration> {
        let victims: Vec<&(Subtree, MdsId)> = owned.iter().filter(|(_, o)| *o == failed).collect();
        if victims.is_empty() {
            return Vec::new();
        }
        let survivors: Vec<MdsId> = cluster
            .ids()
            .filter(|&k| k != failed && self.is_alive(k, now_ms))
            .collect();
        if survivors.is_empty() {
            return Vec::new();
        }
        let weights: Vec<f64> = victims.iter().map(|(s, _)| s.popularity).collect();
        let capacities: Vec<f64> = survivors.iter().map(|&k| cluster.capacity(k)).collect();
        let buckets = d2tree_metrics::mirror::mirror_divide(&weights, &capacities);
        victims
            .into_iter()
            .zip(buckets)
            .map(|((s, _), b)| Migration {
                node: s.root,
                from: failed,
                to: survivors[b],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_namespace::NodeId;

    fn hb(k: u16, load: f64) -> Heartbeat {
        Heartbeat {
            mds: MdsId(k),
            load,
        }
    }

    fn subtree(i: usize, pop: f64) -> Subtree {
        Subtree {
            root: NodeId::from_index(i + 1),
            parent: NodeId::ROOT,
            popularity: pop,
            size: 1,
        }
    }

    #[test]
    fn failure_needs_timeout_to_elapse() {
        let mut mon = Monitor::new(MonitorConfig::default(), 2);
        mon.on_heartbeat(hb(0, 1.0), 0);
        mon.on_heartbeat(hb(1, 1.0), 0);
        assert!(mon.detect_failures(400).is_empty());
        let events = mon.detect_failures(500);
        assert_eq!(events.len(), 2);
        assert!(
            mon.detect_failures(600).is_empty(),
            "failures are declared once"
        );
    }

    #[test]
    fn recovery_after_failure() {
        let mut mon = Monitor::new(MonitorConfig::default(), 1);
        mon.on_heartbeat(hb(0, 1.0), 0);
        assert_eq!(mon.detect_failures(1_000).len(), 1);
        assert!(!mon.is_alive(MdsId(0), 1_000));
        mon.on_heartbeat(hb(0, 1.0), 1_100);
        assert!(mon.is_alive(MdsId(0), 1_150));
        assert!(matches!(
            mon.events().last(),
            Some(ClusterEvent::MdsRecovered(_))
        ));
    }

    #[test]
    fn never_seen_servers_are_not_failed() {
        let mut mon = Monitor::new(MonitorConfig::default(), 3);
        mon.on_heartbeat(hb(0, 1.0), 0);
        assert!(mon.detect_failures(10_000).iter().all(|e| match e {
            ClusterEvent::MdsFailed(m) => m.index() == 0,
            ClusterEvent::MdsRecovered(_) => false,
        }));
    }

    #[test]
    fn failover_spreads_victims_over_survivors() {
        let cluster = ClusterSpec::homogeneous(3, 100.0);
        let mut mon = Monitor::new(MonitorConfig::default(), 3);
        for k in 0..3 {
            mon.on_heartbeat(hb(k, 1.0), 0);
        }
        let owned = vec![
            (subtree(0, 30.0), MdsId(0)),
            (subtree(1, 30.0), MdsId(0)),
            (subtree(2, 5.0), MdsId(1)),
        ];
        let _ = mon.detect_failures(0);
        // Fail mds0 by silencing it.
        mon.on_heartbeat(hb(1, 1.0), 600);
        mon.on_heartbeat(hb(2, 1.0), 600);
        let events = mon.detect_failures(600);
        assert_eq!(events, vec![ClusterEvent::MdsFailed(MdsId(0))]);
        let plan = mon.plan_failover(MdsId(0), &owned, &cluster, 600);
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|m| m.from == MdsId(0) && m.to != MdsId(0)));
        // Both survivors are used when the load splits evenly.
        let targets: std::collections::BTreeSet<_> = plan.iter().map(|m| m.to).collect();
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn failover_with_no_survivors_is_empty() {
        let cluster = ClusterSpec::homogeneous(1, 100.0);
        let mon = Monitor::new(MonitorConfig::default(), 1);
        let owned = vec![(subtree(0, 1.0), MdsId(0))];
        assert!(mon.plan_failover(MdsId(0), &owned, &cluster, 0).is_empty());
    }

    #[test]
    fn heartbeat_exactly_at_timeout_boundary_is_dead() {
        // failure_timeout_ms = 500 and detection uses `>=`: one instant
        // before the boundary the MDS is alive, at the boundary it is
        // declared dead.
        let mut mon = Monitor::new(MonitorConfig::default(), 1);
        mon.on_heartbeat(hb(0, 1.0), 100);
        assert!(mon.is_alive(MdsId(0), 599));
        assert!(mon.detect_failures(599).is_empty());
        assert!(!mon.is_alive(MdsId(0), 600));
        assert_eq!(mon.detect_failures(600).len(), 1);
    }

    #[test]
    fn zero_mds_cluster_is_inert() {
        let mut mon = Monitor::new(MonitorConfig::default(), 0);
        assert!(mon.detect_failures(1_000_000).is_empty());
        assert_eq!(mon.alive_count(0), 0);
        assert!(mon.events().is_empty());
        assert!(mon.loads().is_empty());
    }

    #[test]
    fn journal_orders_down_before_recovery() {
        let mut mon = Monitor::new(MonitorConfig::default(), 1);
        mon.on_heartbeat(hb(0, 1.0), 0);
        let _ = mon.detect_failures(1_000);
        mon.on_heartbeat(hb(0, 2.0), 1_100);
        let membership: Vec<&'static str> = mon
            .journal()
            .snapshot()
            .iter()
            .map(|e| e.kind.label())
            .filter(|l| *l != "heartbeat")
            .collect();
        assert_eq!(membership, vec!["mds_down", "mds_recovered"]);
        let seqs: Vec<u64> = mon.journal().snapshot().iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn heartbeat_from_dead_mds_returns_recovery_event() {
        let mut mon = Monitor::new(MonitorConfig::default(), 1);
        assert_eq!(mon.on_heartbeat(hb(0, 1.0), 0), None);
        assert_eq!(mon.detect_failures(1_000).len(), 1);
        assert_eq!(
            mon.on_heartbeat(hb(0, 1.0), 1_100),
            Some(ClusterEvent::MdsRecovered(MdsId(0)))
        );
        // Once resurrected, further heartbeats are ordinary again.
        assert_eq!(mon.on_heartbeat(hb(0, 1.0), 1_200), None);
    }

    #[test]
    fn adopt_membership_installs_committed_view_without_reannouncing() {
        let mut mon = Monitor::new(MonitorConfig::default(), 3);
        // Committed view: 0 and 2 alive, 1 dead.
        mon.adopt_membership(&[true, false, true], 1_000);
        assert!(mon.is_alive(MdsId(0), 1_100));
        assert!(!mon.is_alive(MdsId(1), 1_100));
        assert!(mon.is_alive(MdsId(2), 1_100));
        // The already-committed death is not re-declared...
        assert!(mon.detect_failures(1_100).is_empty());
        // ...but adopted-alive servers still earn a fresh timeout.
        let events = mon.detect_failures(1_000 + 500);
        assert_eq!(events.len(), 2);
        // And a resurrection of the adopted-dead server still fires.
        assert_eq!(
            mon.on_heartbeat(hb(1, 1.0), 1_200),
            Some(ClusterEvent::MdsRecovered(MdsId(1)))
        );
    }

    #[test]
    fn loads_track_latest_heartbeat() {
        let mut mon = Monitor::new(MonitorConfig::default(), 2);
        mon.on_heartbeat(hb(0, 5.0), 0);
        mon.on_heartbeat(hb(0, 9.0), 100);
        assert_eq!(mon.loads()[0], 9.0);
    }
}
