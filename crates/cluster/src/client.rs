//! Client-side cache of the local index (Sec. IV-A2).
//!
//! Clients cache the inter-node → owner map with a version number and a
//! lease (the GFS-style consistency mechanisms the paper borrows). A
//! lookup first consults the cache; on a hit the query goes straight to
//! the owning MDS, otherwise the target is assumed to live in the
//! replicated global layer and any MDS will do.

use std::time::Duration;

use d2tree_core::LocalIndex;
use d2tree_metrics::MdsId;
use d2tree_namespace::{NamespaceTree, NodeId};
use rand::Rng;

/// Where the client should send a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// A cached inter-node entry points at this owner.
    Owner(MdsId),
    /// No prefix matched: the target is in the global layer, pick any MDS.
    AnyMds,
    /// The cached index lease expired; refresh before routing.
    StaleCache,
}

impl RouteDecision {
    /// Code used for destinations forced by a server redirect, which
    /// never go through [`ClientCache::route`].
    pub const REDIRECT_CODE: u64 = 3;

    /// Stable numeric code used as a trace-span annotation:
    /// 0 owner-routed, 1 any-MDS, 2 stale cache,
    /// [`REDIRECT_CODE`](Self::REDIRECT_CODE) redirect-forced.
    #[must_use]
    pub fn code(&self) -> u64 {
        match self {
            RouteDecision::Owner(_) => 0,
            RouteDecision::AnyMds => 1,
            RouteDecision::StaleCache => 2,
        }
    }
}

/// Hit/miss counters of a client's index cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Routes answered from the cached index within its lease.
    pub hits: u64,
    /// Routes that found the cache stale and forced a refresh.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of routes served from cache, or 0.0 before any route.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Unified client retry policy: how often, how patiently and for how
/// long a client keeps re-issuing one request.
///
/// A request fails when *either* budget is exhausted — `max_attempts`
/// bounds the number of sends, `deadline` bounds total elapsed time
/// (so a storm of fast redirects cannot spin forever, and a lossy
/// network cannot hold a caller hostage). Between failed attempts the
/// client sleeps an exponentially growing backoff with uniform jitter;
/// see [`RetryPolicy::backoff`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of sends per request.
    pub max_attempts: usize,
    /// First backoff step; doubles per failed attempt (capped at 16×).
    pub base_backoff: Duration,
    /// Upper bound of the uniform jitter added to each backoff.
    pub jitter: Duration,
    /// Wall-clock budget for the whole request, retries included.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 40,
            base_backoff: Duration::from_millis(1),
            jitter: Duration::from_millis(2),
            deadline: Duration::from_secs(10),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based): exponential in
    /// `base_backoff` (doubling, capped at 16×) plus a uniform jitter
    /// draw in `0..=jitter`.
    pub fn backoff(&self, attempt: usize, rng: &mut impl Rng) -> Duration {
        let exp = self.base_backoff * (1u32 << attempt.min(4));
        let jitter_us = self.jitter.as_micros() as u64;
        let jitter = if jitter_us == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(rng.gen_range(0..=jitter_us))
        };
        exp + jitter
    }

    /// [`RetryPolicy::backoff`] quantised to whole milliseconds
    /// (rounded up, so a retry never lands on the same virtual-clock
    /// tick it failed on). Used by clock-stepped callers — the chaos
    /// engine and the consensus leader client — where sleeping is
    /// advancing a `u64` millisecond counter rather than blocking.
    pub fn backoff_ms(&self, attempt: usize, rng: &mut impl Rng) -> u64 {
        let us = self.backoff(attempt, rng).as_micros() as u64;
        us.div_ceil(1_000).max(1)
    }
}

/// A client's cached copy of the local index.
///
/// # Example
///
/// ```
/// use d2tree_cluster::ClientCache;
/// use d2tree_core::LocalIndex;
/// use d2tree_metrics::MdsId;
/// use d2tree_namespace::{NamespaceTree, NodeKind};
///
/// # fn main() -> Result<(), d2tree_namespace::TreeError> {
/// let mut tree = NamespaceTree::new();
/// let sub = tree.create(tree.root(), "project", NodeKind::Directory)?;
/// let mut index = LocalIndex::new();
/// index.insert(sub, MdsId(2));
///
/// let mut cache = ClientCache::new(1_000);
/// cache.refresh(index, 0);
/// use d2tree_cluster::client::RouteDecision;
/// assert_eq!(cache.route(&tree, sub, 10), RouteDecision::Owner(MdsId(2)));
/// assert_eq!(cache.route(&tree, tree.root(), 10), RouteDecision::AnyMds);
/// assert_eq!(cache.route(&tree, sub, 2_000), RouteDecision::StaleCache);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ClientCache {
    index: LocalIndex,
    lease_ms: u64,
    fetched_at_ms: u64,
    has_index: bool,
    hits: u64,
    misses: u64,
}

impl ClientCache {
    /// Creates an empty cache whose entries stay fresh for `lease_ms`.
    #[must_use]
    pub fn new(lease_ms: u64) -> Self {
        ClientCache {
            index: LocalIndex::new(),
            lease_ms,
            fetched_at_ms: 0,
            has_index: false,
            hits: 0,
            misses: 0,
        }
    }

    /// Installs a fresh index copy fetched at `now_ms`.
    pub fn refresh(&mut self, index: LocalIndex, now_ms: u64) {
        self.index = index;
        self.fetched_at_ms = now_ms;
        self.has_index = true;
    }

    /// The cached index version, if any copy is installed.
    #[must_use]
    pub fn version(&self) -> Option<u64> {
        self.has_index.then(|| self.index.version())
    }

    /// Whether the cached copy is within its lease at `now_ms`.
    #[must_use]
    pub fn is_fresh(&self, now_ms: u64) -> bool {
        self.has_index && now_ms.saturating_sub(self.fetched_at_ms) < self.lease_ms
    }

    /// Routes a query per the paper's client logic, recording hit/miss
    /// statistics.
    pub fn route(&mut self, tree: &NamespaceTree, target: NodeId, now_ms: u64) -> RouteDecision {
        if !self.is_fresh(now_ms) {
            self.misses += 1;
            return RouteDecision::StaleCache;
        }
        match self.index.locate(tree, target) {
            Some((_, owner)) => {
                self.hits += 1;
                RouteDecision::Owner(owner)
            }
            None => {
                self.hits += 1;
                RouteDecision::AnyMds
            }
        }
    }

    /// Hit/miss counters accumulated by [`ClientCache::route`].
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_namespace::NodeKind;

    fn setup() -> (NamespaceTree, NodeId, LocalIndex) {
        let mut tree = NamespaceTree::new();
        let sub = tree.create(tree.root(), "s", NodeKind::Directory).unwrap();
        let leaf = tree.create(sub, "leaf", NodeKind::File).unwrap();
        let mut index = LocalIndex::new();
        index.insert(sub, MdsId(1));
        let _ = leaf;
        (tree, sub, index)
    }

    #[test]
    fn empty_cache_is_stale() {
        let (tree, sub, _) = setup();
        let mut cache = ClientCache::new(100);
        assert_eq!(cache.route(&tree, sub, 0), RouteDecision::StaleCache);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
        assert_eq!(cache.stats().hit_ratio(), 0.0);
        assert_eq!(cache.version(), None);
    }

    #[test]
    fn routes_through_subtree_prefix() {
        let (tree, sub, index) = setup();
        let leaf = tree.resolve_str("/s/leaf").unwrap();
        let mut cache = ClientCache::new(100);
        cache.refresh(index, 0);
        assert_eq!(cache.route(&tree, leaf, 50), RouteDecision::Owner(MdsId(1)));
        assert_eq!(cache.route(&tree, sub, 50), RouteDecision::Owner(MdsId(1)));
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 0 });
        assert_eq!(cache.stats().hit_ratio(), 1.0);
    }

    #[test]
    fn lease_expiry_forces_refresh() {
        let (tree, sub, index) = setup();
        let mut cache = ClientCache::new(100);
        cache.refresh(index.clone(), 0);
        assert!(cache.is_fresh(99));
        assert!(!cache.is_fresh(100));
        assert_eq!(cache.route(&tree, sub, 150), RouteDecision::StaleCache);
        cache.refresh(index, 150);
        assert_eq!(cache.route(&tree, sub, 160), RouteDecision::Owner(MdsId(1)));
    }

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(1),
            jitter: Duration::ZERO,
            deadline: Duration::from_secs(1),
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(policy.backoff(0, &mut rng), Duration::from_millis(1));
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_millis(2));
        assert_eq!(policy.backoff(3, &mut rng), Duration::from_millis(8));
        // Capped at 16x base from attempt 4 on.
        assert_eq!(policy.backoff(4, &mut rng), Duration::from_millis(16));
        assert_eq!(policy.backoff(20, &mut rng), Duration::from_millis(16));
    }

    #[test]
    fn backoff_jitter_is_bounded() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let policy = RetryPolicy {
            jitter: Duration::from_millis(3),
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let d = policy.backoff(0, &mut rng);
            assert!(d >= policy.base_backoff);
            assert!(d <= policy.base_backoff + policy.jitter);
        }
    }

    #[test]
    fn version_tracks_refreshes() {
        let (_, sub, mut index) = setup();
        let mut cache = ClientCache::new(100);
        cache.refresh(index.clone(), 0);
        let v1 = cache.version().unwrap();
        index.insert(sub, MdsId(3));
        cache.refresh(index, 10);
        assert!(cache.version().unwrap() > v1);
    }
}
