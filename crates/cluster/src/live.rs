//! A real multi-threaded MDS cluster: one OS thread per server, crossbeam
//! channels as the network, the `bytes` wire codec on every message, a
//! Monitor thread doing heartbeat-based failure detection, and fail-over
//! that re-homes a dead server's nodes onto the survivors.
//!
//! This runtime exists to exercise true concurrency — races between
//! clients, the Monitor and fail-over — that the deterministic simulator
//! cannot. The integration tests and the `rebalance_on_failure` example
//! run on it.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use d2tree_core::{Heartbeat, Subtree};
use d2tree_metrics::{Assignment, ClusterSpec, MdsId, Migration, Placement};
use d2tree_namespace::{AttrTable, NamespaceTree, NodeId, VersionedAttr};
use d2tree_store::{AttrState, MdsRecord, MdsStore, StoreConfig};
use d2tree_workload::{OpKind, Operation};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use d2tree_core::LocalIndex;

use d2tree_telemetry::trace::{span_names, ArgKey, Span, SpanCtx, SpanId, TraceId, Tracer};
use d2tree_telemetry::{
    names, Counter, Event, EventKind, FaultKind, FlightRecorder, HealthTick, MetricKey, Registry,
    TickSample,
};

use crate::client::{CacheStats, ClientCache, RetryPolicy, RouteDecision};
use crate::fault::{FaultDecision, FaultInjector, FaultPlan, NetEdge};
use crate::lock::LockService;
use crate::message::{Request, RequestId, Response, ResponseBody};
use crate::monitor::{ClusterEvent, Monitor, MonitorConfig};

/// Tuning of the live runtime.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// How often each MDS heartbeats the Monitor.
    pub heartbeat_interval: Duration,
    /// Monitor failure-declaration timeout.
    pub failure_timeout: Duration,
    /// Client-side per-attempt response timeout.
    pub request_timeout: Duration,
    /// Client retry policy: attempt budget, backoff and overall deadline.
    pub retry: RetryPolicy,
    /// How long a client's cached local index stays fresh before it
    /// re-fetches (the GFS-style lease of Sec. IV-A2).
    pub index_lease: Duration,
    /// Live rebalancing trigger: the Monitor migrates a hot subtree when
    /// the busiest server's recent local-layer load exceeds the lightest's
    /// by this factor. `f64::INFINITY` disables live rebalancing.
    pub rebalance_factor: f64,
    /// Root directory for durable per-MDS state (`<root>/mds-<k>`).
    /// `None` runs the cluster purely in memory, as before; `Some`
    /// makes every MDS journal ownership changes, attribute commits
    /// and popularity counters to a write-ahead log, and
    /// [`LiveCluster::restart`] then recovers locally from disk.
    pub store_root: Option<PathBuf>,
    /// WAL / snapshot tuning used when `store_root` is set.
    pub store: StoreConfig,
    /// Tracer every hop (client attempts, server serves, lock holds,
    /// monitor decisions, WAL I/O) records spans into; `None` disables
    /// tracing, leaving one branch per potential span on the hot path.
    pub tracer: Option<Arc<Tracer>>,
    /// Flight-recorder ring capacity; `Some(n)` makes the Monitor sample
    /// one [`HealthTick`] per heartbeat interval (balance from live
    /// subtree counters, op/forward/migration deltas, WAL fsync p99),
    /// keeping the newest `n`. `None` disables health recording.
    pub recorder_capacity: Option<usize>,
}

impl LiveConfig {
    /// Attaches a tracer; spans from every hop land in its sink.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Enables the Monitor's flight recorder with room for `capacity`
    /// health ticks.
    #[must_use]
    pub fn with_recorder(mut self, capacity: usize) -> Self {
        self.recorder_capacity = Some(capacity);
        self
    }
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            heartbeat_interval: Duration::from_millis(20),
            failure_timeout: Duration::from_millis(120),
            request_timeout: Duration::from_millis(50),
            retry: RetryPolicy::default(),
            index_lease: Duration::from_millis(500),
            rebalance_factor: 3.0,
            store_root: None,
            store: StoreConfig::default(),
            tracer: None,
            recorder_capacity: None,
        }
    }
}

#[derive(Debug)]
enum ServerMsg {
    Frame(Bytes, Sender<Bytes>),
    /// Control-plane request for the current local index (clients refresh
    /// their cache through this; it is not part of the data-path codec).
    FetchIndex(Sender<LocalIndex>),
    Shutdown,
}

#[derive(Debug)]
struct Shared {
    tree: Arc<NamespaceTree>,
    placement: RwLock<Placement>,
    index: RwLock<LocalIndex>,
    /// One attribute store per server — the replicated metadata state.
    /// Global-layer mutations commit on the serving replica and propagate
    /// version-gated to the others while the per-node lock is held.
    attr_stores: Vec<RwLock<AttrTable>>,
    /// Recent served-op counts per local-layer subtree root — the access
    /// counters MDSs report so the Monitor can rebalance (Sec. IV-B).
    /// Decayed by the Monitor after each inspection.
    subtree_counts: RwLock<HashMap<NodeId, f64>>,
    rebalance_factor: f64,
    migrations: AtomicU64,
    locks: LockService,
    killed: Vec<AtomicBool>,
    /// Wall-ms timestamp of each server's last [`LiveCluster::restart`]
    /// (`u64::MAX` when never restarted, or already consumed by the
    /// Monitor's rejoin-latency measurement).
    restarted_at: Vec<AtomicU64>,
    served: Vec<AtomicU64>,
    redirects: AtomicU64,
    epoch: Instant,
    /// Cluster-wide telemetry: counters plus the event journal the
    /// Monitor also writes membership transitions into.
    registry: Arc<Registry>,
    /// Seeded fault injector both transport directions consult; `None`
    /// runs the cluster fault-free with zero overhead.
    faults: Option<FaultInjector>,
    /// Per-MDS durable stores (empty when durability is disabled).
    /// `None` inside a slot means that MDS is crashed: its store died
    /// with it and is reopened — recovered from disk — on restart.
    /// Lock order: a store mutex is always taken *last*, after any
    /// placement/index/attr/counts locks are released or while only
    /// read guards are held that nothing else orders after it.
    stores: Vec<Mutex<Option<MdsStore>>>,
    /// Tracer shared by every component, `None` when tracing is off.
    tracer: Option<Arc<Tracer>>,
    /// Monitor-sampled health trajectory, `None` when recording is off.
    /// Locked once per heartbeat interval by the Monitor and on reads.
    recorder: Option<Mutex<FlightRecorder>>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_deref()
    }

    /// Consults the fault plan for one message on `edge` (a no-op
    /// `Deliver` when the cluster runs fault-free).
    fn fault(&self, edge: NetEdge) -> FaultDecision {
        match &self.faults {
            Some(inj) => inj.decide(edge, self.now_ms()),
            None => FaultDecision::Deliver,
        }
    }

    /// Appends one record to MDS `k`'s WAL. A no-op when durability is
    /// disabled or the MDS is crashed (its store is out of its slot —
    /// exactly like a write racing a real crash: it never happened).
    fn journal_record(&self, k: usize, record: MdsRecord) {
        if let Some(slot) = self.stores.get(k) {
            if let Some(store) = slot.lock().as_mut() {
                store.append(record).expect("WAL append failed");
            }
        }
    }

    /// Journals an attribute commit on MDS `k`.
    fn journal_attr(&self, k: usize, node: NodeId, gl: bool, committed: VersionedAttr) {
        self.journal_record(
            k,
            MdsRecord::AttrCommit {
                node: node.index() as u64,
                gl,
                attr: attr_state(committed),
            },
        );
    }

    /// Journals a subtree ownership change on MDS `k`.
    fn journal_ownership(&self, k: usize, root: NodeId, acquired: bool) {
        self.journal_record(
            k,
            MdsRecord::Ownership {
                root: root.index() as u64,
                acquired,
            },
        );
    }
}

/// The journaled form of a versioned attribute record.
pub(crate) fn attr_state(v: VersionedAttr) -> AttrState {
    AttrState {
        version: v.version,
        mode: v.attr.mode,
        uid: v.attr.uid,
        gid: v.attr.gid,
        size: v.attr.size,
        mtime: v.attr.mtime,
    }
}

/// The in-memory form of a journaled attribute record.
fn versioned_attr(a: &AttrState) -> VersionedAttr {
    VersionedAttr {
        attr: d2tree_namespace::FileAttr {
            mode: a.mode,
            uid: a.uid,
            gid: a.gid,
            size: a.size,
            mtime: a.mtime,
        },
        version: a.version,
    }
}

/// Final report returned by [`LiveCluster::shutdown`].
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// Operations served per MDS.
    pub served: Vec<u64>,
    /// Redirect responses issued (mis-routed requests).
    pub redirects: u64,
    /// Live subtree migrations the Monitor performed.
    pub migrations: u64,
    /// Membership events the Monitor recorded.
    pub events: Vec<ClusterEvent>,
    /// Full structured event journal of the run, oldest first: heartbeats,
    /// failures, subtree sheds/claims, forwards and cache misses.
    pub journal: Vec<Event>,
}

/// A running in-process MDS cluster.
///
/// Start it with a complete [`Placement`] (usually from a built scheme),
/// obtain any number of [`LiveClient`]s, optionally [`kill`] servers to
/// test fail-over, then [`shutdown`] for the final report.
///
/// [`kill`]: LiveCluster::kill
/// [`shutdown`]: LiveCluster::shutdown
#[derive(Debug)]
pub struct LiveCluster {
    shared: Arc<Shared>,
    config: LiveConfig,
    server_txs: Vec<Sender<ServerMsg>>,
    server_handles: Vec<JoinHandle<()>>,
    monitor_handle: Option<JoinHandle<Monitor>>,
    monitor_stop: Arc<AtomicBool>,
}

impl LiveCluster {
    /// Spawns `placement.cluster_size()` server threads plus the Monitor.
    ///
    /// # Panics
    ///
    /// Panics if the placement is not complete for `tree`.
    #[must_use]
    pub fn start(tree: Arc<NamespaceTree>, placement: Placement, config: LiveConfig) -> Self {
        Self::start_with_index(tree, placement, LocalIndex::new(), config)
    }

    /// Like [`start`](Self::start), seeding the servers with a local index
    /// (usually `D2TreeScheme::local_index().clone()`), which clients then
    /// cache and route by. Without one, clients fall back to contacting
    /// arbitrary servers and following redirects.
    ///
    /// # Panics
    ///
    /// Panics if the placement is not complete for `tree`.
    #[must_use]
    pub fn start_with_index(
        tree: Arc<NamespaceTree>,
        placement: Placement,
        index: LocalIndex,
        config: LiveConfig,
    ) -> Self {
        Self::start_inner(tree, placement, index, config, None)
    }

    /// Like [`start_with_index`](Self::start_with_index), with a seeded
    /// [`FaultPlan`] that every transport edge (client↔MDS, MDS↔Monitor,
    /// MDS↔lock-service) consults on each message. Injected faults are
    /// journaled as [`EventKind::FaultInjected`] and counted in the
    /// `faults_dropped/delayed/duplicated_total` counters.
    ///
    /// # Panics
    ///
    /// Panics if the placement is not complete for `tree`.
    #[must_use]
    pub fn start_with_faults(
        tree: Arc<NamespaceTree>,
        placement: Placement,
        index: LocalIndex,
        config: LiveConfig,
        plan: FaultPlan,
    ) -> Self {
        Self::start_inner(tree, placement, index, config, Some(plan))
    }

    fn start_inner(
        tree: Arc<NamespaceTree>,
        placement: Placement,
        index: LocalIndex,
        config: LiveConfig,
        plan: Option<FaultPlan>,
    ) -> Self {
        assert!(
            placement.is_complete(&tree),
            "live cluster needs a complete placement"
        );
        let m = placement.cluster_size();
        let attr_stores = (0..m).map(|_| RwLock::new(AttrTable::new(&tree))).collect();
        let registry = Arc::new(Registry::new());
        let faults = plan
            .filter(|p| !p.is_empty())
            .map(|p| FaultInjector::new(&p).with_registry(Arc::clone(&registry)));
        // Durable stores: open (recovering whatever a previous run left
        // on disk) and journal each server's initial subtree ownership.
        let stores: Vec<Mutex<Option<MdsStore>>> = match &config.store_root {
            Some(root) => (0..m)
                .map(|k| {
                    let dir = root.join(format!("mds-{k}"));
                    let (store, _) = MdsStore::open(&dir, config.store).expect("store open failed");
                    let mut store = store.with_registry(&registry, k as u16);
                    if let Some(tr) = &config.tracer {
                        store = store.with_tracer(Arc::clone(tr), k as u16);
                    }
                    // Converge the durable ownership set on the seeded
                    // index: shed whatever a previous run left behind,
                    // acquire what this run assigns.
                    let seeded: std::collections::BTreeSet<u64> = index
                        .iter()
                        .filter(|(_, owner)| owner.index() == k)
                        .map(|(subtree_root, _)| subtree_root.index() as u64)
                        .collect();
                    let stale: Vec<u64> =
                        store.state().owned.difference(&seeded).copied().collect();
                    for root in stale {
                        store
                            .append(MdsRecord::Ownership {
                                root,
                                acquired: false,
                            })
                            .expect("WAL append failed");
                    }
                    for root in seeded {
                        store
                            .append(MdsRecord::Ownership {
                                root,
                                acquired: true,
                            })
                            .expect("WAL append failed");
                    }
                    store.sync().expect("WAL sync failed");
                    Mutex::new(Some(store))
                })
                .collect(),
            None => Vec::new(),
        };
        let shared = Arc::new(Shared {
            tree,
            placement: RwLock::new(placement),
            index: RwLock::new(index),
            attr_stores,
            subtree_counts: RwLock::new(HashMap::new()),
            rebalance_factor: config.rebalance_factor,
            migrations: AtomicU64::new(0),
            locks: LockService::new(1_000),
            killed: (0..m).map(|_| AtomicBool::new(false)).collect(),
            restarted_at: (0..m).map(|_| AtomicU64::new(u64::MAX)).collect(),
            served: (0..m).map(|_| AtomicU64::new(0)).collect(),
            redirects: AtomicU64::new(0),
            epoch: Instant::now(),
            registry,
            faults,
            stores,
            tracer: config.tracer.clone(),
            recorder: config
                .recorder_capacity
                .map(|c| Mutex::new(FlightRecorder::new(c))),
        });

        let (hb_tx, hb_rx) = unbounded::<Heartbeat>();
        let mut server_txs = Vec::with_capacity(m);
        let mut server_handles = Vec::with_capacity(m);
        for k in 0..m {
            let (tx, rx) = unbounded::<ServerMsg>();
            server_txs.push(tx);
            let shared = Arc::clone(&shared);
            let hb_tx = hb_tx.clone();
            let interval = config.heartbeat_interval;
            let retry = config.retry;
            server_handles.push(std::thread::spawn(move || {
                server_main(&shared, k, &rx, &hb_tx, interval, retry);
            }));
        }
        drop(hb_tx);

        let monitor_stop = Arc::new(AtomicBool::new(false));
        let monitor_handle = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&monitor_stop);
            let mon_config = MonitorConfig {
                heartbeat_interval_ms: config.heartbeat_interval.as_millis() as u64,
                failure_timeout_ms: config.failure_timeout.as_millis() as u64,
                ..MonitorConfig::default()
            };
            std::thread::spawn(move || monitor_main(&shared, m, mon_config, &hb_rx, &stop))
        };

        LiveCluster {
            shared,
            config,
            server_txs,
            server_handles,
            monitor_handle: Some(monitor_handle),
            monitor_stop,
        }
    }

    /// A new client handle (clients are cheap; make one per thread).
    #[must_use]
    pub fn client(&self, seed: u64) -> LiveClient {
        let registry = &self.shared.registry;
        LiveClient {
            cache_hits: registry.counter(MetricKey::global(names::CLIENT_CACHE_HITS)),
            cache_misses: registry.counter(MetricKey::global(names::CLIENT_CACHE_MISSES)),
            monitor_retries: registry.counter(MetricKey::global(names::MONITOR_RETRIES_TOTAL)),
            client_id: seed,
            shared: Arc::clone(&self.shared),
            server_txs: self.server_txs.clone(),
            timeout: self.config.request_timeout,
            retry: self.config.retry,
            cache: ClientCache::new(self.config.index_lease.as_millis() as u64),
            next_id: 1,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Crash-stops one MDS: it silently drops every message and stops
    /// heartbeating, exactly like a crashed process behind a live socket.
    ///
    /// Idempotent and panic-free: killing an already-dead or unknown
    /// `MdsId` is a no-op. Returns whether the call changed state (the
    /// server was alive and is now dead).
    pub fn kill(&self, mds: MdsId) -> bool {
        let changed = match self.shared.killed.get(mds.index()) {
            Some(flag) => !flag.swap(true, Ordering::SeqCst),
            None => false,
        };
        if changed {
            if let Some(slot) = self.shared.stores.get(mds.index()) {
                if let Some(store) = slot.lock().take() {
                    // The crash happens at an arbitrary point in the
                    // group-commit window: a prefix of the unsynced
                    // buffer tears into the file, the rest is lost.
                    let pending = store.pending_bytes();
                    let keep = if pending == 0 {
                        0
                    } else {
                        (self.shared.now_ms() as usize).wrapping_mul(2_654_435_761) % (pending + 1)
                    };
                    store.simulate_crash(keep).expect("crash simulation failed");
                }
            }
        }
        changed
    }

    /// Crash-**restarts** a previously-[`kill`](Self::kill)ed MDS,
    /// running the recovery half of the paper's dynamic-adjustment
    /// protocol:
    ///
    /// 1. With durability enabled ([`LiveConfig::store_root`]), the MDS
    ///    first recovers locally from disk: it reopens its store
    ///    (snapshot + WAL replay, truncating a torn final record),
    ///    rebuilds its attribute table from the journaled commits,
    ///    re-seeds its popularity counters, and sheds — durably — any
    ///    subtree the cluster re-homed while it was down. The recovery
    ///    time lands in the `recovery_ms` histogram and an
    ///    [`EventKind::StoreRecovered`] journal event.
    /// 2. The replica then **delta-syncs** its global-layer state
    ///    through the lock service: only nodes where some live replica
    ///    holds a *newer* version than the local (recovered) copy are
    ///    locked and copied — a version-gated delta, not the full GL
    ///    sweep. The entries transferred are journaled as
    ///    [`EventKind::GlDeltaSync`] and counted in
    ///    `gl_delta_sync_entries_total`. (A killed replica misses all
    ///    GL propagation while down, so this is what makes it safe to
    ///    serve again.)
    /// 3. It resumes heartbeating, which re-registers it with the
    ///    Monitor: the Monitor sees a heartbeat from a declared-dead
    ///    server, journals [`EventKind::MdsRejoined`] and hands it
    ///    subtrees from the pending pool via the mirror-division
    ///    claiming path (Sec. IV-B).
    ///
    /// Idempotent and panic-free: restarting an alive or unknown
    /// `MdsId` is a no-op. Returns whether the call changed state (the
    /// server was dead and is now rejoining).
    ///
    /// # Panics
    ///
    /// Panics if durability is enabled and the on-disk store cannot be
    /// recovered (I/O failure or corruption worse than a torn tail) —
    /// an MDS must not serve from state it cannot trust.
    pub fn restart(&self, mds: MdsId) -> bool {
        let Some(flag) = self.shared.killed.get(mds.index()) else {
            return false;
        };
        if !flag.load(Ordering::SeqCst) {
            return false;
        }
        let me = mds.index();
        // Phase 1: local recovery from disk (durability enabled only).
        let mut recovered = None;
        if let Some(root) = &self.config.store_root {
            let dir = root.join(format!("mds-{me}"));
            let (store, info) =
                MdsStore::open(&dir, self.config.store).expect("store recovery failed");
            let mut store = store.with_registry(&self.shared.registry, me as u16);
            if let Some(tr) = &self.shared.tracer {
                store = store.with_tracer(Arc::clone(tr), me as u16);
            }
            let recovery_ms = info.duration.as_millis() as u64;
            self.shared
                .registry
                .histogram(MetricKey::mds(names::RECOVERY_MS, me as u16))
                .record(recovery_ms);
            self.shared
                .registry
                .journal()
                .record(EventKind::StoreRecovered {
                    mds: me as u16,
                    records: info.records_replayed,
                    torn_bytes: info.torn_bytes,
                    recovery_ms,
                });
            // The crash wiped the process: rebuild the in-memory table
            // from durable state alone. Unsynced commits inside the
            // last group-commit window are gone — for GL nodes the
            // delta sync below re-fetches them from live replicas.
            let mut table = AttrTable::new(&self.shared.tree);
            for (&node, a) in &store.state().attrs {
                table.apply_if_newer(NodeId::from_index(node as usize), versioned_attr(a));
            }
            *self.shared.attr_stores[me].write() = table;
            // Re-seed popularity counters; live values (accumulated by
            // the survivors since the crash) win over journaled ones.
            {
                let mut counts = self.shared.subtree_counts.write();
                for (&r, &bits) in &store.state().popularity {
                    counts
                        .entry(NodeId::from_index(r as usize))
                        .or_insert_with(|| f64::from_bits(bits));
                }
            }
            // Ownership reconcile: anything the Monitor re-homed while
            // we were down is durably shed before we serve again.
            let index = self.shared.index.read().clone();
            let stale: Vec<u64> = store
                .state()
                .owned
                .iter()
                .copied()
                .filter(|&r| {
                    index.owner_of(NodeId::from_index(r as usize)) != Some(MdsId(me as u16))
                })
                .collect();
            for r in stale {
                store
                    .append(MdsRecord::Ownership {
                        root: r,
                        acquired: false,
                    })
                    .expect("WAL append failed");
            }
            recovered = Some(store);
        }
        // Phase 2: version-gated GL delta sync. Only nodes where a live
        // replica is ahead of the local copy are locked and copied; the
        // common case after a short outage touches a handful of nodes
        // instead of the whole global layer.
        let replicated: Vec<NodeId> = {
            let placement = self.shared.placement.read();
            self.shared
                .tree
                .nodes()
                .map(|(id, _)| id)
                .filter(|&id| placement.assignment(id) == Assignment::Replicated)
                .collect()
        };
        let mut entries = 0u64;
        for node in replicated {
            let mine = self.shared.attr_stores[me].read().get(node).version;
            let behind = self
                .shared
                .attr_stores
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != me && !self.shared.killed[k].load(Ordering::SeqCst))
                .any(|(_, store)| store.read().get(node).version > mine);
            if !behind {
                continue; // already current: no lock, no copy
            }
            // Fetch under the node's lock so a concurrent writer cannot
            // interleave a partial commit, re-reading the freshest copy
            // now that we hold it.
            let token = loop {
                if let Some(t) = self.shared.locks.try_acquire(node, self.shared.now_ms()) {
                    break t;
                }
                std::thread::yield_now();
            };
            let freshest = self
                .shared
                .attr_stores
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != me && !self.shared.killed[k].load(Ordering::SeqCst))
                .map(|(_, store)| store.read().get(node))
                .max_by_key(|attr| attr.version);
            if let Some(attr) = freshest {
                if self.shared.attr_stores[me]
                    .write()
                    .apply_if_newer(node, attr)
                {
                    entries += 1;
                    if let Some(store) = recovered.as_mut() {
                        store
                            .append(MdsRecord::AttrCommit {
                                node: node.index() as u64,
                                gl: true,
                                attr: attr_state(attr),
                            })
                            .expect("WAL append failed");
                    }
                }
            }
            let released = self.shared.locks.release(token);
            debug_assert!(released, "fresh token releases cleanly");
        }
        self.shared
            .registry
            .counter(MetricKey::global(names::GL_DELTA_SYNC_ENTRIES))
            .add(entries);
        self.shared
            .registry
            .journal()
            .record(EventKind::GlDeltaSync {
                mds: me as u16,
                entries,
            });
        // Publish the recovered store so the serve path journals again.
        if let Some(mut store) = recovered {
            store.sync().expect("WAL sync failed");
            *self.shared.stores[me].lock() = Some(store);
        }
        self.shared.restarted_at[me].store(self.shared.now_ms(), Ordering::SeqCst);
        // Clearing the flag resumes serving and heartbeating; the
        // Monitor completes the rejoin on the next heartbeat.
        flag.store(false, Ordering::SeqCst);
        true
    }

    /// Machine-checks the cluster's ownership and replication
    /// invariants at a quiesce point (no kill/restart/partition
    /// currently in flight and fail-over given time to settle):
    ///
    /// * the placement is complete — no node lost its assignment;
    /// * every single-owner node's owner is a live (non-killed) MDS;
    /// * the published local index agrees with the placement (no
    ///   subtree double-owned between the index and the placement);
    /// * global-layer attribute versions agree across live replicas.
    ///
    /// Returns human-readable violation descriptions (empty = healthy).
    /// Mid-fail-over the checker legitimately reports transient
    /// violations; poll until empty instead of asserting immediately.
    #[must_use]
    pub fn check_invariants(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let alive = |k: MdsId| -> bool { !self.shared.killed[k.index()].load(Ordering::SeqCst) };
        let placement = self.shared.placement.read().clone();
        if !placement.is_complete(&self.shared.tree) {
            violations.push("placement incomplete: some node lost its assignment".to_string());
        }
        for (id, _) in self.shared.tree.nodes() {
            if let Some(owner) = placement.assignment(id).owner() {
                if owner.index() >= self.shared.killed.len() {
                    violations.push(format!(
                        "node {} owned by unknown mds{}",
                        id.index(),
                        owner.0
                    ));
                } else if !alive(owner) {
                    violations.push(format!("node {} owned by dead mds{}", id.index(), owner.0));
                }
            }
        }
        let index = self.shared.index.read().clone();
        for (root, owner) in index.iter() {
            match placement.assignment(root).owner() {
                Some(o) if o == owner => {}
                other => violations.push(format!(
                    "index points subtree {} at mds{} but placement says {:?}",
                    root.index(),
                    owner.0,
                    other
                )),
            }
        }
        for (id, _) in self.shared.tree.nodes() {
            if placement.assignment(id) != Assignment::Replicated {
                continue;
            }
            let versions: Vec<(usize, u64)> = self
                .shared
                .attr_stores
                .iter()
                .enumerate()
                .filter(|&(k, _)| alive(MdsId(k as u16)))
                .map(|(k, store)| (k, store.read().get(id).version))
                .collect();
            if versions.windows(2).any(|w| w[0].1 != w[1].1) {
                violations.push(format!(
                    "GL replica divergence on node {}: {versions:?}",
                    id.index()
                ));
            }
        }
        // Durable-store invariants (durability enabled only): each live
        // MDS's journaled state must agree with the cluster's in-memory
        // state — what a crash right now would recover is exactly what
        // the MDS is serving.
        for (k, slot) in self.shared.stores.iter().enumerate() {
            if !alive(MdsId(k as u16)) {
                continue;
            }
            let guard = slot.lock();
            let Some(store) = guard.as_ref() else {
                violations.push(format!("live mds{k} has no open store"));
                continue;
            };
            let state = store.state();
            let index_owned: std::collections::BTreeSet<u64> = index
                .iter()
                .filter(|(_, owner)| owner.index() == k)
                .map(|(root, _)| root.index() as u64)
                .collect();
            if state.owned != index_owned {
                violations.push(format!(
                    "mds{k} journaled ownership {:?} disagrees with index {:?}",
                    state.owned, index_owned
                ));
            }
            let table = self.shared.attr_stores[k].read();
            for (&node, a) in &state.attrs {
                let live = table.get(NodeId::from_index(node as usize)).version;
                if live != a.version {
                    violations.push(format!(
                        "mds{k} journaled attr version {} for node {node}, serving {live}",
                        a.version
                    ));
                }
            }
        }
        violations
    }

    /// Snapshot of the current placement (e.g. to observe fail-over).
    #[must_use]
    pub fn placement_snapshot(&self) -> Placement {
        self.shared.placement.read().clone()
    }

    /// The cluster's telemetry registry: per-MDS counters plus the
    /// structured event journal (shared with the Monitor). Snapshot it any
    /// time — including while the cluster is running — to export metrics
    /// via [`d2tree_telemetry::export`].
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// The Monitor's health trajectory so far, oldest tick first — empty
    /// unless the cluster was started with
    /// [`LiveConfig::with_recorder`]. Safe to call while running; the
    /// recorder is locked only for the copy.
    #[must_use]
    pub fn health_ticks(&self) -> Vec<HealthTick> {
        self.shared
            .recorder
            .as_ref()
            .map_or_else(Vec::new, |r| r.lock().ticks().cloned().collect())
    }

    /// The attribute version server `mds` holds for `node` — used to
    /// verify replica convergence after global-layer updates.
    #[must_use]
    pub fn attr_version(&self, mds: MdsId, node: NodeId) -> u64 {
        self.shared.attr_stores[mds.index()]
            .read()
            .get(node)
            .version
    }

    /// Stops every thread and returns the run's report.
    ///
    /// # Panics
    ///
    /// Panics if a server or the Monitor thread panicked.
    #[must_use]
    pub fn shutdown(mut self) -> LiveReport {
        for tx in &self.server_txs {
            let _ = tx.send(ServerMsg::Shutdown);
        }
        for h in self.server_handles.drain(..) {
            h.join().expect("server thread panicked");
        }
        self.monitor_stop.store(true, Ordering::SeqCst);
        let monitor = self
            .monitor_handle
            .take()
            .expect("shutdown called once")
            .join()
            .expect("monitor thread panicked");
        // A clean shutdown leaves every surviving store durable up to
        // its last append.
        for slot in &self.shared.stores {
            if let Some(store) = slot.lock().as_mut() {
                store.sync().expect("WAL sync failed");
            }
        }
        LiveReport {
            served: self
                .shared
                .served
                .iter()
                .map(|s| s.load(Ordering::SeqCst))
                .collect(),
            redirects: self.shared.redirects.load(Ordering::SeqCst),
            migrations: self.shared.migrations.load(Ordering::SeqCst),
            events: monitor.events(),
            journal: self.shared.registry.journal().snapshot(),
        }
    }
}

fn server_main(
    shared: &Shared,
    me: usize,
    rx: &Receiver<ServerMsg>,
    hb_tx: &Sender<Heartbeat>,
    interval: Duration,
    retry: RetryPolicy,
) {
    let my_id = MdsId(me as u16);
    // Cache counter handles once; the serve loop must not take the
    // registry's map locks.
    let served_total = shared
        .registry
        .counter(MetricKey::mds(names::SERVER_SERVED_TOTAL, me as u16));
    let forwarded_total = shared
        .registry
        .counter(MetricKey::global(names::FORWARDED_TOTAL));
    let monitor_retries = shared
        .registry
        .counter(MetricKey::global(names::MONITOR_RETRIES_TOTAL));
    // Heartbeat resends are spaced by the same capped-exponential +
    // seeded-jitter policy the clients use; seeded per server so runs
    // stay reproducible.
    let mut hb_rng = StdRng::seed_from_u64(0x6d6f_6e5f_7274_7279 ^ me as u64);
    let mut last_hb = Instant::now() - interval; // heartbeat immediately
    loop {
        if !shared.killed[me].load(Ordering::SeqCst) && last_hb.elapsed() >= interval {
            let load = shared.served[me].load(Ordering::SeqCst) as f64;
            let hb = Heartbeat { mds: my_id, load };
            match shared.fault(NetEdge::MdsToMonitor(me as u16)) {
                FaultDecision::Drop => {
                    // Heartbeat lost in transit. A silent loss costs a
                    // whole interval and edges the server toward a false
                    // failure declaration, so retry a bounded number of
                    // times under the shared policy instead of the old
                    // fire-and-forget. Backoff is capped well below the
                    // interval: the serve loop must not stall.
                    for attempt in 0..2 {
                        monitor_retries.inc();
                        let pause = retry.backoff(attempt, &mut hb_rng).min(interval / 8);
                        std::thread::sleep(pause);
                        if shared.killed[me].load(Ordering::SeqCst) {
                            break;
                        }
                        if shared.fault(NetEdge::MdsToMonitor(me as u16)) != FaultDecision::Drop {
                            let _ = hb_tx.send(hb);
                            break;
                        }
                    }
                }
                FaultDecision::Delay(ms) => {
                    let hb_tx = hb_tx.clone();
                    std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_millis(ms));
                        let _ = hb_tx.send(hb);
                    });
                }
                FaultDecision::DeliverTwice => {
                    let _ = hb_tx.send(hb);
                    let _ = hb_tx.send(hb); // heartbeats are idempotent
                }
                FaultDecision::Deliver => {
                    let _ = hb_tx.send(hb);
                }
            }
            last_hb = Instant::now();
        }
        match rx.recv_timeout(interval) {
            Ok(ServerMsg::Shutdown) => break,
            Ok(ServerMsg::FetchIndex(reply)) => {
                if !shared.killed[me].load(Ordering::SeqCst) {
                    let _ = reply.send(shared.index.read().clone());
                }
            }
            Ok(ServerMsg::Frame(mut frame, reply)) => {
                if shared.killed[me].load(Ordering::SeqCst) {
                    continue; // crashed: silently drop
                }
                let Some(req) = Request::decode(&mut frame) else {
                    continue;
                };
                // The serve span's id is allocated up front so lock/apply
                // child spans can parent on it even though the serve span
                // itself is only recorded once the response is ready.
                let serve_ctx = match (shared.tracer(), req.trace) {
                    (Some(tr), Some((t, s))) => {
                        let ctx = SpanCtx {
                            trace: TraceId(t),
                            span: SpanId(s),
                        };
                        Some((ctx, tr.next_span(ctx.trace), tr.now_us()))
                    }
                    _ => None,
                };
                let assignment = shared.placement.read().assignment(req.target);
                let body = match assignment {
                    Assignment::Replicated => {
                        if req.kind == OpKind::Update {
                            // The lock service sits across the network:
                            // consult the fault plan before talking to it.
                            // Partitioned from it, the server cannot
                            // serialise the update — drop the request and
                            // let the client's retry policy cope.
                            let lock_fault = shared.fault(NetEdge::MdsToLock(me as u16));
                            let lock_fault_kind = lock_fault.kind();
                            match lock_fault {
                                FaultDecision::Drop => {
                                    // Partitioned from the lock service: the
                                    // request dies here — attribute the loss
                                    // to this hop before dropping it.
                                    if let Some((ctx, id, start)) = serve_ctx {
                                        let tr = shared.tracer().expect("ctx implies tracer");
                                        tr.record(
                                            Span::child(
                                                ctx,
                                                id,
                                                span_names::SERVE,
                                                start,
                                                tr.now_us().saturating_sub(start),
                                            )
                                            .on_mds(me as u16)
                                            .with_fault(FaultKind::Drop)
                                            .with_arg(ArgKey::Target, req.target.index() as u64),
                                        );
                                    }
                                    continue;
                                }
                                FaultDecision::Delay(ms) => {
                                    std::thread::sleep(Duration::from_millis(ms));
                                }
                                _ => {}
                            }
                            // Global-layer mutation: serialise through the
                            // lock service (spin until granted), commit on
                            // this replica, propagate to the others while
                            // the lock is held.
                            let lock_t0 = shared.tracer().map(Tracer::now_us);
                            // Spin until granted *and still live at apply
                            // time*: a lease that expired while the write
                            // was in flight (e.g. behind an injected
                            // delay) must not authorise the mutation —
                            // re-acquire under a fresh fence instead of
                            // applying stale.
                            let mut spins = 0u64;
                            let token = loop {
                                let (t, s) =
                                    shared.locks.acquire_spin(req.target, || shared.now_ms());
                                spins += s;
                                if shared.locks.validate(t, shared.now_ms()) {
                                    break t;
                                }
                                spins += 1;
                            };
                            let now = shared.now_ms();
                            shared.attr_stores[me]
                                .write()
                                .update(req.target, |a| a.mtime = now);
                            let committed = shared.attr_stores[me].read().get(req.target);
                            shared.journal_attr(me, req.target, true, committed);
                            for (k, store) in shared.attr_stores.iter().enumerate() {
                                // A killed replica is a crashed process: it
                                // misses propagation and must re-sync through
                                // the lock service on restart.
                                if k != me && !shared.killed[k].load(Ordering::SeqCst) {
                                    // Each replica that actually advanced
                                    // journals the propagated commit; a
                                    // stale duplicate is not re-journaled.
                                    if store.write().apply_if_newer(req.target, committed) {
                                        shared.journal_attr(k, req.target, true, committed);
                                    }
                                }
                            }
                            let released = shared.locks.release(token);
                            debug_assert!(released, "fresh token releases cleanly");
                            // Wait + hold of the global-layer lock, nested
                            // under this server's serve span.
                            if let Some((ctx, serve_id, _)) = serve_ctx {
                                let tr = shared.tracer().expect("ctx implies tracer");
                                let start = lock_t0.unwrap_or(0);
                                let parent = SpanCtx {
                                    trace: ctx.trace,
                                    span: serve_id,
                                };
                                let mut sp = Span::child(
                                    parent,
                                    tr.next_span(ctx.trace),
                                    span_names::LOCK,
                                    start,
                                    tr.now_us().saturating_sub(start),
                                )
                                .on_mds(me as u16)
                                .with_arg(ArgKey::Node, req.target.index() as u64)
                                .with_arg(ArgKey::Spins, spins);
                                if let Some(k) = lock_fault_kind {
                                    sp = sp.with_fault(k);
                                }
                                tr.record(sp);
                            }
                        }
                        ResponseBody::Served { node: req.target }
                    }
                    Assignment::Single(owner) if owner == my_id => {
                        if req.kind == OpKind::Update {
                            // Local-layer mutation: single copy, no lock.
                            let now = shared.now_ms();
                            shared.attr_stores[me]
                                .write()
                                .update(req.target, |a| a.mtime = now);
                            let committed = shared.attr_stores[me].read().get(req.target);
                            shared.journal_attr(me, req.target, false, committed);
                        }
                        ResponseBody::Served { node: req.target }
                    }
                    Assignment::Single(owner) => {
                        shared.redirects.fetch_add(1, Ordering::Relaxed);
                        forwarded_total.inc();
                        shared.registry.journal().record(EventKind::Forwarded {
                            from: me as u16,
                            to: owner.0,
                        });
                        ResponseBody::Redirect { owner }
                    }
                    Assignment::Unassigned => ResponseBody::NotFound,
                };
                if matches!(body, ResponseBody::Served { .. }) {
                    shared.served[me].fetch_add(1, Ordering::Relaxed);
                    served_total.inc();
                    if matches!(assignment, Assignment::Single(_)) {
                        if let Some((root, _)) =
                            shared.index.read().locate(&shared.tree, req.target)
                        {
                            let bits = {
                                let mut counts = shared.subtree_counts.write();
                                let v = counts.entry(root).or_insert(0.0);
                                *v += 1.0;
                                v.to_bits()
                            };
                            // Journal the counter's new absolute value so
                            // recovery restores popularity exactly.
                            shared.journal_record(
                                me,
                                MdsRecord::Popularity {
                                    root: root.index() as u64,
                                    bits,
                                },
                            );
                        }
                    }
                }
                let resp = Response {
                    id: req.id,
                    from: my_id,
                    body,
                    hops: req.hops,
                };
                let frame = resp.encode();
                let reply_fault = shared.fault(NetEdge::MdsToClient(me as u16));
                if let Some((ctx, serve_id, start)) = serve_ctx {
                    let tr = shared.tracer().expect("ctx implies tracer");
                    let mut sp = Span::child(
                        ctx,
                        serve_id,
                        span_names::SERVE,
                        start,
                        tr.now_us().saturating_sub(start),
                    )
                    .on_mds(me as u16)
                    .with_arg(ArgKey::Target, req.target.index() as u64)
                    .with_arg(
                        ArgKey::Body,
                        match body {
                            ResponseBody::Served { .. } => 0,
                            ResponseBody::Redirect { .. } => 1,
                            ResponseBody::NotFound => 2,
                        },
                    );
                    if let Some(k) = reply_fault.kind() {
                        sp = sp.with_fault(k);
                    }
                    tr.record(sp);
                }
                match reply_fault {
                    FaultDecision::Drop => {} // reply lost; client times out
                    FaultDecision::Delay(ms) => {
                        // Deliver late without stalling the serve loop.
                        std::thread::spawn(move || {
                            std::thread::sleep(Duration::from_millis(ms));
                            let _ = reply.try_send(frame);
                        });
                    }
                    FaultDecision::DeliverTwice => {
                        let _ = reply.send(frame.clone());
                        // The client consumes one copy and drops the
                        // channel; never block on the duplicate.
                        let _ = reply.try_send(frame);
                    }
                    FaultDecision::Deliver => {
                        let _ = reply.send(frame);
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn monitor_main(
    shared: &Shared,
    m: usize,
    config: MonitorConfig,
    hb_rx: &Receiver<Heartbeat>,
    stop: &AtomicBool,
) -> Monitor {
    // Share the registry's journal so membership transitions land in the
    // same ordered stream as sheds/claims/forwards.
    let mut mon = Monitor::with_journal(config, m, Arc::clone(shared.registry.journal()));
    let failures_total = shared
        .registry
        .counter(MetricKey::global(names::MDS_FAILURES_TOTAL));
    let rejoins_total = shared
        .registry
        .counter(MetricKey::global(names::REJOINS_TOTAL));
    let rejoin_latency = shared
        .registry
        .histogram(MetricKey::global(names::REJOIN_FIRST_CLAIM_MS));
    let health_ticks_total = shared
        .registry
        .counter(MetricKey::global(names::HEALTH_TICKS_TOTAL));
    let tick_ms = config.heartbeat_interval_ms.max(1);
    let mut next_sample_ms = 0u64;
    let tick = Duration::from_millis(tick_ms);
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match hb_rx.recv_timeout(tick) {
            Ok(hb) => {
                let hb_t0 = shared.tracer().map(Tracer::now_us);
                if let Some(ClusterEvent::MdsRecovered(back)) =
                    mon.on_heartbeat(hb, shared.now_ms())
                {
                    let now = shared.now_ms();
                    let claimed = rejoin_claims(shared, &mut mon, m, back, now);
                    // The heartbeat that flipped an MDS back to alive is a
                    // monitor decision worth a span of its own.
                    if let Some(tr) = shared.tracer() {
                        if let Some(ctx) = tr.begin() {
                            let start = hb_t0.unwrap_or(0);
                            tr.record(
                                Span::root(
                                    ctx,
                                    span_names::HEARTBEAT,
                                    start,
                                    tr.now_us().saturating_sub(start),
                                )
                                .with_arg(ArgKey::Mds, u64::from(back.0))
                                .with_arg(ArgKey::Claimed, claimed as u64),
                            );
                        }
                    }
                    rejoins_total.inc();
                    let restarted =
                        shared.restarted_at[back.index()].swap(u64::MAX, Ordering::SeqCst);
                    if restarted != u64::MAX {
                        rejoin_latency.record(now.saturating_sub(restarted));
                    }
                    shared.registry.journal().record(EventKind::MdsRejoined {
                        mds: back.0,
                        claimed: claimed as u64,
                    });
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        let now = shared.now_ms();
        live_rebalance(shared, &mon, m, now);
        // Fixed-interval health sampling: one tick per heartbeat
        // interval, no matter how bursty the heartbeat traffic is.
        if let Some(rec) = &shared.recorder {
            if now >= next_sample_ms {
                next_sample_ms = now + tick_ms;
                let loads = per_server_load(shared, m);
                let total: f64 = loads.iter().sum();
                #[allow(clippy::cast_precision_loss)]
                let spec = ClusterSpec::homogeneous(m, (total / m as f64).max(f64::MIN_POSITIVE));
                rec.lock().sample(
                    TickSample {
                        t_us: shared.registry.uptime_us(),
                        // Live locality needs a namespace popularity
                        // model the data plane does not maintain; NaN
                        // marks it unknown (exported as null).
                        locality: f64::NAN,
                        balance: d2tree_metrics::balance(&loads, &spec),
                        ops_total: shared
                            .served
                            .iter()
                            .map(|s| s.load(Ordering::Relaxed))
                            .sum(),
                        retries_total: shared.redirects.load(Ordering::Relaxed),
                        migrations_total: shared.migrations.load(Ordering::Relaxed),
                        loads,
                    },
                    Some(&shared.registry),
                );
                health_ticks_total.inc();
            }
        }
        let detect_t0 = shared.tracer().map(Tracer::now_us);
        let failures = mon.detect_failures(now);
        if !failures.is_empty() {
            if let Some(tr) = shared.tracer() {
                if let Some(ctx) = tr.begin() {
                    let start = detect_t0.unwrap_or(0);
                    tr.record(
                        Span::root(
                            ctx,
                            span_names::DETECT,
                            start,
                            tr.now_us().saturating_sub(start),
                        )
                        .with_arg(ArgKey::Failures, failures.len() as u64),
                    );
                }
            }
        }
        for event in failures {
            if let ClusterEvent::MdsFailed(dead) = event {
                failures_total.inc();
                let failover_t0 = shared.tracer().map(Tracer::now_us);
                // Re-home the dead server's nodes onto the survivors,
                // spreading round-robin (whole subtrees stay together
                // because children shared the dead owner).
                let survivors: Vec<MdsId> = (0..m as u16)
                    .map(MdsId)
                    .filter(|&k| k != dead && mon.is_alive(k, now))
                    .collect();
                if survivors.is_empty() {
                    continue;
                }
                let mut placement = shared.placement.write();
                let mut i = 0usize;
                for (id, _) in shared.tree.nodes() {
                    if placement.assignment(id).owner() == Some(dead) {
                        placement.set(id, Assignment::Single(survivors[i % survivors.len()]));
                        i += 1;
                    }
                }
                drop(placement);
                // Snapshot popularity before touching the index lock:
                // servers take index.read → subtree_counts.write, so taking
                // subtree_counts under index.write would invert the order.
                let counts: HashMap<NodeId, f64> = shared.subtree_counts.read().clone();
                // Re-point the published local index so freshly-fetched
                // client caches route around the dead server.
                let placement = shared.placement.read();
                let mut index = shared.index.write();
                let stale: Vec<_> = index
                    .iter()
                    .filter(|(_, owner)| *owner == dead)
                    .map(|(root, _)| root)
                    .collect();
                for root in stale {
                    if let Some(new_owner) = placement.assignment(root).owner() {
                        index.insert(root, new_owner);
                        // The claimer journals its acquisition durably;
                        // the dead owner's store is down and sheds this
                        // subtree when it recovers and reconciles.
                        shared.journal_ownership(new_owner.index(), root, true);
                        shared.registry.journal().record(EventKind::SubtreeClaimed {
                            to: new_owner.0,
                            subtree: root.index() as u64,
                            size: shared.tree.subtree_size(root) as u64,
                            popularity: counts.get(&root).copied().unwrap_or(0.0),
                        });
                    }
                }
                drop(index);
                drop(placement);
                if let Some(tr) = shared.tracer() {
                    if let Some(ctx) = tr.begin() {
                        let start = failover_t0.unwrap_or(0);
                        tr.record(
                            Span::root(
                                ctx,
                                span_names::FAILOVER,
                                start,
                                tr.now_us().saturating_sub(start),
                            )
                            .with_arg(ArgKey::Mds, u64::from(dead.0))
                            .with_arg(ArgKey::Rehomed, i as u64),
                        );
                    }
                }
            }
        }
    }
    mon
}

/// The claiming half of the rejoin protocol (Sec. IV-B applied to a
/// crash-restart): when a declared-dead server heartbeats again, the
/// Monitor rebuilds the subtree-ownership table from the published
/// index and access counters, runs a pending-pool rebalancing round
/// over the live capacities (overloaded servers shed into the pool, the
/// rejoiner claims by mirror division), and rewrites placement + index
/// for every resulting migration. If the load is too even for the
/// adjuster to shed anything toward the rejoiner, the busiest other
/// server hands over its hottest subtree so a rejoined MDS never sits
/// idle. Returns how many subtrees the rejoiner claimed.
fn rejoin_claims(shared: &Shared, mon: &mut Monitor, m: usize, back: MdsId, now: u64) -> usize {
    // Snapshot popularity before touching the index lock (same lock
    // order as fail-over: servers take index.read → subtree_counts.write).
    let counts: HashMap<NodeId, f64> = shared.subtree_counts.read().clone();
    let owned: Vec<(Subtree, MdsId)> = {
        let index = shared.index.read();
        index
            .iter()
            .map(|(root, owner)| {
                let parent = shared
                    .tree
                    .node(root)
                    .and_then(|n| n.parent())
                    .unwrap_or(root);
                (
                    Subtree {
                        root,
                        parent,
                        // +1 keeps weights positive so mirror division
                        // spreads even never-accessed subtrees.
                        popularity: counts.get(&root).copied().unwrap_or(0.0) + 1.0,
                        size: shared.tree.subtree_size(root),
                    },
                    owner,
                )
            })
            .collect()
    };
    if owned.is_empty() {
        return 0; // nothing published to claim
    }
    // Dead servers get a vanishing capacity (ClusterSpec requires
    // strictly positive) so the adjuster routes essentially nothing at
    // them; the rejoiner counts as alive (its heartbeat just arrived).
    let capacities: Vec<f64> = (0..m)
        .map(|k| {
            let id = MdsId(k as u16);
            if id == back || mon.is_alive(id, now) {
                1.0
            } else {
                1e-9
            }
        })
        .collect();
    let mut migrations = mon.rebalance(&owned, &ClusterSpec::new(capacities));
    // Belt and braces: never migrate a subtree onto a still-dead server.
    migrations.retain(|mg| mg.to == back || mon.is_alive(mg.to, now));
    if !migrations.iter().any(|mg| mg.to == back) {
        if let Some((sub, from)) = owned
            .iter()
            .filter(|(_, o)| *o != back && mon.is_alive(*o, now))
            .max_by(|a, b| a.0.popularity.total_cmp(&b.0.popularity))
        {
            shared.registry.journal().record(EventKind::SubtreeShed {
                from: from.0,
                subtree: sub.root.index() as u64,
                size: sub.size as u64,
                popularity: sub.popularity,
            });
            shared.registry.journal().record(EventKind::SubtreeClaimed {
                to: back.0,
                subtree: sub.root.index() as u64,
                size: sub.size as u64,
                popularity: sub.popularity,
            });
            migrations.push(Migration {
                node: sub.root,
                from: *from,
                to: back,
            });
        }
    }
    if migrations.is_empty() {
        return 0;
    }
    {
        let mut placement = shared.placement.write();
        for mg in &migrations {
            placement.assign_subtree(&shared.tree, mg.node, mg.to);
        }
    }
    {
        let mut index = shared.index.write();
        for mg in &migrations {
            index.insert(mg.node, mg.to);
        }
    }
    for mg in &migrations {
        shared.journal_ownership(mg.from.index(), mg.node, false);
        shared.journal_ownership(mg.to.index(), mg.node, true);
    }
    shared
        .migrations
        .fetch_add(migrations.len() as u64, Ordering::Relaxed);
    shared
        .registry
        .counter(MetricKey::global(names::MIGRATIONS_TOTAL))
        .add(migrations.len() as u64);
    migrations.iter().filter(|mg| mg.to == back).count()
}

/// One live rebalancing inspection (Sec. IV-B's dynamic adjustment,
/// driven by the access counters the servers accumulate): when the
/// busiest alive server's recent local-layer load exceeds the lightest's
/// by the configured factor, its hottest subtree migrates — placement and
/// published index are rewritten so subsequent (re-)fetched client caches
/// route to the new owner.
/// Recent local-layer load per server: the decayed subtree access
/// counters summed by current owner (the same quantity live rebalancing
/// triggers on). Snapshot-then-read lock order matches
/// [`live_rebalance`].
fn per_server_load(shared: &Shared, m: usize) -> Vec<f64> {
    let counts_snapshot: Vec<(NodeId, f64)> = {
        let counts = shared.subtree_counts.read();
        counts.iter().map(|(&k, &v)| (k, v)).collect()
    };
    let placement = shared.placement.read();
    let mut per_server = vec![0.0f64; m];
    for &(root, c) in &counts_snapshot {
        if let Some(owner) = placement.assignment(root).owner() {
            per_server[owner.index()] += c;
        }
    }
    per_server
}

fn live_rebalance(shared: &Shared, mon: &Monitor, m: usize, now: u64) {
    if !shared.rebalance_factor.is_finite() {
        return;
    }
    let t0 = shared.tracer().map(Tracer::now_us);
    let counts_snapshot: Vec<(NodeId, f64)> = {
        let counts = shared.subtree_counts.read();
        counts.iter().map(|(&k, &v)| (k, v)).collect()
    };
    if counts_snapshot.is_empty() {
        return;
    }
    let placement = shared.placement.read();
    let mut per_server = vec![0.0f64; m];
    for &(root, c) in &counts_snapshot {
        if let Some(owner) = placement.assignment(root).owner() {
            per_server[owner.index()] += c;
        }
    }
    drop(placement);
    let alive: Vec<usize> = (0..m)
        .filter(|&k| mon.is_alive(MdsId(k as u16), now))
        .collect();
    if alive.len() < 2 {
        return;
    }
    let &busy = alive
        .iter()
        .max_by(|&&a, &&b| per_server[a].total_cmp(&per_server[b]))
        .expect("non-empty");
    let &light = alive
        .iter()
        .min_by(|&&a, &&b| per_server[a].total_cmp(&per_server[b]))
        .expect("non-empty");
    if per_server[busy] < shared.rebalance_factor * per_server[light].max(1.0) {
        return;
    }
    // Shed the busy server's hottest subtree to the light one.
    let placement = shared.placement.read();
    let hottest = counts_snapshot
        .iter()
        .filter(|(root, _)| placement.assignment(*root).owner() == Some(MdsId(busy as u16)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|&(root, _)| root);
    drop(placement);
    let Some(root) = hottest else { return };
    let to = MdsId(light as u16);
    {
        let mut placement = shared.placement.write();
        placement.assign_subtree(&shared.tree, root, to);
    }
    shared.index.write().insert(root, to);
    shared.journal_ownership(busy, root, false);
    shared.journal_ownership(to.index(), root, true);
    shared.migrations.fetch_add(1, Ordering::Relaxed);
    shared
        .registry
        .counter(MetricKey::global(names::MIGRATIONS_TOTAL))
        .inc();
    let size = shared.tree.subtree_size(root) as u64;
    let popularity = counts_snapshot
        .iter()
        .find(|(r, _)| *r == root)
        .map_or(0.0, |&(_, c)| c);
    let subtree = root.index() as u64;
    let journal = shared.registry.journal();
    journal.record(EventKind::SubtreeShed {
        from: busy as u16,
        subtree,
        size,
        popularity,
    });
    journal.record(EventKind::SubtreeClaimed {
        to: to.0,
        subtree,
        size,
        popularity,
    });
    if let Some(tr) = shared.tracer() {
        if let Some(ctx) = tr.begin() {
            let start = t0.unwrap_or(0);
            tr.record(
                Span::root(
                    ctx,
                    span_names::REBALANCE,
                    start,
                    tr.now_us().saturating_sub(start),
                )
                .with_arg(ArgKey::Subtree, subtree)
                .with_arg(ArgKey::From, busy as u64)
                .with_arg(ArgKey::To, u64::from(to.0)),
            );
        }
    }
    // Decay the counters so the next decision reflects fresh traffic.
    let mut counts = shared.subtree_counts.write();
    for v in counts.values_mut() {
        *v *= 0.5;
    }
}

/// Errors a live client can hit.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClientError {
    /// The attempt budget ran out, but at least one server responded
    /// along the way (redirect storms, mid-fail-over races).
    RetriesExhausted {
        /// Attempts made.
        attempts: usize,
    },
    /// The attempt budget ran out without a single response — every
    /// attempt timed out (the cluster looks entirely down or
    /// partitioned away).
    Timeout {
        /// Attempts made, all of which timed out.
        attempts: usize,
    },
    /// The [`RetryPolicy::deadline`] elapsed before the request
    /// completed, regardless of attempts left.
    DeadlineExceeded {
        /// Total time spent on the request.
        elapsed: Duration,
    },
    /// The target node has no assignment anywhere.
    NotFound,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::RetriesExhausted { attempts } => {
                write!(f, "request failed after {attempts} attempts")
            }
            ClientError::Timeout { attempts } => {
                write!(f, "no server responded in {attempts} attempts")
            }
            ClientError::DeadlineExceeded { elapsed } => {
                write!(f, "request deadline exceeded after {elapsed:?}")
            }
            ClientError::NotFound => f.write_str("target metadata not found"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A client of the live cluster: routes through its cached local index,
/// retries, follows redirects, refreshes the index when its lease expires
/// and survives fail-over.
#[derive(Debug)]
pub struct LiveClient {
    shared: Arc<Shared>,
    server_txs: Vec<Sender<ServerMsg>>,
    timeout: Duration,
    retry: RetryPolicy,
    cache: ClientCache,
    next_id: u64,
    rng: StdRng,
    /// The seed this client was created with, reported in `CacheMiss`
    /// journal events.
    client_id: u64,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    monitor_retries: Arc<Counter>,
}

impl LiveClient {
    fn random_server(&mut self) -> MdsId {
        MdsId(self.rng.gen_range(0..self.server_txs.len()) as u16)
    }

    /// Fetches a fresh index copy from some responsive server.
    fn refresh_cache(&mut self) {
        for attempt in 0..self.server_txs.len().max(1) {
            if attempt > 0 {
                // Re-probing after a lost or timed-out fetch is a retry:
                // space it under the same capped-exponential + jittered
                // policy as the data path instead of hammering the next
                // server immediately.
                self.monitor_retries.inc();
                std::thread::sleep(
                    self.retry
                        .backoff(attempt - 1, &mut self.rng)
                        .min(self.timeout),
                );
            }
            let dest = self.random_server();
            // The index fetch crosses the same client↔MDS link as the
            // data path, so the fault plan applies to it too.
            match self.shared.fault(NetEdge::ClientToMds(dest.0)) {
                FaultDecision::Drop => continue, // fetch lost; try another
                FaultDecision::Delay(ms) => {
                    std::thread::sleep(Duration::from_millis(ms).min(self.timeout));
                }
                _ => {}
            }
            let (tx, rx) = bounded(1);
            if self.server_txs[dest.index()]
                .send(ServerMsg::FetchIndex(tx))
                .is_err()
            {
                continue;
            }
            if let Ok(index) = rx.recv_timeout(self.timeout) {
                self.cache.refresh(index, self.shared.now_ms());
                return;
            }
        }
        // Every server timed out; leave the cache stale and let the
        // data-path retries cope via redirects.
    }

    /// Hit/miss statistics of this client's index cache.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Executes one metadata operation to completion.
    ///
    /// Routing follows the paper's client logic: consult the cached local
    /// index; on a prefix hit go straight to the owner, otherwise any MDS
    /// will do (the global layer is everywhere). Stale routes surface as
    /// redirects or timeouts and are retried under the configured
    /// [`RetryPolicy`]: failed attempts back off exponentially with
    /// jitter, and the whole request is bounded by both the attempt
    /// budget and the policy deadline. A timed-out destination is
    /// remembered and avoided on the next attempt (the hint was stale);
    /// each such re-route is journaled as [`EventKind::Forwarded`].
    ///
    /// # Errors
    ///
    /// * [`ClientError::NotFound`] — no server admits owning the target.
    /// * [`ClientError::RetriesExhausted`] — attempt budget spent, but
    ///   servers were responding (e.g. a redirect storm mid-fail-over).
    /// * [`ClientError::Timeout`] — attempt budget spent without any
    ///   server ever responding.
    /// * [`ClientError::DeadlineExceeded`] — the policy deadline elapsed
    ///   first.
    ///
    /// When the cluster was started with a tracer, a sampled operation
    /// records one root `op` span plus one `attempt` span per try, and
    /// its trace context rides the request frame so servers parent
    /// their serve spans on it.
    pub fn execute(&mut self, op: Operation) -> Result<Response, ClientError> {
        let tracer = match &self.shared.tracer {
            Some(t) => Arc::clone(t),
            None => return self.execute_inner(op, None),
        };
        let Some(ctx) = tracer.begin() else {
            return self.execute_inner(op, None);
        };
        let start = tracer.now_us();
        let result = self.execute_inner(op, Some(ctx));
        let mut span = Span::root(
            ctx,
            span_names::OP,
            start,
            tracer.now_us().saturating_sub(start),
        )
        .with_arg(ArgKey::Target, op.target.index() as u64)
        .with_arg(ArgKey::Kind, crate::sim::op_kind_code(op.kind));
        match &result {
            Ok(resp) => span = span.with_arg(ArgKey::Hops, u64::from(resp.hops)),
            Err(_) => span = span.with_arg(ArgKey::Error, 1),
        }
        tracer.record(span);
        result
    }

    fn execute_inner(
        &mut self,
        op: Operation,
        ctx: Option<SpanCtx>,
    ) -> Result<Response, ClientError> {
        let tracer = self.shared.tracer.clone();
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let started = Instant::now();
        let mut hops = 0u32;
        let mut forced_dest: Option<MdsId> = None;
        let mut not_found_streak = 0usize;
        let mut got_response = false;
        let mut backoffs = 0usize;
        // The server whose reply last timed out: its hint is stale, so
        // the next routed attempt steers around it.
        let mut stale_dest: Option<MdsId> = None;
        for _attempt in 0..self.retry.max_attempts {
            if started.elapsed() >= self.retry.deadline {
                return Err(ClientError::DeadlineExceeded {
                    elapsed: started.elapsed(),
                });
            }
            if backoffs > 0 {
                // Only failed attempts (timeouts, NotFound races) back
                // off; redirects carry fresh routing and retry at once.
                let pause = self.retry.backoff(backoffs - 1, &mut self.rng);
                let remaining = self.retry.deadline.saturating_sub(started.elapsed());
                std::thread::sleep(pause.min(remaining));
            }
            let (mut dest, route_code) = match forced_dest.take() {
                Some(d) => (d, RouteDecision::REDIRECT_CODE),
                None => {
                    let now = self.shared.now_ms();
                    let decision = self.cache.route(&self.shared.tree, op.target, now);
                    let code = decision.code();
                    let dest = match decision {
                        RouteDecision::Owner(owner) => {
                            self.cache_hits.inc();
                            owner
                        }
                        RouteDecision::AnyMds => {
                            self.cache_hits.inc();
                            self.random_server()
                        }
                        RouteDecision::StaleCache => {
                            self.cache_misses.inc();
                            self.shared.registry.journal().record(EventKind::CacheMiss {
                                client: self.client_id,
                            });
                            self.refresh_cache();
                            match self.cache.route(&self.shared.tree, op.target, now) {
                                RouteDecision::Owner(owner) => owner,
                                _ => self.random_server(),
                            }
                        }
                    };
                    (dest, code)
                }
            };
            if let Some(stale) = stale_dest.take() {
                if dest == stale && self.server_txs.len() > 1 {
                    // The cache still points at the server that just
                    // timed out — steer around it and journal the
                    // re-route so the operator can see hint staleness.
                    while dest == stale {
                        dest = self.random_server();
                    }
                    self.shared.registry.journal().record(EventKind::Forwarded {
                        from: stale.0,
                        to: dest.0,
                    });
                }
            }
            let req = Request {
                id,
                kind: op.kind,
                target: op.target,
                hops,
                trace: ctx.map(|c| (c.trace.0, c.span.0)),
            };
            let frame = req.encode();
            let (tx, rx) = bounded(1);
            let mut sent = false;
            let attempt_t0 = tracer.as_deref().map(Tracer::now_us);
            let send_fault = self.shared.fault(NetEdge::ClientToMds(dest.0));
            let fault_kind = send_fault.kind();
            // Records this try as an `attempt` span: which server, how it
            // was routed, how it ended (0 served, 1 redirect, 2 not-found,
            // 3 timeout, 4 lost/garbled), and any injected fault.
            let finish_attempt = |outcome: u64| {
                if let (Some(tr), Some(ctx)) = (tracer.as_deref(), ctx) {
                    let start = attempt_t0.unwrap_or(0);
                    let mut sp = Span::child(
                        ctx,
                        tr.next_span(ctx.trace),
                        span_names::ATTEMPT,
                        start,
                        tr.now_us().saturating_sub(start),
                    )
                    .on_mds(dest.0)
                    .with_arg(ArgKey::Route, route_code)
                    .with_arg(ArgKey::Outcome, outcome);
                    if let Some(k) = fault_kind {
                        sp = sp.with_fault(k);
                    }
                    tr.record(sp);
                }
            };
            match send_fault {
                FaultDecision::Drop => {} // request lost; attempt times out
                FaultDecision::Delay(ms) => {
                    std::thread::sleep(Duration::from_millis(ms).min(self.timeout));
                    sent = self.server_txs[dest.index()]
                        .send(ServerMsg::Frame(frame, tx))
                        .is_ok();
                }
                FaultDecision::DeliverTwice => {
                    sent = self.server_txs[dest.index()]
                        .send(ServerMsg::Frame(frame.clone(), tx))
                        .is_ok();
                    // The duplicate's reply channel is already closed, so
                    // the server's answer to it is discarded harmlessly.
                    let (dup_tx, dup_rx) = bounded::<Bytes>(1);
                    drop(dup_rx);
                    let _ = self.server_txs[dest.index()].send(ServerMsg::Frame(frame, dup_tx));
                }
                FaultDecision::Deliver => {
                    sent = self.server_txs[dest.index()]
                        .send(ServerMsg::Frame(frame, tx))
                        .is_ok();
                }
            }
            if !sent {
                // Message lost (injected drop or server thread gone):
                // re-route after backoff like any timed-out attempt.
                drop(rx);
                finish_attempt(4);
                stale_dest = Some(dest);
                backoffs += 1;
                continue;
            }
            match rx.recv_timeout(self.timeout) {
                Ok(mut frame) => match Response::decode(&mut frame) {
                    Some(resp) => {
                        got_response = true;
                        match resp.body {
                            ResponseBody::Served { .. } => {
                                finish_attempt(0);
                                return Ok(resp);
                            }
                            ResponseBody::Redirect { owner } => {
                                finish_attempt(1);
                                hops += 1;
                                forced_dest = Some(owner);
                            }
                            ResponseBody::NotFound => {
                                finish_attempt(2);
                                not_found_streak += 1;
                                if not_found_streak >= 3 {
                                    return Err(ClientError::NotFound);
                                }
                                // Possibly mid-fail-over; back off and
                                // re-route.
                                backoffs += 1;
                            }
                        }
                    }
                    None => {
                        finish_attempt(4);
                        backoffs += 1;
                    }
                },
                Err(_) => {
                    // Dead or overloaded server; the placement (and index)
                    // may change under us — drop the stale hint and avoid
                    // this destination on the next routed attempt.
                    finish_attempt(3);
                    stale_dest = Some(dest);
                    backoffs += 1;
                }
            }
        }
        if got_response {
            Err(ClientError::RetriesExhausted {
                attempts: self.retry.max_attempts,
            })
        } else {
            Err(ClientError::Timeout {
                attempts: self.retry.max_attempts,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2tree_core::{D2TreeConfig, D2TreeScheme, Partitioner};
    use d2tree_metrics::ClusterSpec;
    use d2tree_workload::{TraceProfile, WorkloadBuilder};

    fn build_cluster(m: usize) -> (Arc<NamespaceTree>, LiveCluster, d2tree_workload::Trace) {
        let w = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(600).with_operations(600))
            .seed(10)
            .build();
        let pop = w.popularity();
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(m, 1.0));
        let placement = scheme.placement().clone();
        let index = scheme.local_index().clone();
        let tree = Arc::new(w.tree);
        let cluster = LiveCluster::start_with_index(
            Arc::clone(&tree),
            placement,
            index,
            LiveConfig::default(),
        );
        (tree, cluster, w.trace)
    }

    #[test]
    fn traced_live_run_links_client_and_server_spans() {
        use d2tree_telemetry::trace::Sampler;
        use std::collections::HashSet;
        let w = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(400).with_operations(200))
            .seed(11)
            .build();
        let pop = w.popularity();
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(3, 1.0));
        let placement = scheme.placement().clone();
        let index = scheme.local_index().clone();
        let tree = Arc::new(w.tree);
        let tracer = Arc::new(Tracer::new(Sampler::always(0)));
        let config = LiveConfig::default().with_tracer(Arc::clone(&tracer));
        let cluster = LiveCluster::start_with_index(Arc::clone(&tree), placement, index, config);
        let mut client = cluster.client(2);
        for op in w.trace.iter().take(100) {
            client.execute(*op).expect("op served");
        }
        let _ = cluster.shutdown();
        let spans = tracer.drain();
        let roots: Vec<_> = spans
            .iter()
            .filter(|s| s.name == span_names::OP && s.parent.is_none())
            .collect();
        assert_eq!(roots.len(), 100, "one root span per traced op");
        // Each traced op made at least one client attempt, and some MDS
        // recorded a serve span in the same trace — the context crossed
        // the wire.
        let attempt_traces: HashSet<u64> = spans
            .iter()
            .filter(|s| s.name == span_names::ATTEMPT)
            .map(|s| s.trace.0)
            .collect();
        let serve_traces: HashSet<u64> = spans
            .iter()
            .filter(|s| s.name == span_names::SERVE)
            .map(|s| s.trace.0)
            .collect();
        for root in &roots {
            assert!(attempt_traces.contains(&root.trace.0), "missing attempt");
            assert!(serve_traces.contains(&root.trace.0), "missing serve");
        }
        for s in spans.iter().filter(|s| s.name == span_names::SERVE) {
            assert!(s.mds.is_some(), "serve spans are attributed to an MDS");
            assert!(s.parent.is_some(), "serve spans parent on the op root");
        }
        // Replicated updates went through the lock service under a
        // gl_lock span nested in the serving MDS's serve span.
        let serve_ids: HashSet<u64> = spans
            .iter()
            .filter(|s| s.name == span_names::SERVE)
            .map(|s| s.id.0)
            .collect();
        let locks: Vec<_> = spans
            .iter()
            .filter(|s| s.name == span_names::LOCK)
            .collect();
        for l in &locks {
            let parent = l.parent.expect("lock spans have a parent");
            assert!(serve_ids.contains(&parent.0), "lock nests under a serve");
        }
    }

    #[test]
    fn dropped_heartbeats_are_resent_under_the_shared_retry_policy() {
        use crate::fault::{FaultAction, FaultRule, FaultScope};
        let w = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(400).with_operations(100))
            .seed(17)
            .build();
        let pop = w.popularity();
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(3, 1.0));
        let placement = scheme.placement().clone();
        let index = scheme.local_index().clone();
        let tree = Arc::new(w.tree);
        // Drop MDS 0's heartbeats for the first 80 ms (shorter than the
        // 120 ms failure timeout, so no false failure declaration): each
        // loss must be re-sent under the shared retry policy and counted
        // in monitor_retries_total, not silently eaten.
        let plan = FaultPlan::new(99)
            .with_rule(FaultRule::new(FaultScope::MonitorLink(0), FaultAction::Drop).during(0, 80));
        let cluster = LiveCluster::start_with_faults(
            Arc::clone(&tree),
            placement,
            index,
            LiveConfig::default(),
            plan,
        );
        std::thread::sleep(Duration::from_millis(200));
        let snap = cluster.registry().snapshot();
        let retries = snap
            .counters
            .iter()
            .find(|(k, _)| k.name == names::MONITOR_RETRIES_TOTAL)
            .map_or(0, |(_, v)| *v);
        let report = cluster.shutdown();
        assert!(
            retries > 0,
            "dropped heartbeats must be retried and counted (got {retries})"
        );
        assert!(
            !report
                .events
                .iter()
                .any(|e| matches!(e, ClusterEvent::MdsFailed(_))),
            "retried heartbeats keep the server alive through the drop window"
        );
    }

    #[test]
    fn monitor_records_health_ticks_while_serving() {
        let w = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(500).with_operations(400))
            .seed(13)
            .build();
        let pop = w.popularity();
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(3, 1.0));
        let placement = scheme.placement().clone();
        let index = scheme.local_index().clone();
        let tree = Arc::new(w.tree);
        let config = LiveConfig::default().with_recorder(64);
        let cluster = LiveCluster::start_with_index(Arc::clone(&tree), placement, index, config);
        let mut client = cluster.client(5);
        for op in w.trace.iter().take(200) {
            client.execute(*op).expect("op served");
        }
        // Give the Monitor at least a couple of heartbeat intervals to
        // sample after the load landed.
        std::thread::sleep(Duration::from_millis(120));
        let ticks = cluster.health_ticks();
        assert!(!ticks.is_empty(), "monitor sampled no health ticks");
        assert!(
            ticks.windows(2).all(|w| w[0].tick + 1 == w[1].tick),
            "tick numbering is contiguous"
        );
        assert!(
            ticks.iter().all(|t| t.locality.is_nan()),
            "live layer has no popularity model; locality must be NaN"
        );
        let served_so_far: u64 = ticks.iter().map(|t| t.ops).sum();
        assert!(served_so_far <= 200, "deltas cannot exceed ops issued");
        let last = ticks.last().expect("non-empty");
        assert!(last.balance > 0.0, "balance is a positive Def. 5 score");
        assert_eq!(last.loads.len(), 3, "one load lane per MDS");
        assert!(
            cluster
                .registry()
                .snapshot()
                .counters
                .iter()
                .any(|(k, v)| k.name == names::HEALTH_TICKS_TOTAL && *v > 0),
            "health tick counter advances"
        );
        let _ = cluster.shutdown();
    }

    #[test]
    fn serves_a_whole_trace() {
        let (_tree, cluster, trace) = build_cluster(3);
        let mut client = cluster.client(1);
        for op in trace.iter().take(300) {
            let resp = client.execute(*op).expect("op served");
            assert!(matches!(resp.body, ResponseBody::Served { .. }));
        }
        let report = cluster.shutdown();
        assert_eq!(report.served.iter().sum::<u64>(), 300);
    }

    #[test]
    fn concurrent_clients_all_complete() {
        let (_tree, cluster, trace) = build_cluster(4);
        let cluster = Arc::new(cluster);
        let trace = Arc::new(trace);
        let mut handles = Vec::new();
        for c in 0..4u64 {
            let mut client = cluster.client(c);
            let trace = Arc::clone(&trace);
            handles.push(std::thread::spawn(move || {
                trace
                    .iter()
                    .skip(c as usize * 100)
                    .take(100)
                    .map(|op| client.execute(*op).is_ok())
                    .filter(|&ok| ok)
                    .count()
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 400);
        let cluster = Arc::try_unwrap(cluster).expect("all clients done");
        let report = cluster.shutdown();
        assert_eq!(report.served.iter().sum::<u64>(), 400);
    }

    #[test]
    fn failover_rehomes_a_dead_servers_nodes() {
        let (tree, cluster, _trace) = build_cluster(3);
        // Find any single-owner node and kill its server.
        let (victim_node, dead_mds) = {
            let placement = cluster.placement_snapshot();
            tree.nodes()
                .filter_map(|(id, _)| placement.assignment(id).owner().map(|o| (id, o)))
                .next()
                .expect("some node has a single owner")
        };
        // Let every server heartbeat at least once so the Monitor knows
        // it (a never-seen server counts as joining, not failed).
        std::thread::sleep(Duration::from_millis(100));
        cluster.kill(dead_mds);
        // Wait for the monitor to declare the failure and re-home.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let owner = cluster.placement_snapshot().assignment(victim_node).owner();
            if owner.is_some() && owner != Some(dead_mds) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "fail-over did not happen in time"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // The node is reachable again through a fresh client.
        let mut client = cluster.client(7);
        let resp = client
            .execute(Operation {
                target: victim_node,
                kind: OpKind::Read,
            })
            .expect("served after fail-over");
        assert!(matches!(resp.body, ResponseBody::Served { .. }));
        let report = cluster.shutdown();
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, ClusterEvent::MdsFailed(m) if *m == dead_mds)));
    }

    #[test]
    fn monitor_migrates_a_hammered_subtree() {
        let (tree, cluster, _trace) = build_cluster(3);
        std::thread::sleep(Duration::from_millis(80)); // servers known
                                                       // Find an indexed local-layer subtree and hammer it.
        let placement = cluster.placement_snapshot();
        let (root, original_owner) = tree
            .nodes()
            .filter_map(|(id, _)| placement.assignment(id).owner().map(|o| (id, o)))
            .next()
            .expect("some single-owner node");
        let mut client = cluster.client(50);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            for _ in 0..200 {
                let _ = client.execute(Operation {
                    target: root,
                    kind: OpKind::Read,
                });
            }
            let owner = cluster.placement_snapshot().assignment(root).owner();
            if owner.is_some() && owner != Some(original_owner) {
                break; // migrated away from the hot server
            }
            assert!(
                Instant::now() < deadline,
                "monitor never rebalanced the hot subtree"
            );
        }
        let report = cluster.shutdown();
        assert!(report.migrations > 0);
    }

    #[test]
    fn concurrent_gl_updates_converge_on_all_replicas() {
        let (tree, cluster, _trace) = build_cluster(3);
        let cluster = Arc::new(cluster);
        let root = tree.root();
        let mut handles = Vec::new();
        for c in 0..4u64 {
            let mut client = cluster.client(100 + c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    client
                        .execute(Operation {
                            target: root,
                            kind: OpKind::Update,
                        })
                        .expect("update served");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every replica saw every one of the 100 lock-serialised commits.
        let versions: Vec<u64> = (0..3)
            .map(|k| cluster.attr_version(MdsId(k), root))
            .collect();
        assert_eq!(
            versions,
            vec![100, 100, 100],
            "replicas diverged: {versions:?}"
        );
        let _ = Arc::try_unwrap(cluster).unwrap().shutdown();
    }

    #[test]
    fn seeded_index_cuts_redirects() {
        let w = WorkloadBuilder::new(TraceProfile::dtr().with_nodes(600).with_operations(600))
            .seed(10)
            .build();
        let pop = w.popularity();
        let mut scheme = D2TreeScheme::new(D2TreeConfig::paper_default());
        scheme.build(&w.tree, &pop, &ClusterSpec::homogeneous(4, 1.0));
        let placement = scheme.placement().clone();
        let index = scheme.local_index().clone();
        let tree = Arc::new(w.tree);

        let run = |with_index: bool| {
            let cluster = if with_index {
                LiveCluster::start_with_index(
                    Arc::clone(&tree),
                    placement.clone(),
                    index.clone(),
                    LiveConfig::default(),
                )
            } else {
                LiveCluster::start(Arc::clone(&tree), placement.clone(), LiveConfig::default())
            };
            let mut client = cluster.client(3);
            for op in w.trace.iter().take(400) {
                client.execute(*op).expect("served");
            }
            cluster.shutdown().redirects
        };
        let with_index = run(true);
        let without = run(false);
        assert!(
            with_index < without,
            "index-cached routing should redirect less: {with_index} vs {without}"
        );
    }

    #[test]
    fn updates_on_global_layer_take_the_lock() {
        let (tree, cluster, _trace) = build_cluster(2);
        let mut client = cluster.client(3);
        // The root is always in the global layer.
        let resp = client
            .execute(Operation {
                target: tree.root(),
                kind: OpKind::Update,
            })
            .expect("update served");
        assert!(matches!(resp.body, ResponseBody::Served { .. }));
        let _ = cluster.shutdown();
    }
}
